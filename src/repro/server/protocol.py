"""Line-delimited JSON wire protocol and the named-script catalog.

Each frame is one JSON object on one line (``\\n``-terminated, UTF-8).
Requests carry an ``op`` and a client-chosen ``id`` echoed in the
response; responses carry ``ok`` plus either result fields or an
``error`` object ``{"type", "message", ...}`` naming the repro error
class that refused the request.

Operations:

``hello``   — ``{user, team, library[, project][, resume]}`` → opens a
              session, or (``resume``: a prior session id) rebinds this
              connection to it — leases and the idempotency window
              survive a reconnect
``run``     — ``{cell, activity, script[, params][, reads]
              [, deadline_ms][, request_key]}`` → one coupled run;
              answered when its batch window's wave commits.
              ``deadline_ms`` is a relative budget: a run whose window
              flushes too late is answered with ``DeadlineExceededError``
              instead of executing.  ``request_key`` makes the run
              idempotent per session: retrying after a lost ack returns
              the original result (``deduped: true``), never a second
              commit
``lease``   — ``{cell}`` → grant/renew this session's write lease on the
              cell; the response carries the fencing ``token`` and
              ``expires_ms``
``release`` — ``{cell}`` → drop the lease early
``stats``   — queue depths, latency percentiles, per-shard counters
``audit``   — the framework-wide audit report (finding count + findings)
``ping``    — liveness; also the lease heartbeat (renews every lease the
              connection's session holds)
``bye``     — close the connection after the in-flight runs answer,
              releasing the session's leases

Closures cannot cross a socket, so ``run`` names its edit script: the
:class:`ScriptCatalog` resolves ``(activity, script)`` plus JSON-safe
``params`` into the callable kwargs the tool wrappers expect — the same
registry idea the durable-flow orchestrator uses for its named flow
scripts.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.scheduler import ACTIVITIES
from repro.errors import ProtocolError, ReproError
from repro.workloads import scripts as _scripts

#: protocol revision announced in every ``hello`` response
PROTOCOL_VERSION = 2

#: request operations the server understands
OPERATIONS = ("hello", "run", "lease", "release", "stats", "audit", "ping", "bye")

#: largest frame the protocol accepts; anything longer is answered with a
#: typed error and the connection survives (the transport enforces its
#: own, larger hard cap past which the line is unrecoverable)
MAX_FRAME_BYTES = 64 * 1024


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One frame: compact JSON, sorted keys, newline-terminated."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a request dict (validated shell)."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"oversized frame: {len(line)} bytes > {MAX_FRAME_BYTES} limit"
        )
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    op = payload.get("op")
    if op not in OPERATIONS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPERATIONS}")
    return payload


def error_frame(
    request_id: Any, error: BaseException
) -> Dict[str, Any]:
    """The error response for *error*, typed by its class name."""
    payload: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        },
    }
    retry_after = getattr(error, "retry_after_ms", None)
    if retry_after is not None:
        # a 0.0 hint is legitimate ("retry immediately with a different
        # request") and must survive the wire — no truthiness tests here
        payload["error"]["retry_after_ms"] = retry_after
    shard_id = getattr(error, "shard_id", None)
    if shard_id is not None and shard_id >= 0:
        payload["error"]["shard"] = shard_id
    for attribute in ("state", "key", "holder"):
        value = getattr(error, attribute, None)
        if value:
            payload["error"][attribute] = value
    return payload


class ScriptCatalog:
    """Named, wire-transportable edit scripts per activity.

    Entries are factories taking JSON-safe ``params`` and returning the
    kwargs dict for that activity's tool wrapper.  Unknown names raise
    :class:`~repro.errors.ProtocolError` — before admission, so a typo
    never occupies queue space.
    """

    def __init__(self) -> None:
        self._factories: Dict[
            Tuple[str, str], Callable[[Dict[str, Any]], Dict[str, Any]]
        ] = {}
        self._register_builtins()

    def register(
        self,
        activity: str,
        name: str,
        factory: Callable[[Dict[str, Any]], Dict[str, Any]],
    ) -> None:
        if activity not in ACTIVITIES:
            raise ProtocolError(f"unknown activity {activity!r}")
        self._factories[(activity, name)] = factory

    def names(self, activity: str) -> Tuple[str, ...]:
        return tuple(
            sorted(n for (a, n) in self._factories if a == activity)
        )

    def resolve(
        self,
        activity: str,
        script: Optional[str],
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """kwargs for *activity* running *script* with *params*."""
        if activity not in ACTIVITIES:
            raise ProtocolError(
                f"unknown activity {activity!r}; expected one of {ACTIVITIES}"
            )
        if script is None:
            raise ProtocolError(f"run request for {activity!r} names no script")
        factory = self._factories.get((activity, script))
        if factory is None:
            raise ProtocolError(
                f"unknown script {script!r} for {activity!r}; "
                f"known: {self.names(activity)}"
            )
        try:
            return factory(dict(params or {}))
        except ReproError:
            raise
        except Exception as exc:
            raise ProtocolError(
                f"script {script!r} rejected params {params!r}: {exc}"
            ) from exc

    def _register_builtins(self) -> None:
        self.register(
            "schematic_entry",
            "inverter_chain",
            lambda p: {
                "edit_fn": _scripts.inverter_chain_editor(
                    int(p.get("stages", 2))
                )
            },
        )
        self.register(
            "schematic_entry",
            "idempotent_inverter",
            lambda p: {
                "edit_fn": _scripts.idempotent_inverter_editor(
                    int(p.get("stages", 2))
                )
            },
        )
        self.register(
            "schematic_entry",
            "subcell_wrapper",
            lambda p: {
                "edit_fn": _scripts.subcell_wrapper_editor(
                    list(p.get("children", []))
                )
            },
        )
        self.register(
            "digital_simulation",
            "inverter_bench",
            lambda p: {
                "testbench_fn": _scripts.inverter_chain_bench(
                    int(p.get("stages", 2))
                )
            },
        )
        self.register(
            "layout_entry",
            "strap_layout",
            lambda p: {
                "edit_fn": _scripts.labelled_strap_layout(
                    list(p.get("nets", ["a", "y"]))
                )
            },
        )
        self.register(
            "layout_entry",
            "idempotent_strap",
            lambda p: {
                "edit_fn": _scripts.idempotent_strap_layout(
                    list(p.get("nets", ["a", "y"]))
                )
            },
        )
