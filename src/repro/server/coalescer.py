"""Batch coalescing: size- and deadline-bounded request windows.

One coupled run through ``run_many`` pays conflict-graph construction,
wave levelling, a worker pool and a group commit; amortising that over a
*window* of requests is where serving throughput comes from.  A
:class:`ShardBatcher` accumulates admitted requests for one shard and
flushes when either bound trips:

* **size** — the window reached ``max_batch`` requests (flush now; the
  batch is as wide as we let a single wave get);
* **deadline** — the *oldest* request in the window has waited
  ``window_ms`` (flush what we have; latency beats batch width).

The batcher is transport- and time-agnostic: callers pass ``now_ms``
(simulated time in the deterministic engine, loop time in the asyncio
server) and drive flushes themselves, so the policy is testable without
a clock or an event loop.
"""

from __future__ import annotations

import threading
from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class ShardBatcher(Generic[T]):
    """Accumulates one shard's admitted requests into flushable windows."""

    def __init__(
        self,
        shard_id: int,
        max_batch: int,
        window_ms: float,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch!r}")
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0: {window_ms!r}")
        self.shard_id = shard_id
        self.max_batch = max_batch
        self.window_ms = window_ms
        self._mutex = threading.Lock()
        self._pending: List[T] = []
        self._deadline_ms: Optional[float] = None
        self.flushes_by_size = 0
        self.flushes_by_deadline = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def deadline_ms(self) -> Optional[float]:
        """When the current window must flush, or ``None`` if empty."""
        return self._deadline_ms

    def add(self, item: T, now_ms: float) -> Optional[List[T]]:
        """Queue *item*; returns the flushed window if it filled up."""
        with self._mutex:
            if not self._pending:
                self._deadline_ms = now_ms + self.window_ms
            self._pending.append(item)
            if len(self._pending) >= self.max_batch:
                self.flushes_by_size += 1
                return self._take()
            return None

    def due(self, now_ms: float) -> bool:
        """True when the open window's deadline has passed."""
        with self._mutex:
            return (
                self._deadline_ms is not None and now_ms >= self._deadline_ms
            )

    def flush_due(self, now_ms: float) -> Optional[List[T]]:
        """Flush the window if its deadline has passed."""
        with self._mutex:
            if self._deadline_ms is None or now_ms < self._deadline_ms:
                return None
            self.flushes_by_deadline += 1
            return self._take()

    def flush(self) -> List[T]:
        """Unconditionally flush whatever is pending (drain/shutdown)."""
        with self._mutex:
            return self._take()

    def remove(self, item: T) -> bool:
        """Pull *item* out of the open window (client gone before flush).

        Identity comparison, not equality: the engine cancels a specific
        pending run object.  An emptied window drops its deadline so the
        flusher does not dispatch a zero-length batch.
        """
        with self._mutex:
            for index, queued in enumerate(self._pending):
                if queued is item:
                    del self._pending[index]
                    if not self._pending:
                        self._deadline_ms = None
                    return True
            return False

    def _take(self) -> List[T]:
        taken = self._pending
        self._pending = []
        self._deadline_ms = None
        return taken
