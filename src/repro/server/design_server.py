"""Asyncio streams front end: ``DesignServer`` (``repro serve``).

One event loop accepts designer connections and speaks the
line-delimited JSON protocol; the blocking work — `run_many` waves —
happens on the engine's per-shard executor threads, so the loop only
parses frames, admits requests and resolves waiters.  Batch windows are
flushed by a periodic flusher task on the wall clock.

The front end is built for hostile networks:

* malformed, oversized (up to the transport cap) and torn frames are
  answered with typed errors — the connection survives everything except
  an unrecoverable line past the transport cap;
* a client that vanishes mid-request has its not-yet-started runs
  cancelled and its waiters torn down (no leaks), while its session —
  leases and idempotency window included — survives for a reconnect
  (``hello`` with ``resume``);
* the ``net.accept`` / ``net.read`` / ``net.write`` / ``net.frame``
  fault points let the chaos harness inject connection refusals, torn
  reads, lost acks and corrupted frames deterministically.

Shutdown is a drain, not a guillotine: :meth:`stop` closes admission
(new runs are refused with ``ServerOverloadError(reason="draining")``),
flushes every partial window, waits for in-flight waves to commit and
answers their clients before connections close.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import (
    ProtocolError,
    ReproError,
    SessionError,
)
from repro.faults import FaultError, corruption_point, fault_point
from repro.server.engine import PendingRun, ServeEngine, SessionContext
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ScriptCatalog,
    decode_line,
    encode_frame,
    error_frame,
)

#: hard transport cap on one line; beyond this the stream cannot be
#: resynchronised and the connection is severed (protocol-level frames
#: are limited far lower — see ``protocol.MAX_FRAME_BYTES``)
MAX_LINE_BYTES = 1024 * 1024


def _wall_ms() -> float:
    return time.monotonic() * 1000.0


class DesignServer:
    """Serves one :class:`~repro.core.coupling.HybridFramework`."""

    def __init__(
        self,
        hybrid,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 2,
        max_batch: int = 16,
        window_ms: float = 25.0,
        queue_depth: int = 256,
        admission_rate_per_s: Optional[float] = None,
        workers: int = 4,
        seed: int = 0,
        lease_ttl_ms: float = 30_000.0,
        breaker_threshold: int = 3,
        breaker_cooldown_ms: float = 5_000.0,
        dedupe_window: int = 64,
    ) -> None:
        self.hybrid = hybrid
        self.host = host
        self.port = port
        self.window_ms = window_ms
        self.engine = ServeEngine(
            hybrid,
            shards=shards,
            max_batch=max_batch,
            window_ms=window_ms,
            queue_depth=queue_depth,
            admission_rate_per_s=admission_rate_per_s,
            workers=workers,
            seed=seed,
            concurrent=True,
            now_fn=_wall_ms,
            lease_ttl_ms=lease_ttl_ms,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_ms=breaker_cooldown_ms,
            dedupe_window=dedupe_window,
        )
        self.catalog = ScriptCatalog()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flusher: Optional[asyncio.Task] = None
        #: ticket -> waiting futures; a list because a deduped retry on
        #: the same (or a resumed) connection awaits the same pending
        self._waiters: Dict[int, List[asyncio.Future]] = {}
        self._connections: Set[asyncio.StreamWriter] = set()
        self._stopping = False
        #: transport-level chaos accounting
        self.refused_accepts = 0
        self.torn_reads = 0
        self.dropped_frames = 0
        self.malformed_frames = 0
        self.abandoned_runs = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._loop = asyncio.get_running_loop()
        self.engine.on_batch_complete = self._batch_completed
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._flusher = asyncio.create_task(self._flush_windows())
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: refuse new work, finish and answer in-flight."""
        self._stopping = True
        if self._flusher is not None:
            self._flusher.cancel()
        # engine.close() blocks on in-flight waves — keep the loop alive
        # so their completion callbacks can resolve waiting clients
        assert self._loop is not None
        await self._loop.run_in_executor(None, self.engine.close)
        leftover = [
            future
            for futures in self._waiters.values()
            for future in futures
        ]
        if leftover:  # pragma: no cover - drain answered everything
            await asyncio.gather(*leftover, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()

    # -- background flusher ------------------------------------------------

    async def _flush_windows(self) -> None:
        """Flush deadline-expired batch windows on the wall clock."""
        interval_s = max(self.window_ms / 2.0, 1.0) / 1000.0
        while True:
            await asyncio.sleep(interval_s)
            self.engine.pump(_wall_ms())

    def _batch_completed(self, batch) -> None:
        """Engine callback (executor thread): wake the waiting handlers."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._resolve_batch, batch)

    def _resolve_batch(self, batch) -> None:
        for pending in batch:
            for future in self._waiters.pop(pending.ticket, []):
                if not future.done():
                    future.set_result(pending)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            fault_point("net.accept")
        except FaultError:
            # the accept "failed": the TCP connection existed for an
            # instant and died before the handler spoke a single frame
            self.refused_accepts += 1
            writer.close()
            return
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        session: Optional[SessionContext] = None
        run_tasks: Set[asyncio.Task] = set()
        #: this connection's in-flight (pending, future) pairs, torn down
        #: on abandonment so a vanished client leaks nothing
        conn_pendings: Dict[int, Tuple[PendingRun, asyncio.Future]] = {}
        graceful = False

        async def send(payload: Dict[str, Any]) -> None:
            try:
                fault_point("net.write")
            except FaultError:
                # the response frame was "lost on the wire" — the client
                # sees silence and must retry (idempotently)
                self.dropped_frames += 1
                return
            async with write_lock:
                writer.write(encode_frame(payload))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # past the transport cap the stream cannot be
                    # resynchronised; sever the connection
                    self.malformed_frames += 1
                    break
                if not line:
                    break
                try:
                    fault_point("net.read")
                except FaultError:
                    self.torn_reads += 1
                    break
                if not line.endswith(b"\n") and reader.at_eof():
                    # torn frame: the client died mid-write
                    self.torn_reads += 1
                    break
                line = corruption_point("net.frame", line)
                try:
                    request = decode_line(line)
                except ProtocolError as exc:
                    self.malformed_frames += 1
                    await send(error_frame(None, exc))
                    continue
                op = request["op"]
                request_id = request.get("id")
                try:
                    if op == "ping":
                        payload = {"id": request_id, "ok": True, "pong": True}
                        if session is not None:
                            # the heartbeat doubles as the lease renewal
                            payload["renewed"] = self.engine.touch_session(
                                session
                            )
                        await send(payload)
                    elif op == "hello":
                        session = self._hello(request)
                        await send(
                            {
                                "id": request_id,
                                "ok": True,
                                "session": session.session_id,
                                "shard": session.shard_id,
                                "protocol": PROTOCOL_VERSION,
                                "resumed": bool(request.get("resume")),
                            }
                        )
                    elif op == "run":
                        task = asyncio.create_task(
                            self._run(
                                send,
                                request_id,
                                session,
                                request,
                                conn_pendings,
                            )
                        )
                        run_tasks.add(task)
                        task.add_done_callback(run_tasks.discard)
                    elif op == "lease":
                        await send(
                            self._lease(request_id, session, request)
                        )
                    elif op == "release":
                        await send(
                            self._release(request_id, session, request)
                        )
                    elif op == "stats":
                        stats = self.engine.stats()
                        stats["transport"] = self.transport_stats()
                        await send(
                            {"id": request_id, "ok": True, "stats": stats}
                        )
                    elif op == "audit":
                        report = await asyncio.get_running_loop().run_in_executor(
                            None, self.hybrid.audit
                        )
                        await send(
                            {
                                "id": request_id,
                                "ok": True,
                                "clean": report.clean,
                                "findings": len(report.findings),
                            }
                        )
                    elif op == "bye":
                        if run_tasks:
                            await asyncio.gather(
                                *run_tasks, return_exceptions=True
                            )
                        if session is not None:
                            self.engine.end_session(session)
                        graceful = True
                        await send({"id": request_id, "ok": True, "bye": True})
                        break
                except ReproError as exc:
                    await send(error_frame(request_id, exc))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if not graceful:
                # the client vanished: withdraw its not-yet-started runs
                # and drop its waiters, but keep the session — leases and
                # the dedupe window must survive for a resume
                self._abandon(conn_pendings)
            if run_tasks:
                await asyncio.gather(*run_tasks, return_exceptions=True)
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass

    def _abandon(
        self,
        conn_pendings: Dict[int, Tuple[PendingRun, asyncio.Future]],
    ) -> None:
        for pending, future in list(conn_pendings.values()):
            waiters = self._waiters.get(pending.ticket)
            if waiters is not None and future in waiters:
                waiters.remove(future)
                if not waiters:
                    del self._waiters[pending.ticket]
            if not future.done():
                future.cancel()
            if pending.ticket not in self._waiters:
                # nobody else is waiting: withdraw it if still queued
                if self.engine.cancel(pending):
                    self.abandoned_runs += 1
        conn_pendings.clear()

    def _hello(self, request: Dict[str, Any]) -> SessionContext:
        resume = request.get("resume")
        if resume:
            session = self.engine.session(str(resume))
            user = request.get("user")
            if user and session.user != user:
                raise SessionError(
                    f"session {resume!r} belongs to {session.user!r}, "
                    f"not {user!r}"
                )
            return session
        for field in ("user", "team", "library"):
            if not request.get(field):
                raise ProtocolError(f"hello is missing {field!r}")
        return self.engine.open_session(
            user=request["user"],
            team=request["team"],
            library_name=request["library"],
            project_name=request.get("project"),
        )

    def _lease(
        self,
        request_id: Any,
        session: Optional[SessionContext],
        request: Dict[str, Any],
    ) -> Dict[str, Any]:
        if session is None:
            raise SessionError("lease before hello: no session context")
        cell = request.get("cell")
        if not cell:
            raise ProtocolError("lease request names no cell")
        lease = self.engine.acquire_lease(session, str(cell))
        return {
            "id": request_id,
            "ok": True,
            "key": lease.key,
            "token": lease.token,
            "expires_ms": lease.expires_ms,
        }

    def _release(
        self,
        request_id: Any,
        session: Optional[SessionContext],
        request: Dict[str, Any],
    ) -> Dict[str, Any]:
        if session is None:
            raise SessionError("release before hello: no session context")
        cell = request.get("cell")
        if not cell:
            raise ProtocolError("release request names no cell")
        released = self.engine.release_lease(session, str(cell))
        return {"id": request_id, "ok": True, "released": released}

    def _pending_payload(
        self, request_id: Any, pending: PendingRun, deduped: bool
    ) -> Dict[str, Any]:
        """The response frame for a settled pending (ran or refused)."""
        if pending.error is not None:
            payload = error_frame(request_id, pending.error)
            payload["status"] = pending.status
            payload["shard"] = pending.shard_id
        else:
            payload = {
                "id": request_id,
                "ok": pending.outcome is not None and pending.outcome.ok,
                "status": pending.status,
                "shard": pending.shard_id,
                "latency_ms": round(pending.latency_ms, 3),
            }
            if (
                pending.outcome is not None
                and pending.outcome.error is not None
            ):
                payload["error"] = {
                    "type": type(pending.outcome.error).__name__,
                    "message": str(pending.outcome.error),
                }
        if deduped:
            payload["deduped"] = True
        return payload

    async def _run(
        self,
        send,
        request_id: Any,
        session: Optional[SessionContext],
        request: Dict[str, Any],
        conn_pendings: Dict[int, Tuple[PendingRun, asyncio.Future]],
    ) -> None:
        """Admit one run, await its batch's commit, answer the client."""
        try:
            if session is None:
                raise SessionError("run before hello: no session context")
            cell = request.get("cell")
            if not cell:
                raise ProtocolError("run request names no cell")
            activity = request.get("activity", "")
            kwargs = self.catalog.resolve(
                activity, request.get("script"), request.get("params")
            )
            reads = tuple(
                (str(lib), str(c)) for lib, c in request.get("reads", [])
            )
            deadline_ms = request.get("deadline_ms")
            if deadline_ms is not None:
                deadline_ms = float(deadline_ms)
            request_key = request.get("request_key")
            loop = asyncio.get_running_loop()
            pending = self.engine.submit(
                session,
                cell,
                activity,
                kwargs=kwargs,
                reads=reads,
                deadline_ms=deadline_ms,
                request_key=request_key,
            )
            deduped = pending.dedupe_count > 0
            if pending.settled:
                # a deduped retry of an already-answered run (or an
                # instant refusal): no wave to wait for
                await send(self._pending_payload(request_id, pending, deduped))
                return
            future: asyncio.Future = loop.create_future()
            self._waiters.setdefault(pending.ticket, []).append(future)
            conn_pendings[id(future)] = (pending, future)
            try:
                done: PendingRun = await future
            finally:
                conn_pendings.pop(id(future), None)
            await send(self._pending_payload(request_id, done, deduped))
        except asyncio.CancelledError:
            # the connection was abandoned while we waited; nobody is
            # left to answer
            return
        except ReproError as exc:
            await send(error_frame(request_id, exc))

    def transport_stats(self) -> Dict[str, int]:
        return {
            "refused_accepts": self.refused_accepts,
            "torn_reads": self.torn_reads,
            "dropped_frames": self.dropped_frames,
            "malformed_frames": self.malformed_frames,
            "abandoned_runs": self.abandoned_runs,
        }
