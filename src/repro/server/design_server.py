"""Asyncio streams front end: ``DesignServer`` (``repro serve``).

One event loop accepts designer connections and speaks the
line-delimited JSON protocol; the blocking work — `run_many` waves —
happens on the engine's per-shard executor threads, so the loop only
parses frames, admits requests and resolves waiters.  Batch windows are
flushed by a periodic flusher task on the wall clock.

Shutdown is a drain, not a guillotine: :meth:`stop` closes admission
(new runs are refused with ``ServerOverloadError(reason="draining")``),
flushes every partial window, waits for in-flight waves to commit and
answers their clients before connections close.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Optional, Set, Tuple

from repro.errors import (
    ProtocolError,
    ReproError,
    ServerError,
    SessionError,
)
from repro.server.engine import PendingRun, ServeEngine, SessionContext
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ScriptCatalog,
    decode_line,
    encode_frame,
    error_frame,
)


def _wall_ms() -> float:
    return time.monotonic() * 1000.0


class DesignServer:
    """Serves one :class:`~repro.core.coupling.HybridFramework`."""

    def __init__(
        self,
        hybrid,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 2,
        max_batch: int = 16,
        window_ms: float = 25.0,
        queue_depth: int = 256,
        admission_rate_per_s: Optional[float] = None,
        workers: int = 4,
        seed: int = 0,
    ) -> None:
        self.hybrid = hybrid
        self.host = host
        self.port = port
        self.window_ms = window_ms
        self.engine = ServeEngine(
            hybrid,
            shards=shards,
            max_batch=max_batch,
            window_ms=window_ms,
            queue_depth=queue_depth,
            admission_rate_per_s=admission_rate_per_s,
            workers=workers,
            seed=seed,
            concurrent=True,
            now_fn=_wall_ms,
        )
        self.catalog = ScriptCatalog()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flusher: Optional[asyncio.Task] = None
        self._waiters: Dict[int, asyncio.Future] = {}
        self._connections: Set[asyncio.StreamWriter] = set()
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._loop = asyncio.get_running_loop()
        self.engine.on_batch_complete = self._batch_completed
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._flusher = asyncio.create_task(self._flush_windows())
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: refuse new work, finish and answer in-flight."""
        self._stopping = True
        if self._flusher is not None:
            self._flusher.cancel()
        # engine.close() blocks on in-flight waves — keep the loop alive
        # so their completion callbacks can resolve waiting clients
        assert self._loop is not None
        await self._loop.run_in_executor(None, self.engine.close)
        if self._waiters:  # pragma: no cover - drain answered everything
            await asyncio.gather(
                *self._waiters.values(), return_exceptions=True
            )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()

    # -- background flusher ------------------------------------------------

    async def _flush_windows(self) -> None:
        """Flush deadline-expired batch windows on the wall clock."""
        interval_s = max(self.window_ms / 2.0, 1.0) / 1000.0
        while True:
            await asyncio.sleep(interval_s)
            self.engine.pump(_wall_ms())

    def _batch_completed(self, batch) -> None:
        """Engine callback (executor thread): wake the waiting handlers."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._resolve_batch, batch)

    def _resolve_batch(self, batch) -> None:
        for pending in batch:
            future = self._waiters.pop(pending.ticket, None)
            if future is not None and not future.done():
                future.set_result(pending)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        session: Optional[SessionContext] = None
        run_tasks: Set[asyncio.Task] = set()

        async def send(payload: Dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode_frame(payload))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_line(line)
                except ProtocolError as exc:
                    await send(error_frame(None, exc))
                    continue
                op = request["op"]
                request_id = request.get("id")
                try:
                    if op == "ping":
                        await send({"id": request_id, "ok": True, "pong": True})
                    elif op == "hello":
                        session = self._hello(request)
                        await send(
                            {
                                "id": request_id,
                                "ok": True,
                                "session": session.session_id,
                                "shard": session.shard_id,
                                "protocol": PROTOCOL_VERSION,
                            }
                        )
                    elif op == "run":
                        task = asyncio.create_task(
                            self._run(send, request_id, session, request)
                        )
                        run_tasks.add(task)
                        task.add_done_callback(run_tasks.discard)
                    elif op == "stats":
                        await send(
                            {
                                "id": request_id,
                                "ok": True,
                                "stats": self.engine.stats(),
                            }
                        )
                    elif op == "audit":
                        report = await asyncio.get_running_loop().run_in_executor(
                            None, self.hybrid.audit
                        )
                        await send(
                            {
                                "id": request_id,
                                "ok": True,
                                "clean": report.clean,
                                "findings": len(report.findings),
                            }
                        )
                    elif op == "bye":
                        if run_tasks:
                            await asyncio.gather(
                                *run_tasks, return_exceptions=True
                            )
                        await send({"id": request_id, "ok": True, "bye": True})
                        break
                except ReproError as exc:
                    await send(error_frame(request_id, exc))
            if run_tasks:
                await asyncio.gather(*run_tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass

    def _hello(self, request: Dict[str, Any]) -> SessionContext:
        for field in ("user", "team", "library"):
            if not request.get(field):
                raise ProtocolError(f"hello is missing {field!r}")
        return self.engine.open_session(
            user=request["user"],
            team=request["team"],
            library_name=request["library"],
            project_name=request.get("project"),
        )

    async def _run(
        self,
        send,
        request_id: Any,
        session: Optional[SessionContext],
        request: Dict[str, Any],
    ) -> None:
        """Admit one run, await its batch's commit, answer the client."""
        try:
            if session is None:
                raise SessionError("run before hello: no session context")
            cell = request.get("cell")
            if not cell:
                raise ProtocolError("run request names no cell")
            activity = request.get("activity", "")
            kwargs = self.catalog.resolve(
                activity, request.get("script"), request.get("params")
            )
            reads = tuple(
                (str(lib), str(c)) for lib, c in request.get("reads", [])
            )
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()
            pending = self.engine.submit(
                session, cell, activity, kwargs=kwargs, reads=reads
            )
            self._waiters[pending.ticket] = future
            done: PendingRun = await future
            payload: Dict[str, Any] = {
                "id": request_id,
                "ok": done.outcome is not None and done.outcome.ok,
                "status": done.status,
                "shard": done.shard_id,
                "latency_ms": round(done.latency_ms, 3),
            }
            if done.outcome is not None and done.outcome.error is not None:
                payload["error"] = {
                    "type": type(done.outcome.error).__name__,
                    "message": str(done.outcome.error),
                }
            await send(payload)
        except ServerError as exc:
            await send(error_frame(request_id, exc))
        except ReproError as exc:
            await send(error_frame(request_id, exc))
