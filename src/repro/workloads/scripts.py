"""Reusable designer-action scripts.

The examples, tests and benchmarks all need small, known-good designer
actions (an inverter-chain schematic, a matching testbench, a labelled
strap layout).  This module is their shared, public home, so downstream
users scripting the hybrid framework can start from working material.
"""

from __future__ import annotations

from typing import Callable, List

from repro.tools.layout.editor import LayoutEditor
from repro.tools.schematic.editor import SchematicEditor
from repro.tools.simulator.testbench import Testbench

EditorAction = Callable[[SchematicEditor], None]
LayoutAction = Callable[[LayoutEditor], None]
BenchAction = Callable[[Testbench], None]


def inverter_chain_editor(n_stages: int = 2,
                          in_port: str = "a",
                          out_port: str = "y") -> EditorAction:
    """Enter an *n_stages* NOT chain from *in_port* to *out_port*."""
    if n_stages < 1:
        raise ValueError("need at least one stage")

    def edit(editor: SchematicEditor) -> None:
        editor.add_port(in_port, "in")
        editor.add_port(out_port, "out")
        previous = in_port
        for stage in range(n_stages):
            name = f"inv{stage}"
            editor.place_gate(name, "NOT", 1)
            editor.wire(previous, name, "in0")
            net = out_port if stage == n_stages - 1 else f"n{stage}"
            editor.wire(net, name, "out")
            previous = net

    return edit


def inverter_chain_bench(n_stages: int = 2,
                         in_port: str = "a",
                         out_port: str = "y") -> BenchAction:
    """Testbench matching :func:`inverter_chain_editor` exactly."""
    inverting = n_stages % 2 == 1

    def configure(testbench: Testbench) -> None:
        settle = 10 * n_stages + 10
        testbench.drive(0, in_port, "0")
        testbench.expect(settle, out_port, "1" if inverting else "0")
        testbench.drive(100, in_port, "1")
        testbench.expect(100 + settle, out_port,
                         "0" if inverting else "1")

    return configure


def labelled_strap_layout(net_names: List[str]) -> LayoutAction:
    """A DRC-clean layout with one labelled metal1 strap per net."""
    if not net_names:
        raise ValueError("need at least one net to draw")

    def edit(editor: LayoutEditor) -> None:
        pitch = 8  # comfortably above the metal1 spacing rule
        for row, net in enumerate(net_names):
            y = row * pitch
            editor.draw_rect("metal1", 0, y, 40, y + 4)
            editor.add_label(net, "metal1", 1, y + 1)

    return edit


def subcell_wrapper_editor(children: List[str],
                           in_port: str = "x",
                           out_port: str = "z") -> EditorAction:
    """A parent schematic chaining *children* instances a->y in series.

    Every child must expose an ``a`` input and a ``y`` output (the shape
    :func:`inverter_chain_editor` produces).
    """
    if not children:
        raise ValueError("need at least one child to place")

    def edit(editor: SchematicEditor) -> None:
        editor.add_port(in_port, "in")
        editor.add_port(out_port, "out")
        previous = in_port
        for index, child in enumerate(children):
            inst = f"u{index}"
            editor.place_cell(inst, child)
            editor.wire(previous, inst, "a")
            net = out_port if index == len(children) - 1 else f"m{index}"
            editor.wire(net, inst, "y")
            previous = net

    return edit


def idempotent_inverter_editor(n_stages: int = 2) -> EditorAction:
    """Inverter-chain entry that is safe to re-run on its own output.

    Durable-flow resume re-executes an activity whose first run crashed
    after the version landed; the editor then opens the existing bytes,
    so the action must detect finished work and leave it untouched
    (re-adding the ports would be a duplicate-port model violation).
    The re-run saves identical bytes, which the delta harvest dedups.
    """
    build = inverter_chain_editor(n_stages)

    def edit(editor: SchematicEditor) -> None:
        if editor.schematic.ports():
            return  # already entered by a previous (crashed) attempt
        build(editor)

    return edit


def idempotent_strap_layout(net_names: List[str]) -> LayoutAction:
    """Labelled-strap layout entry that is safe to re-run on its output."""
    build = labelled_strap_layout(net_names)

    def edit(editor: LayoutEditor) -> None:
        if editor.layout.rects:
            return  # already drawn by a previous (crashed) attempt
        build(editor)

    return edit


def inverter_flow_script(n_stages: int = 2) -> Callable[[str], dict]:
    """Activity-parameter provider for the standard three-activity flow.

    This is the shape :mod:`repro.jcf.durable_flows` expects from a
    registered script: a callable mapping an activity name to the kwargs
    its tool wrapper needs.  Every action is idempotent so a crash-killed
    flow can be resumed by simply re-running its interrupted activity.
    """

    def provide(activity: str) -> dict:
        if activity == "schematic_entry":
            return {"edit_fn": idempotent_inverter_editor(n_stages)}
        if activity == "digital_simulation":
            return {"testbench_fn": inverter_chain_bench(n_stages)}
        if activity == "layout_entry":
            return {"edit_fn": idempotent_strap_layout(["a", "y"])}
        return {}

    return provide
