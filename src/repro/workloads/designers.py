"""Scripted designer agents for the multi-user experiments.

Two agent families replay the same access pattern against the two
concurrency models Section 3.1 compares:

* :class:`FMCADOnlyAgent` — works directly on an FMCAD library through
  checkout/checkin.  A cell held by a colleague simply blocks.
* :class:`HybridAgent` — works through JCF workspaces.  A reserved cell
  version triggers the hybrid capability FMCAD lacks: the agent derives a
  *new cell version* (or variant) and works in parallel.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional

from repro.errors import LockedError, ReservationConflictError
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.jcf.framework import JCFFramework
from repro.jcf.project import JCFCellVersion, JCFProject


@dataclasses.dataclass
class AgentStats:
    """Per-agent outcome counters."""

    name: str
    attempts: int = 0
    completed: int = 0
    blocked: int = 0
    parallel_versions: int = 0
    stale_reads: int = 0


class DesignerAgent:
    """Base class: one scripted designer working in rounds."""

    def __init__(self, name: str, rng: random.Random) -> None:
        self.name = name
        self.rng = rng
        self.stats = AgentStats(name=name)
        self._busy_rounds = 0

    def step(self, cells: List[str]) -> None:
        """One simulation round: continue held work or try a new cell."""
        if self._busy_rounds > 0:
            self._busy_rounds -= 1
            if self._busy_rounds == 0:
                self._finish_work()
            return
        cell = self.rng.choice(cells)
        self.stats.attempts += 1
        if self._try_acquire(cell):
            self._busy_rounds = self.rng.randint(1, 3)
        else:
            self.stats.blocked += 1

    # -- hooks -------------------------------------------------------------

    def _try_acquire(self, cell: str) -> bool:
        raise NotImplementedError

    def _finish_work(self) -> None:
        raise NotImplementedError


class FMCADOnlyAgent(DesignerAgent):
    """Checkout/checkin worker against a bare FMCAD library."""

    def __init__(
        self,
        name: str,
        rng: random.Random,
        fmcad: FMCADFramework,
        library: Library,
        view_name: str = "schematic",
        flush_probability: float = 0.7,
    ) -> None:
        super().__init__(name, rng)
        self.fmcad = fmcad
        self.library = library
        self.view_name = view_name
        #: how reliably this designer remembers the manual .meta flush —
        #: "it is the responsibility of the designer to keep his design up
        #: to date" (Section 2.2)
        self.flush_probability = flush_probability
        self._ticket = None
        self._snapshot = None
        self._holds_meta_lock = False

    def _try_acquire(self, cell: str) -> bool:
        # the designer consults their (possibly stale) .meta snapshot first
        self._snapshot = self.library.snapshot(self.name)
        if self._snapshot.is_stale(self.library):
            self.stats.stale_reads += 1
        try:
            self._ticket = self.fmcad.checkouts.checkout(
                self.name, self.library, cell, self.view_name
            )
        except LockedError:
            return False
        # mark the checkout in the library metadata: the single .meta
        # writer lock is held for the duration of the edit — the explicit
        # coordination Section 3.1 calls a source of "severe locking
        # problems".  A denied acquire is counted by the MetaFile.
        self._holds_meta_lock = self.library.metafile.acquire(self.name)
        return True

    def _finish_work(self) -> None:
        if self._ticket is None:
            return
        data = self._ticket.working_path.read_bytes() + b"\n;; edited"
        self.fmcad.checkouts.checkin(self._ticket, self.library, data)
        if self._holds_meta_lock:
            self.library.metafile.release(self.name)
            self._holds_meta_lock = False
        # the designer must remember to flush metadata; the flush itself
        # can also be denied when a colleague holds the writer lock
        if self.rng.random() < self.flush_probability:
            self.library.flush_meta(self.name)
        self._ticket = None
        self.stats.completed += 1


class HybridAgent(DesignerAgent):
    """Workspace-reservation worker under the hybrid framework."""

    def __init__(
        self,
        name: str,
        rng: random.Random,
        jcf: JCFFramework,
        project: JCFProject,
    ) -> None:
        super().__init__(name, rng)
        self.jcf = jcf
        self.project = project
        self._held: Optional[JCFCellVersion] = None
        self._variant_counter = 0

    def _try_acquire(self, cell_name: str) -> bool:
        cell = self.project.cell(cell_name)
        cell_version = cell.latest_version()
        if cell_version is None or cell_version.published:
            cell_version = cell.create_version()
        try:
            self.jcf.workspaces.reserve(self.name, cell_version)
            self._held = cell_version
            return True
        except ReservationConflictError:
            # the hybrid capability: derive a new cell version and work on
            # it in parallel (Section 3.1)
            new_version = cell.create_version()
            self.jcf.workspaces.reserve(self.name, new_version)
            self._held = new_version
            self.stats.parallel_versions += 1
            return True

    def _finish_work(self) -> None:
        if self._held is None:
            return
        self._variant_counter += 1
        variant_name = f"{self.name}_work{self._variant_counter}"
        variant = self._held.create_variant(variant_name)
        dobj = variant.create_design_object(
            f"{self._held.cell.name}/schematic", "schematic"
        )
        dobj.new_version(b";; edited by " + self.name.encode())
        self.jcf.workspaces.publish(self.name, self._held)
        self._held = None
        self.stats.completed += 1
