"""Multi-user session simulation (the E31 workload driver)."""

from __future__ import annotations

import dataclasses
import random
from typing import List

from repro.clock import SimClock
from repro.fmcad.framework import FMCADFramework
from repro.jcf.framework import JCFFramework
from repro.workloads.designers import (
    DesignerAgent,
    FMCADOnlyAgent,
    HybridAgent,
)
from repro.workloads.designs import DesignSpec, generate_design


@dataclasses.dataclass
class SessionMetrics:
    """Aggregate outcome of one multi-user simulation."""

    mode: str
    designers: int
    cells: int
    rounds: int
    attempts: int
    completed: int
    blocked: int
    parallel_versions: int
    stale_reads: int
    meta_contention: int
    lock_wait_ms: float

    @property
    def block_rate(self) -> float:
        """Fraction of access attempts that left the designer idle."""
        return self.blocked / self.attempts if self.attempts else 0.0

    @property
    def throughput(self) -> float:
        """Completed work items per designer per round."""
        return self.completed / (self.designers * self.rounds)


class MultiUserSimulation:
    """Runs the same scripted team against either concurrency model."""

    def __init__(
        self,
        designers: int,
        cells: int,
        rounds: int = 40,
        seed: int = 0,
    ) -> None:
        if designers < 1 or cells < 1:
            raise ValueError("need at least one designer and one cell")
        self.designers = designers
        self.cells = cells
        self.rounds = rounds
        self.seed = seed

    def _design_spec(self) -> DesignSpec:
        # a flat library with `cells` leaf cells is enough for contention
        return DesignSpec(
            name="mu", depth=0, fanout=1, leaf_inputs=2,
            extra_gates=0, seed=self.seed,
        )

    def _cell_names(self) -> List[str]:
        return [f"cell{i}" for i in range(self.cells)]

    # -- FMCAD-only arm --------------------------------------------------------

    def run_fmcad_only(self, root) -> SessionMetrics:
        """The baseline: everyone checks out of one shared library."""
        clock = SimClock()
        fmcad = FMCADFramework(root, clock=clock)
        library = fmcad.create_library("shared")
        rng = random.Random(self.seed)
        design = generate_design(self._design_spec())
        leaf = design.schematics[design.top_cell]
        for cell_name in self._cell_names():
            library.create_cell(cell_name)
            view = library.create_cellview(cell_name, "schematic")
            library.write_version(view, leaf.to_bytes(), "setup")
        library.flush_meta("setup")

        agents: List[DesignerAgent] = [
            FMCADOnlyAgent(f"user{i}", random.Random(self.seed + i),
                           fmcad, library)
            for i in range(self.designers)
        ]
        self._run_rounds(agents)
        return self._collect(
            "fmcad_only", agents,
            meta_contention=library.metafile.contended_acquires,
            lock_wait_ms=clock.elapsed_by_category().get("lock_wait", 0.0),
        )

    # -- hybrid arm ----------------------------------------------------------------

    def run_hybrid(self, root) -> SessionMetrics:
        """The hybrid framework: JCF workspaces over the same cell set."""
        clock = SimClock()
        jcf = JCFFramework(root, clock=clock)
        for i in range(self.designers):
            jcf.resources.define_user("admin", f"user{i}")
        jcf.resources.define_team("admin", "team")
        for i in range(self.designers):
            jcf.resources.add_member("admin", f"user{i}", "team")
        project = jcf.desktop.create_project("user0", "shared")
        jcf.resources.assign_team_to_project("admin", "team", project.oid)
        for cell_name in self._cell_names():
            project.create_cell(cell_name)

        agents: List[DesignerAgent] = [
            HybridAgent(f"user{i}", random.Random(self.seed + i),
                        jcf, project)
            for i in range(self.designers)
        ]
        self._run_rounds(agents)
        return self._collect(
            "hybrid", agents,
            meta_contention=0,
            lock_wait_ms=clock.elapsed_by_category().get("lock_wait", 0.0),
        )

    # -- shared machinery ----------------------------------------------------------

    def _run_rounds(self, agents: List[DesignerAgent]) -> None:
        cells = self._cell_names()
        for _ in range(self.rounds):
            for agent in agents:
                agent.step(cells)

    def _collect(
        self,
        mode: str,
        agents: List[DesignerAgent],
        meta_contention: int,
        lock_wait_ms: float,
    ) -> SessionMetrics:
        return SessionMetrics(
            mode=mode,
            designers=self.designers,
            cells=self.cells,
            rounds=self.rounds,
            attempts=sum(a.stats.attempts for a in agents),
            completed=sum(a.stats.completed for a in agents),
            blocked=sum(a.stats.blocked for a in agents),
            parallel_versions=sum(
                a.stats.parallel_versions for a in agents
            ),
            stale_reads=sum(a.stats.stale_reads for a in agents),
            meta_contention=meta_contention,
            lock_wait_ms=lock_wait_ms,
        )
