"""Deterministic synthetic design generation.

Designs are trees of cells: leaves are random (seeded) combinational
logic, parents instantiate their children and reduce the child outputs.
Layouts are generated to match the schematic hierarchy (isomorphic) or to
skip a hierarchy level (non-isomorphic — the Section 3.3 problem case).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.tools.layout.editor import Instance, Label, Layout
from repro.tools.layout.geometry import Rect
from repro.tools.schematic.model import Component, Schematic

#: gate types the generator draws from (2-input, combinational)
_GATE_POOL = ("AND", "OR", "NAND", "NOR", "XOR")


@dataclasses.dataclass(frozen=True)
class DesignSpec:
    """Parameters of one synthetic design."""

    name: str
    depth: int = 2          # hierarchy levels below the top cell
    fanout: int = 2         # children per non-leaf cell
    leaf_inputs: int = 4    # primary inputs per leaf cell
    extra_gates: int = 2    # NOT padding per leaf (design-size knob)
    seed: int = 0

    @property
    def num_cells(self) -> int:
        """Total cells in the tree."""
        return sum(self.fanout ** level for level in range(self.depth + 1))


@dataclasses.dataclass
class GeneratedDesign:
    """A complete synthetic design: schematics and layouts per cell."""

    spec: DesignSpec
    top_cell: str
    schematics: Dict[str, Schematic]
    layouts: Dict[str, Layout]
    #: (parent, child) edges of the functional hierarchy
    hierarchy: List[Tuple[str, str]]

    def cell_names(self) -> List[str]:
        return sorted(self.schematics)


def make_combinational_cell(
    name: str,
    n_inputs: int,
    extra_gates: int,
    rng: random.Random,
) -> Schematic:
    """A valid random combinational cell: ``in0..inN-1`` reduced to ``out``.

    *extra_gates* NOT stages are applied to input signals first (each
    producing a new internal signal), then a balanced reduction of all
    signals guarantees every input and every intermediate net has both a
    driver and a reader — the schematic always passes ``validate()``.
    """
    if n_inputs < 2:
        raise ValueError(f"need at least 2 inputs, got {n_inputs}")
    schematic = Schematic(name)
    signals: List[str] = []
    for i in range(n_inputs):
        port = f"in{i}"
        schematic.add_port(port, "in")
        signals.append(port)
    schematic.add_port("out", "out")

    for pad in range(extra_gates):
        source = signals[pad % len(signals)]
        inverted = f"pad{pad}"
        gate = Component(f"inv{pad}", "NOT", ninputs=1)
        schematic.add_component(gate)
        schematic.connect(source, gate.name, "in0")
        schematic.connect(inverted, gate.name, "out")
        signals.append(inverted)

    gate_index = 0
    while len(signals) > 1:
        a = signals.pop(0)
        b = signals.pop(0)
        gate = Component(
            f"g{gate_index}", rng.choice(_GATE_POOL), ninputs=2
        )
        gate_index += 1
        schematic.add_component(gate)
        out_net = "out" if not signals else f"n{gate_index}"
        schematic.connect(a, gate.name, "in0")
        schematic.connect(b, gate.name, "in1")
        schematic.connect(out_net, gate.name, "out")
        signals.append(out_net)
    return schematic


def make_parent_cell(
    name: str,
    children: List[Schematic],
    n_inputs: int,
    rng: random.Random,
) -> Schematic:
    """A parent cell instantiating *children* and reducing their outputs.

    Every child input pin is wired to one of the parent's primary inputs
    (round-robin); the child outputs feed a reduction tree ending at the
    parent's ``out`` port.
    """
    schematic = Schematic(name)
    for i in range(n_inputs):
        schematic.add_port(f"in{i}", "in")
    schematic.add_port("out", "out")

    child_outputs: List[str] = []
    for index, child in enumerate(children):
        inst = f"u{index}"
        schematic.add_component(
            Component(inst, "CELL", cellref=child.cell_name)
        )
        pin = 0
        for port in child.ports():
            if port.direction == "in":
                schematic.connect(f"in{pin % n_inputs}", inst, port.name)
                pin += 1
            elif port.direction == "out":
                net = f"{inst}_{port.name}"
                schematic.connect(net, inst, port.name)
                child_outputs.append(net)

    signals = child_outputs
    gate_index = 0
    if len(signals) == 1:
        # single child output: buffer it to the parent output
        buffer = Component("b0", "BUF", ninputs=1)
        schematic.add_component(buffer)
        schematic.connect(signals[0], buffer.name, "in0")
        schematic.connect("out", buffer.name, "out")
        return schematic
    while len(signals) > 1:
        a = signals.pop(0)
        b = signals.pop(0)
        gate = Component(
            f"m{gate_index}", rng.choice(_GATE_POOL), ninputs=2
        )
        gate_index += 1
        schematic.add_component(gate)
        out_net = "out" if not signals else f"mn{gate_index}"
        schematic.connect(a, gate.name, "in0")
        schematic.connect(b, gate.name, "in1")
        schematic.connect(out_net, gate.name, "out")
        signals.append(out_net)
    return schematic


def generate_design(spec: DesignSpec) -> GeneratedDesign:
    """Build the full cell tree for *spec* (schematics + layouts)."""
    rng = random.Random(spec.seed)
    schematics: Dict[str, Schematic] = {}
    hierarchy: List[Tuple[str, str]] = []

    def build(cell_name: str, level: int) -> Schematic:
        if level == spec.depth:
            schematic = make_combinational_cell(
                cell_name, spec.leaf_inputs, spec.extra_gates, rng
            )
        else:
            children = []
            for i in range(spec.fanout):
                child_name = f"{cell_name}_{i}"
                children.append(build(child_name, level + 1))
                hierarchy.append((cell_name, child_name))
            schematic = make_parent_cell(
                cell_name, children, spec.leaf_inputs, rng
            )
        schematics[cell_name] = schematic
        return schematic

    top_cell = spec.name
    build(top_cell, 0)

    layouts = {
        name: generate_layout_for(schematic)
        for name, schematic in schematics.items()
    }
    return GeneratedDesign(
        spec=spec,
        top_cell=top_cell,
        schematics=schematics,
        layouts=layouts,
        hierarchy=sorted(hierarchy),
    )


def generate_layout_for(
    schematic: Schematic,
    isomorphic: bool = True,
    skip_children: Optional[List[str]] = None,
) -> Layout:
    """A DRC-clean abstract layout whose hierarchy mirrors the schematic.

    Each net becomes one labelled metal1 strap; each subcell instance
    becomes a placement.  With ``isomorphic=False`` (or *skip_children*)
    selected child instances are omitted and replaced by local geometry,
    producing a physical hierarchy that differs from the functional one.
    """
    layout = Layout(schematic.cell_name)
    pitch = 8  # >= metal1 spacing rule (3) with margin
    for row, net in enumerate(schematic.nets()):
        y = row * pitch
        layout.add_rect(Rect("metal1", 0, y, 40, y + 4))
        layout.add_label(Label(net.name, "metal1", 1, y + 1))

    skipped = set(skip_children or [])
    column = 0
    for component in schematic.components():
        if component.is_primitive:
            continue
        if not isomorphic or component.cellref in skipped:
            # flatten: local geometry instead of the child placement
            x = 100 + column * 50
            layout.add_rect(Rect("poly", x, 0, x + 10, 10))
            column += 1
            continue
        layout.place(
            Instance(
                name=component.name,
                cellref=component.cellref,
                dx=100 + column * 200,
                dy=0,
            )
        )
        column += 1
    return layout


def populate_library(
    fmcad: FMCADFramework,
    library_name: str,
    design: GeneratedDesign,
    author: str = "generator",
    include_layouts: bool = True,
) -> Library:
    """Create an FMCAD library holding every cell of *design*.

    Cellview versions are written bottom-up (children before parents) so
    the default-version dynamic binding always resolves.
    """
    library = fmcad.create_library(library_name)
    order = _bottom_up_order(design)
    for cell_name in order:
        library.create_cell(cell_name)
        schematic_view = library.create_cellview(cell_name, "schematic")
        library.write_version(
            schematic_view, design.schematics[cell_name].to_bytes(), author
        )
        if include_layouts and cell_name in design.layouts:
            layout_view = library.create_cellview(cell_name, "layout")
            library.write_version(
                layout_view, design.layouts[cell_name].to_bytes(), author
            )
    library.flush_meta(author)
    return library


def _bottom_up_order(design: GeneratedDesign) -> List[str]:
    children: Dict[str, List[str]] = {}
    for parent, child in design.hierarchy:
        children.setdefault(parent, []).append(child)
    order: List[str] = []

    def visit(name: str) -> None:
        for child in children.get(name, []):
            visit(child)
        if name not in order:
            order.append(name)

    visit(design.top_cell)
    # include any cells not reachable from the top (defensive)
    for name in design.cell_names():
        if name not in order:
            order.append(name)
    return order
