"""Load generator: the paper's multi-user scenario at serving scale.

Section 3.1 describes many designers in many teams working concurrently
against one coupled framework.  :mod:`repro.workloads.sessions` replays
that scenario in-process at tens of designers; this module scales it to
10³–10⁴ *served* designer sessions for the design server:

* :func:`build_scenario` — construct the multi-team environment (one
  library + project per team, one prepared cell per designer request);
* :func:`replay_engine` — deterministic replay straight into a
  :class:`~repro.server.engine.ServeEngine` (the benchmark arm: exact
  simulated latencies, reproducible snapshots);
* :func:`replay_socket` — real asyncio clients speaking the wire
  protocol against a running :class:`DesignServer` (the integration
  arm: dropped-session accounting, used by the CI smoke job);
* a ``__main__`` entry point that boots a server in-process, replays a
  scenario over sockets and reports JSON (exit non-zero on dropped
  sessions or a dirty audit).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServerOverloadError
from repro.workloads.metrics import percentiles


@dataclasses.dataclass
class ScenarioSpec:
    """Shape of one multi-team serving scenario."""

    teams: int = 4
    designers_per_team: int = 4
    runs_per_designer: int = 1
    activity: str = "schematic_entry"
    script: str = "idempotent_inverter"
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def sessions(self) -> int:
        return self.teams * self.designers_per_team

    @property
    def total_runs(self) -> int:
        return self.sessions * self.runs_per_designer


@dataclasses.dataclass
class SessionPlan:
    """One designer session: who they are and what they will run."""

    user: str
    team: str
    library: str
    project: str
    cells: List[str]


@dataclasses.dataclass
class ReplayReport:
    """What happened when a scenario was replayed."""

    sessions: int = 0
    dropped_sessions: int = 0
    submitted: int = 0
    admitted: int = 0
    rejected: Dict[str, int] = dataclasses.field(default_factory=dict)
    completed: int = 0
    ok: int = 0
    #: rejected-then-retried requests (capped jittered exponential backoff)
    retries: int = 0
    #: retries the server answered from its idempotency window instead of
    #: re-running — each one is a double commit that did not happen
    dedupe_hits: int = 0
    latencies_ms: List[float] = dataclasses.field(default_factory=list)
    makespan_ms: float = 0.0
    wall_s: float = 0.0

    @property
    def checkins_per_sim_s(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return self.ok / (self.makespan_ms / 1000.0)

    def latency_percentiles(self) -> Dict[str, float]:
        return percentiles(self.latencies_ms)

    def summary(self) -> Dict[str, Any]:
        return {
            "sessions": self.sessions,
            "dropped_sessions": self.dropped_sessions,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": dict(self.rejected),
            "completed": self.completed,
            "ok": self.ok,
            "retries": self.retries,
            "dedupe_hits": self.dedupe_hits,
            "makespan_ms": round(self.makespan_ms, 1),
            "checkins_per_sim_s": round(self.checkins_per_sim_s, 2),
            "latency_ms": {
                k: round(v, 1) for k, v in self.latency_percentiles().items()
            },
        }


def build_scenario(
    root: pathlib.Path,
    spec: ScenarioSpec,
    persistence: str = "snapshot",
) -> Tuple[Any, List[SessionPlan]]:
    """Build a fresh multi-team environment for *spec*.

    Each team owns its own FMCAD library (the sharding unit) and JCF
    project; each designer gets one prepared cell per planned run, so
    the offered load carries no artificial write conflicts — contention
    under test is the server's, not the scenario's.
    """
    from repro.core.coupling import HybridFramework

    hybrid = HybridFramework(root, persistence=persistence)
    resources = hybrid.jcf.resources
    hybrid.setup_standard_flow()
    plans: List[SessionPlan] = []
    for t in range(spec.teams):
        team = f"team{t:03d}"
        library_name = f"lib{t:03d}"
        project_name = f"proj{t:03d}"
        resources.define_team("admin", team)
        library = hybrid.fmcad.create_library(library_name)
        team_plans: List[SessionPlan] = []
        for d in range(spec.designers_per_team):
            user = f"u{t:03d}d{d:03d}"
            resources.define_user("admin", user)
            resources.add_member("admin", user, team)
            cells = [
                f"t{t:03d}d{d:03d}c{r:03d}"
                for r in range(spec.runs_per_designer)
            ]
            for cell in cells:
                library.create_cell(cell)
            team_plans.append(
                SessionPlan(
                    user=user,
                    team=team,
                    library=library_name,
                    project=project_name,
                    cells=cells,
                )
            )
        project = hybrid.adopt_library(
            team_plans[0].user, library, project_name
        )
        resources.assign_team_to_project("admin", team, project.oid)
        for plan in team_plans:
            for cell in plan.cells:
                hybrid.prepare_cell(
                    plan.user, project, cell, team_name=team
                )
        library.flush_meta("setup")
        plans.extend(team_plans)
    return hybrid, plans


# -- deterministic engine replay --------------------------------------------


def replay_engine(
    engine,
    plans: List[SessionPlan],
    spec: ScenarioSpec,
    interarrival_ms: float = 1.0,
    pump_every: int = 64,
) -> ReplayReport:
    """Replay *plans* straight into a :class:`ServeEngine`.

    Arrivals interleave round-robin across sessions (designer 1 of every
    team, then designer 2, ...) spaced *interarrival_ms* apart on the
    simulated timeline — the storm profile of "everyone hits commit
    around the same time".  The engine is pumped every *pump_every*
    arrivals and drained at the end; with a deterministic engine the
    whole replay is a pure function of (plans, spec, engine config).
    """
    from repro.server.protocol import ScriptCatalog

    catalog = ScriptCatalog()
    report = ReplayReport(sessions=len(plans))
    sessions = [
        engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        for plan in plans
    ]
    kwargs = catalog.resolve(spec.activity, spec.script, spec.params)
    now = engine.epoch_ms
    since_pump = 0
    for round_index in range(spec.runs_per_designer):
        for session, plan in zip(sessions, plans):
            now += interarrival_ms
            report.submitted += 1
            try:
                engine.submit(
                    session,
                    plan.cells[round_index],
                    spec.activity,
                    kwargs=kwargs,
                    now_ms=now,
                )
                report.admitted += 1
            except ServerOverloadError as exc:
                report.rejected[exc.reason] = (
                    report.rejected.get(exc.reason, 0) + 1
                )
            since_pump += 1
            if since_pump >= pump_every:
                engine.pump(now)
                since_pump = 0
    engine.drain(now)
    completed = engine.completed()
    report.completed = len(completed)
    report.ok = sum(1 for p in completed if p.outcome and p.outcome.ok)
    report.latencies_ms = [p.latency_ms for p in completed]
    report.makespan_ms = engine.makespan_ms
    return report


# -- socket replay (real clients) -------------------------------------------


#: server refusals worth retrying — each carries a ``retry_after_ms`` hint
RETRYABLE_ERRORS = (
    "ServerOverloadError",
    "ShardUnavailableError",
    "DeadlineExceededError",
)


async def replay_socket(
    host: str,
    port: int,
    plans: List[SessionPlan],
    spec: ScenarioSpec,
    max_concurrent: int = 64,
    retry_overload: int = 3,
    deadline_ms: Optional[float] = None,
    seed: int = 0,
    ack_timeout_ms: Optional[float] = 30_000.0,
) -> ReplayReport:
    """Replay *plans* as real protocol clients against a live server.

    Each session is one connection: hello, its runs (awaiting each
    answer), bye.  Every run carries a ``request_key``, so the retry
    contract holds end to end: a retryable refusal (overload, fenced
    shard, missed deadline), a *lost connection mid-request* or an
    answer that never arrives within *ack_timeout_ms* (the frame was
    eaten by the wire, though the link looks alive) retries up to
    *retry_overload* times with capped jittered exponential backoff
    that honors the server's ``retry_after_ms`` hint — reconnecting and
    resuming the session when the link died, and counting answers the
    server deduped instead of re-running.  A session that cannot connect,
    errors out mid-protocol beyond its retry budget or misses an answer
    counts as *dropped* — the CI smoke gate asserts that number is zero.
    """
    import asyncio
    import random

    from repro.server.protocol import encode_frame

    report = ReplayReport(sessions=len(plans))
    gate = asyncio.Semaphore(max_concurrent)
    latencies: List[float] = []

    async def one_session(plan: SessionPlan, index: int) -> Dict[str, Any]:
        rng = random.Random((seed << 16) ^ index)
        counts = {
            "submitted": 0,
            "admitted": 0,
            "ok": 0,
            "dropped": 0,
            "retries": 0,
            "dedupe_hits": 0,
        }
        rejected: Dict[str, int] = {}
        session_id: Optional[str] = None
        reader: Optional[asyncio.StreamReader] = None
        writer: Optional[asyncio.StreamWriter] = None

        def close() -> None:
            if writer is not None:
                try:
                    writer.close()
                except Exception:
                    pass

        async def call(payload: Dict[str, Any]) -> Dict[str, Any]:
            writer.write(encode_frame(payload))
            await writer.drain()
            if ack_timeout_ms is None:
                line = await reader.readline()
            else:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=ack_timeout_ms / 1000.0
                    )
                except asyncio.TimeoutError:
                    # the answer was lost on the wire; the link is no
                    # longer trustworthy — treat it like a dead peer
                    raise ConnectionError("no answer within ack timeout")
            if not line:
                raise ConnectionError("server closed mid-request")
            return json.loads(line)

        async def connect() -> None:
            nonlocal reader, writer, session_id
            close()
            reader, writer = await asyncio.open_connection(host, port)
            payload = {
                "op": "hello",
                "id": 0,
                "user": plan.user,
                "team": plan.team,
                "library": plan.library,
                "project": plan.project,
            }
            if session_id is not None:
                # rebind to the surviving session: leases and the
                # idempotency window carry across the reconnect
                payload["resume"] = session_id
            hello = await call(payload)
            if not hello.get("ok"):
                raise ConnectionError(f"hello refused: {hello.get('error')}")
            session_id = hello.get("session", session_id)

        async def backoff(attempts: int, hint_ms: Optional[float]) -> None:
            # capped jittered exponential backoff; the server's advisory
            # hint raises the floor (a 0.0 hint means "retry now")
            base = 25.0 * (2 ** (attempts - 1))
            if hint_ms is not None:
                base = max(base, float(hint_ms))
            delay_ms = min(base, 500.0) * rng.uniform(0.75, 1.25)
            await asyncio.sleep(delay_ms / 1000.0)

        async def connect_with_retry() -> None:
            # the connection (and its hello ack) can be eaten by the
            # same hostile network as any run answer — retry it too
            attempt = 0
            while True:
                try:
                    await connect()
                    return
                except (OSError, ConnectionError,
                        asyncio.IncompleteReadError):
                    attempt += 1
                    if attempt > retry_overload:
                        raise
                    counts["retries"] += 1
                    await backoff(attempt, None)

        try:
            async with gate:
                await connect_with_retry()
                try:
                    for run_index, cell in enumerate(plan.cells):
                        counts["submitted"] += 1
                        request_key = f"{plan.user}:{cell}:{run_index}"
                        attempts = 0
                        while True:
                            request: Dict[str, Any] = {
                                "op": "run",
                                "id": run_index + 1,
                                "cell": cell,
                                "activity": spec.activity,
                                "script": spec.script,
                                "params": spec.params,
                                "request_key": request_key,
                            }
                            if deadline_ms is not None:
                                request["deadline_ms"] = deadline_ms
                            try:
                                answer = await call(request)
                            except (OSError, ConnectionError):
                                # lost ack: the run may have committed.
                                # Reconnect, resume, retry the same
                                # request_key — dedupe makes it safe
                                if attempts >= retry_overload:
                                    raise
                                attempts += 1
                                counts["retries"] += 1
                                await backoff(attempts, None)
                                await connect_with_retry()
                                continue
                            if answer.get("deduped"):
                                counts["dedupe_hits"] += 1
                            if answer.get("ok"):
                                counts["admitted"] += 1
                                counts["ok"] += 1
                                latencies.append(
                                    float(answer.get("latency_ms", 0.0))
                                )
                                break
                            error = answer.get("error", {})
                            if (
                                error.get("type") in RETRYABLE_ERRORS
                                and attempts < retry_overload
                            ):
                                attempts += 1
                                counts["retries"] += 1
                                reason = "retried"
                                rejected[reason] = rejected.get(reason, 0) + 1
                                await backoff(
                                    attempts, error.get("retry_after_ms")
                                )
                                continue
                            reason = error.get("type", "unknown")
                            rejected[reason] = rejected.get(reason, 0) + 1
                            break
                    await call({"op": "bye", "id": 99})
                finally:
                    close()
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            counts["dropped"] = 1
        return {**counts, "rejected": rejected}

    results = await asyncio.gather(
        *(one_session(plan, index) for index, plan in enumerate(plans))
    )
    for outcome in results:
        report.submitted += outcome["submitted"]
        report.admitted += outcome["admitted"]
        report.ok += outcome["ok"]
        report.retries += outcome["retries"]
        report.dedupe_hits += outcome["dedupe_hits"]
        report.dropped_sessions += outcome["dropped"]
        for reason, count in outcome["rejected"].items():
            report.rejected[reason] = report.rejected.get(reason, 0) + count
    report.completed = report.ok
    report.latencies_ms = latencies
    return report


def snapshot_cell_versions(hybrid, plans: List[SessionPlan]) -> Dict[Tuple[str, str], int]:
    """Per-cellview version counts across the scenario's libraries.

    Taken before and after a replay, the difference proves the retry
    contract: a cellview gaining more than one version for a single
    planned run means a duplicate retry double-committed.
    """
    counts: Dict[Tuple[str, str], int] = {}
    for library_name in sorted({plan.library for plan in plans}):
        library = hybrid.fmcad.library(library_name)
        for cellview in library.cellviews():
            counts[(library_name, cellview.name)] = len(cellview.versions)
    return counts


# -- CI smoke entry point ----------------------------------------------------


async def _smoke(args) -> int:
    import asyncio
    import shutil
    import tempfile
    import time

    from repro.server.design_server import DesignServer

    spec = ScenarioSpec(
        teams=args.teams,
        designers_per_team=args.designers,
        runs_per_designer=args.runs,
    )
    if args.root:
        root = pathlib.Path(args.root)
        cleanup = None
    else:
        cleanup = pathlib.Path(tempfile.mkdtemp(prefix="repro-loadgen-"))
        root = cleanup / "env"
    try:
        hybrid, plans = build_scenario(root, spec, persistence=args.persistence)
        server = DesignServer(
            hybrid,
            shards=args.shards,
            max_batch=args.max_batch,
            window_ms=args.window_ms,
            queue_depth=args.queue_depth,
            workers=args.workers,
        )
        await server.start()
        before = snapshot_cell_versions(hybrid, plans)
        started = time.perf_counter()
        report = await replay_socket(
            server.host, server.port, plans, spec,
            max_concurrent=args.max_concurrent,
        )
        report.wall_s = time.perf_counter() - started
        await server.stop()
        audit = hybrid.audit()
        after = snapshot_cell_versions(hybrid, plans)
        # every planned run targets its own prepared cell exactly once,
        # so any cellview gaining more than one version means a retry
        # double-committed — the one outcome the dedupe window forbids
        double_commits = sum(
            max(0, after[key] - before.get(key, 0) - 1) for key in after
        )
        payload = report.summary()
        payload["wall_s"] = round(report.wall_s, 2)
        payload["audit_clean"] = audit.clean
        payload["audit_findings"] = len(audit.findings)
        payload["double_commits"] = double_commits
        payload["server_stats"] = {
            "shards": server.engine.shard_map.shards,
            "completed_runs": len(server.engine.completed()),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        failed = (
            report.dropped_sessions > 0
            or not audit.clean
            or report.ok < spec.total_runs
            or double_commits > 0
        )
        return 1 if failed else 0
    finally:
        if cleanup is not None:
            shutil.rmtree(cleanup, ignore_errors=True)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import asyncio

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--teams", type=int, default=4)
    parser.add_argument("--designers", type=int, default=4)
    parser.add_argument("--runs", type=int, default=1)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--window-ms", type=float, default=25.0)
    parser.add_argument("--queue-depth", type=int, default=256)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-concurrent", type=int, default=32)
    parser.add_argument(
        "--persistence", choices=("snapshot", "wal"), default="wal"
    )
    parser.add_argument(
        "--root", default=None,
        help="workspace directory (default: a throwaway tempdir)",
    )
    args = parser.parse_args(argv)
    return asyncio.run(_smoke(args))


if __name__ == "__main__":
    import sys

    sys.exit(main())
