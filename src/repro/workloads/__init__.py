"""Synthetic workloads for the evaluation benchmarks.

The 1995 evaluation used real Philips designs and designers; neither is
available, so :mod:`repro.workloads.designs` generates deterministic
hierarchical designs (valid schematics, matching or deliberately
non-isomorphic layouts) and :mod:`repro.workloads.designers` replays
scripted multi-user sessions against either framework configuration.
"""

from repro.workloads.designs import (
    DesignSpec,
    GeneratedDesign,
    generate_design,
    generate_layout_for,
    make_combinational_cell,
    populate_library,
)
from repro.workloads.designers import DesignerAgent, FMCADOnlyAgent, HybridAgent
from repro.workloads.sessions import MultiUserSimulation, SessionMetrics
from repro.workloads.metrics import percentile, percentiles, summarize
from repro.workloads.scripts import (
    inverter_chain_bench,
    inverter_chain_editor,
    labelled_strap_layout,
    subcell_wrapper_editor,
)

__all__ = [
    "DesignSpec",
    "GeneratedDesign",
    "generate_design",
    "generate_layout_for",
    "make_combinational_cell",
    "populate_library",
    "DesignerAgent",
    "FMCADOnlyAgent",
    "HybridAgent",
    "MultiUserSimulation",
    "SessionMetrics",
    "percentile",
    "percentiles",
    "summarize",
    "inverter_chain_bench",
    "inverter_chain_editor",
    "labelled_strap_layout",
    "subcell_wrapper_editor",
]
