"""Small statistics helpers for experiment reports."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def median(values: Sequence[float]) -> float:
    """Median; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than 2 samples."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """min/median/mean/max/std in one dict (benchmark table rows)."""
    if not values:
        return {"min": 0.0, "median": 0.0, "mean": 0.0, "max": 0.0, "std": 0.0}
    return {
        "min": float(min(values)),
        "median": median(values),
        "mean": mean(values),
        "max": float(max(values)),
        "std": stddev(values),
    }


def percentile(values: Sequence[float], pct: float) -> float:
    """The *pct*-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default (linear) method so latency
    tables read the same as everyone else's.  0.0 for an empty sequence.
    """
    if not values:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct!r}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    frac = rank - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


def percentiles(
    values: Sequence[float], pcts: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """p50/p95/p99-style summary: ``{"p50": ..., "p95": ..., "p99": ...}``.

    The latency-tail view every serving benchmark should report instead
    of a mean; keys are ``p<pct>`` with trailing ``.0`` trimmed.
    """
    ordered = sorted(float(v) for v in values) if values else []
    out: Dict[str, float] = {}
    for pct in pcts:
        label = f"{pct:g}"
        out[f"p{label}"] = percentile(ordered, pct) if ordered else 0.0
    return out


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio; infinity when the denominator is zero but not the numerator."""
    if denominator == 0:
        return math.inf if numerator else 0.0
    return numerator / denominator


def format_table(
    headers: List[str], rows: List[List[object]]
) -> str:
    """Plain-text table used by the benchmark harnesses' reports."""
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)
