"""The JCF 3.0 information model (Figure 1) as an OMS schema.

Figure 1 of the paper (OTO-D notation) partitions the model into Team,
Flows/Activities, Project structure, Variants, Configurations and Design
data.  Every box and edge of the figure appears here as an entity or
relationship type; ``bench_models.py`` regenerates the figure's inventory
from this schema by introspection.
"""

from __future__ import annotations

from repro.oms.schema import AttributeDef, Schema

#: Cell-version / variant / execution status values.
STATUS_IN_WORK = "in_work"
STATUS_PUBLISHED = "published"

EXEC_NOT_STARTED = "not_started"
EXEC_RUNNING = "running"
EXEC_DONE = "done"
EXEC_FAILED = "failed"

#: Coupling-intent lifecycle (two-phase coupled runs, DESIGN.md §10).
INTENT_PENDING = "pending"
INTENT_DONE = "done"
INTENT_ABORTED = "aborted"

#: Durable flow-instance lifecycle (DESIGN.md §15).
FLOW_QUEUED = "queued"            # persisted, waiting for a worker
FLOW_RUNNING = "running"          # a process is (was) driving it
FLOW_DONE = "done"                # every activity completed
FLOW_DEGRADED = "degraded"        # completed, optional activities skipped
FLOW_DEAD_LETTER = "dead_letter"  # robustness budget exhausted; parked
FLOW_ABORTED = "aborted"          # compensated: its context is gone
FLOW_TERMINAL_STATES = (
    FLOW_DONE, FLOW_DEGRADED, FLOW_DEAD_LETTER, FLOW_ABORTED
)

#: Per-activity attempt outcomes (FlowAttempt.outcome).
ATTEMPT_OK = "ok"
ATTEMPT_TRANSIENT = "transient"   # TransientFault; retryable
ATTEMPT_FAILED = "failed"         # hard failure (tool error, DRC gate)
ATTEMPT_SKIPPED = "skipped"       # optional activity degraded away

#: Trigger-event lifecycle (jcf/triggers.py).
EVENT_PENDING = "pending"
EVENT_DISPATCHED = "dispatched"


def build_jcf_schema() -> Schema:
    """Construct the Figure 1 schema.

    Returns a fresh :class:`~repro.oms.schema.Schema` named ``JCF-3.0``.
    """
    schema = Schema("JCF-3.0")

    # -- Team partition (resources) ----------------------------------------
    schema.define_entity(
        "User",
        [
            AttributeDef("name", "str", required=True),
            AttributeDef("full_name", "str"),
        ],
        doc="A registered framework user (resource, administrator-defined)",
    )
    schema.define_entity(
        "Team",
        [AttributeDef("name", "str", required=True)],
        doc="A team of users; teams support projects (Section 2.1)",
    )

    # -- Flows / Activities partition (resources, metadata) ------------------
    schema.define_entity(
        "Flow",
        [
            AttributeDef("name", "str", required=True),
            AttributeDef("frozen", "bool", default=False),
        ],
        doc="A design flow, defined in advance; fixed once frozen",
    )
    schema.define_entity(
        "Activity",
        [AttributeDef("name", "str", required=True)],
        doc="One step of a flow; modelled 1:1 with an encapsulated tool",
    )
    schema.define_entity(
        "ActivityProxy",
        [AttributeDef("name", "str", required=True)],
        doc="Stand-in for an activity inside flow definitions (Figure 1)",
    )
    schema.define_entity(
        "Tool",
        [AttributeDef("name", "str", required=True)],
        doc="An integrated or encapsulated design tool",
    )
    schema.define_entity(
        "ViewType",
        [AttributeDef("name", "str", required=True)],
        doc="Representation type consumed/produced by activities",
    )

    # -- Project structure partition ------------------------------------------
    schema.define_entity(
        "Project",
        [AttributeDef("name", "str", required=True)],
        doc="Top-level container; FMCAD libraries map onto projects (Table 1)",
    )
    schema.define_entity(
        "Cell",
        [AttributeDef("name", "str", required=True)],
        doc="Logical building block of the project structure",
    )
    schema.define_entity(
        "CellVersion",
        [
            AttributeDef("number", "int", required=True),
            AttributeDef("status", "str", default=STATUS_IN_WORK),
        ],
        doc="Instantiation of a cell; carries its own flow and team",
    )

    # -- Variants partition ---------------------------------------------------
    schema.define_entity(
        "Variant",
        [
            AttributeDef("name", "str", required=True),
            AttributeDef("status", "str", default=STATUS_IN_WORK),
        ],
        doc="Second-level versioning inside a cell version (Section 2.1)",
    )

    # -- Design data partition ---------------------------------------------------
    schema.define_entity(
        "DesignObject",
        [AttributeDef("name", "str", required=True)],
        doc="A named piece of design data of one viewtype, within a variant",
    )
    schema.define_entity(
        "DesignObjectVersion",
        [
            AttributeDef("number", "int", required=True),
            AttributeDef("directory_path", "str"),
        ],
        doc="Versioned design data; payload stored as an OMS blob",
    )
    schema.define_entity(
        "ActiveExecVersion",
        [
            AttributeDef("status", "str", default=EXEC_NOT_STARTED),
            AttributeDef("started_ms", "float"),
            AttributeDef("finished_ms", "float"),
            AttributeDef("forced_early", "bool", default=False),
        ],
        doc="One execution of an activity on a variant",
    )

    # -- Configurations partition ---------------------------------------------------
    schema.define_entity(
        "ConfigVersion",
        [
            AttributeDef("name", "str", required=True),
            AttributeDef("number", "int", required=True),
        ],
        doc="A consistent set of design-object versions",
    )

    schema.define_entity(
        "Workspace",
        [AttributeDef("owner", "str", required=True)],
        doc="A user's private workspace (the multi-user kernel, Section 2.1)",
    )

    # -- Coupling recovery (two-phase protocol) --------------------------------
    schema.define_entity(
        "CouplingIntent",
        [
            AttributeDef("kind", "str", required=True),
            AttributeDef("state", "str", default=INTENT_PENDING),
            AttributeDef("user", "str", required=True),
            AttributeDef("library", "str"),
            AttributeDef("cell", "str"),
            AttributeDef("activity", "str"),
            AttributeDef("execution_oid", "str"),
            AttributeDef("variant_oid", "str"),
            # [[view_name, latest_fmcad_version_number], ...] at intent time;
            # views absent from the list had no cellview yet (base 0)
            AttributeDef("fmcad_base", "list"),
            AttributeDef("started_ms", "float"),
            AttributeDef("finished_ms", "float"),
            AttributeDef("note", "str"),
        ],
        doc="Durable intent record journalled before any cross-framework "
            "side effect; CouplingRecovery rolls pending intents forward "
            "or back after a crash (DESIGN.md §10)",
    )

    # -- Durable flow orchestration (DESIGN.md §15) -----------------------------
    schema.define_entity(
        "FlowInstance",
        [
            AttributeDef("flow_name", "str", required=True),
            AttributeDef("status", "str", default=FLOW_QUEUED),
            AttributeDef("user", "str", required=True),
            AttributeDef("library", "str"),
            AttributeDef("cell", "str"),
            AttributeDef("team", "str"),
            AttributeDef("priority", "int", default=0),
            # name of the registered parameter script that supplies each
            # activity's tool arguments; re-registered after restart
            AttributeDef("script", "str"),
            AttributeDef("variant_oid", "str"),
            # robustness-budget epoch: `flows retry` bumps it, and only
            # attempts of the current epoch count against the budget
            AttributeDef("epoch", "int", default=0),
            # degradation findings: ["activity: reason", ...]
            AttributeDef("findings", "list"),
            AttributeDef("created_ms", "float"),
            AttributeDef("updated_ms", "float"),
            AttributeDef("note", "str"),
        ],
        doc="One persisted flow execution: the durable state machine "
            "crash recovery rolls forward (or compensates)",
    )
    schema.define_entity(
        "FlowAttempt",
        [
            AttributeDef("activity", "str", required=True),
            AttributeDef("attempt", "int", required=True),
            AttributeDef("epoch", "int", default=0),
            AttributeDef("outcome", "str", required=True),
            AttributeDef("error", "str"),
            AttributeDef("started_ms", "float"),
            AttributeDef("finished_ms", "float"),
        ],
        doc="One durably-recorded attempt of one activity of a flow "
            "instance (retry accounting survives the process)",
    )
    schema.define_entity(
        "FlowTrigger",
        [
            AttributeDef("name", "str", required=True),
            AttributeDef("event", "str", required=True),
            AttributeDef("library", "str", default="*"),
            AttributeDef("cell", "str", default="*"),
            AttributeDef("viewtype", "str", default="*"),
            AttributeDef("flow_name", "str", required=True),
            AttributeDef("script", "str"),
            AttributeDef("user", "str"),
            AttributeDef("team", "str"),
            AttributeDef("priority", "int", default=0),
            AttributeDef("enabled", "bool", default=True),
        ],
        doc="Event-driven flow trigger: a matching event enqueues a "
            "downstream flow instance (checkin -> re-simulation)",
    )
    schema.define_entity(
        "TriggerEvent",
        [
            AttributeDef("event", "str", required=True),
            AttributeDef("library", "str"),
            AttributeDef("cell", "str"),
            AttributeDef("viewtype", "str"),
            AttributeDef("state", "str", default=EVENT_PENDING),
            AttributeDef("created_ms", "float"),
            AttributeDef("dispatched_ms", "float"),
        ],
        doc="The durable pending-trigger set: events wait here until "
            "dispatch consumes them exactly once",
    )

    # -- Team relations ------------------------------------------------------------
    schema.define_relationship(
        "member_of", "User", "Team", "M:N", doc="team membership"
    )
    schema.define_relationship(
        "team_supports", "Team", "Project", "M:N",
        doc="teams can be used to support projects",
    )
    schema.define_relationship(
        "manages", "User", "Project", "M:N", doc="project-manager role"
    )

    # -- Flow relations ----------------------------------------------------------------
    schema.define_relationship(
        "flow_has_activity", "Flow", "Activity", "1:N",
        doc="flow decomposes into activities",
    )
    schema.define_relationship(
        "proxy_for", "ActivityProxy", "Activity", "N:1",
        doc="activity proxy inside a flow definition",
    )
    schema.define_relationship(
        "activity_precedes", "Activity", "Activity", "M:N",
        doc="prescribed execution order (Figure 1 'precedes')",
    )
    schema.define_relationship(
        "activity_uses_tool", "Activity", "Tool", "N:1",
        doc="which tool executes the activity (Figure 1 'uses')",
    )
    schema.define_relationship(
        "activity_needs", "Activity", "ViewType", "M:N",
        doc="viewtypes an activity consumes (Figure 1 'Needs')",
    )
    schema.define_relationship(
        "activity_creates", "Activity", "ViewType", "M:N",
        doc="viewtypes an activity produces (Figure 1 'Creates')",
    )

    # -- Project structure relations ---------------------------------------------------
    schema.define_relationship(
        "has_entry", "Project", "Cell", "1:N",
        doc="project has entry cells (Figure 1 'has entry')",
    )
    schema.define_relationship(
        "cell_in_project", "Cell", "Project", "N:1",
        doc="ownership: every cell belongs to exactly one project; data "
            "sharing between projects is not possible (Section 3.1)",
    )
    schema.define_relationship(
        "comp_of", "Cell", "Cell", "M:N",
        doc="CompOf hierarchy between cells — separate metadata, submitted "
            "manually via the desktop (Sections 2.3/3.3)",
    )
    schema.define_relationship(
        "cell_version_of", "Cell", "CellVersion", "1:N",
        doc="cell instantiation (first-level versioning)",
    )
    schema.define_relationship(
        "cv_precedes", "CellVersion", "CellVersion", "M:N",
        doc="cell-version history (Figure 1 'precedes')",
    )
    schema.define_relationship(
        "cv_flow", "CellVersion", "Flow", "N:1",
        doc="the attached flow; each cell version may carry a modified flow",
    )
    schema.define_relationship(
        "cv_team", "CellVersion", "Team", "N:1",
        doc="the attached team; may differ per cell version",
    )

    # -- Variant relations -------------------------------------------------------------
    schema.define_relationship(
        "variant_of", "CellVersion", "Variant", "1:N",
        doc="variants derived within one cell version",
    )
    schema.define_relationship(
        "variant_derived_from", "Variant", "Variant", "M:N",
        doc="variant derivation inside the cell version",
    )

    # -- Design data relations -----------------------------------------------------------
    schema.define_relationship(
        "dobj_in_variant", "Variant", "DesignObject", "1:N",
        doc="design objects carried by a variant",
    )
    schema.define_relationship(
        "dobj_viewtype", "DesignObject", "ViewType", "N:1",
        doc="the design object's representation type",
    )
    schema.define_relationship(
        "dov_of", "DesignObject", "DesignObjectVersion", "1:N",
        doc="design-object versioning (second-level versioning)",
    )
    schema.define_relationship(
        "derived", "DesignObjectVersion", "DesignObjectVersion", "M:N",
        doc="derivation relation (Figure 1 'derived'); source derives target",
    )
    schema.define_relationship(
        "equivalent", "DesignObjectVersion", "DesignObjectVersion", "M:N",
        doc="equivalence relation (Figure 1 'equivalent')",
    )

    # -- Execution relations ---------------------------------------------------------------
    schema.define_relationship(
        "exec_of_activity", "Activity", "ActiveExecVersion", "1:N",
        doc="executions of one activity",
    )
    schema.define_relationship(
        "exec_in_variant", "Variant", "ActiveExecVersion", "1:N",
        doc="execution happens in the context of a variant",
    )
    schema.define_relationship(
        "needs_of_version", "ActiveExecVersion", "DesignObjectVersion", "M:N",
        doc="input versions of an execution (Figure 1 'Needs of Version')",
    )
    schema.define_relationship(
        "creates_version", "ActiveExecVersion", "DesignObjectVersion", "M:N",
        doc="output versions of an execution (Figure 1 'Creates')",
    )

    # -- Configuration relations --------------------------------------------------------------
    schema.define_relationship(
        "config_of", "CellVersion", "ConfigVersion", "1:N",
        doc="configurations belong to a cell version",
    )
    schema.define_relationship(
        "config_precedes", "ConfigVersion", "ConfigVersion", "M:N",
        doc="configuration history (Figure 1 'Configu-Precedes')",
    )
    schema.define_relationship(
        "config_contains", "ConfigVersion", "DesignObjectVersion", "M:N",
        doc="the design-object versions a configuration pins",
    )

    # -- Durable flow relations ------------------------------------------------------------------
    schema.define_relationship(
        "instance_attempt", "FlowInstance", "FlowAttempt", "1:N",
        doc="durably-recorded attempts of one flow instance",
    )
    schema.define_relationship(
        "trigger_spawned", "FlowTrigger", "FlowInstance", "1:N",
        doc="flow instances a trigger dispatch enqueued",
    )

    # -- Workspace relations -------------------------------------------------------------------
    schema.define_relationship(
        "workspace_of", "User", "Workspace", "1:1",
        doc="each user owns one private workspace",
    )
    schema.define_relationship(
        "reserves", "Workspace", "CellVersion", "1:N",
        doc="exclusive reservation: a cell version sits in at most one "
            "workspace at a time",
    )

    return schema
