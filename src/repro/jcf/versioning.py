"""Two-level versioning analysis.

Section 3.2: "FMCAD offers a rather simple versioning mechanism, while
JCF-FMCAD provides a two-level versioning approach: versioning of cells,
and versioning of design objects (within a cell)."

``VersioningService`` provides the history queries the desktop exposes
and — for the E32 experiment — quantifies what a one-level (FMCAD-style)
scheme loses: the ability to distinguish *which cell version and variant*
a given design state belonged to.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.jcf.project import (
    JCFCell,
    JCFCellVersion,
    JCFDesignObject,
    JCFDesignObjectVersion,
)
from repro.oms.database import OMSDatabase


@dataclasses.dataclass(frozen=True)
class VersionedState:
    """One addressable design state under two-level versioning."""

    cell_name: str
    cell_version: int
    variant_name: str
    design_object: str
    object_version: int

    def one_level_key(self) -> Tuple[str, str, int]:
        """What an FMCAD-style scheme can address: cellview + version only."""
        return (self.cell_name, self.design_object, self.object_version)


class VersioningService:
    """History queries plus the two-level vs one-level comparison."""

    def __init__(self, database: OMSDatabase) -> None:
        self._db = database

    # -- history ------------------------------------------------------------

    def cell_history(self, cell: JCFCell) -> List[JCFCellVersion]:
        """Cell versions in precedes order (numbers are assigned in order)."""
        return cell.versions()

    def design_history(
        self, design_object: JCFDesignObject
    ) -> List[JCFDesignObjectVersion]:
        return design_object.versions()

    def predecessors_of(
        self, cell_version: JCFCellVersion
    ) -> List[JCFCellVersion]:
        return [
            JCFCellVersion(self._db, obj)
            for obj in self._db.sources("cv_precedes", cell_version.oid)
        ]

    def successors_of(
        self, cell_version: JCFCellVersion
    ) -> List[JCFCellVersion]:
        return [
            JCFCellVersion(self._db, obj)
            for obj in self._db.targets("cv_precedes", cell_version.oid)
        ]

    def chain_storage(self, design_object: JCFDesignObject) -> Dict[str, int]:
        """Storage shape of a design object's version chain.

        ``logical_bytes`` is what N full copies would occupy;
        ``stored_bytes`` is what the content-addressed store actually
        holds (full payloads plus delta middles).  The gap is the E36
        delta-chain saving; ``max_depth`` stays bounded by
        :attr:`~repro.oms.blobs.BlobStore.MAX_CHAIN_DEPTH`.
        """
        logical = 0
        stored = 0
        full = 0
        deltas = 0
        max_depth = 0
        seen: set = set()
        for version in design_object.versions():
            shape = self._db.describe_payload(version.oid)
            if shape is None:
                continue
            logical += shape["size"]
            digest = self._db.payload_stat(version.oid).digest
            if digest in seen:
                continue  # identical payloads share one stored blob
            seen.add(digest)
            stored += shape["stored_bytes"]
            if shape["is_delta"]:
                deltas += 1
            else:
                full += 1
            max_depth = max(max_depth, shape["depth"])
        return {
            "versions": len(design_object.versions()),
            "logical_bytes": logical,
            "stored_bytes": stored,
            "full_payloads": full,
            "delta_payloads": deltas,
            "max_depth": max_depth,
        }

    # -- two-level state enumeration (E32) --------------------------------------

    def states_of_cell(self, cell: JCFCell) -> List[VersionedState]:
        """Every addressable (cell version, variant, object, version) state.

        Expands each level of the two-level hierarchy with one batched
        :meth:`~repro.oms.database.OMSDatabase.neighbors` call instead of
        one ``targets()`` call per parent object — three index passes for
        the whole cell, regardless of how many versions and variants it
        has accumulated.
        """
        cell_versions = cell.versions()
        variant_map = self._db.neighbors(
            "variant_of", [cv.oid for cv in cell_versions]
        )
        dobj_map = self._db.neighbors(
            "dobj_in_variant",
            [v.oid for vs in variant_map.values() for v in vs],
        )
        dov_map = self._db.neighbors(
            "dov_of",
            [d.oid for ds in dobj_map.values() for d in ds],
        )
        states: List[VersionedState] = []
        for cell_version in cell_versions:
            for variant in variant_map.get(cell_version.oid, []):
                for dobj in dobj_map.get(variant.oid, []):
                    versions = sorted(
                        dov_map.get(dobj.oid, []),
                        key=lambda obj: obj.get("number"),
                    )
                    for dov in versions:
                        states.append(
                            VersionedState(
                                cell_name=cell.name,
                                cell_version=cell_version.number,
                                variant_name=variant.get("name"),
                                design_object=dobj.get("name"),
                                object_version=dov.get("number"),
                            )
                        )
        return states

    def one_level_collisions(self, cell: JCFCell) -> Dict[Tuple, int]:
        """States an FMCAD-style one-level scheme cannot tell apart.

        Returns, for each one-level key that is ambiguous, how many
        distinct two-level states collapse onto it.  A non-empty result
        demonstrates the Section 3.2 expressiveness gap.
        """
        states = self.states_of_cell(cell)
        by_key: Dict[Tuple, int] = {}
        for state in states:
            key = state.one_level_key()
            by_key[key] = by_key.get(key, 0) + 1
        return {key: n for key, n in by_key.items() if n > 1}

    def expressiveness_report(self, cell: JCFCell) -> Dict[str, int]:
        """Summary numbers for the E32 benchmark table."""
        states = self.states_of_cell(cell)
        collisions = self.one_level_collisions(cell)
        lost = sum(n - 1 for n in collisions.values())
        return {
            "two_level_states": len(states),
            "one_level_states": len({s.one_level_key() for s in states}),
            "ambiguous_keys": len(collisions),
            "indistinguishable_states": lost,
        }
