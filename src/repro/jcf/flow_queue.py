"""Priority queue with per-team fair scheduling for durable flows.

Queued :class:`FlowInstance` objects *are* the queue — it needs no
in-memory state beyond a round-robin cursor, so a restart loses nothing.
Each drain wave picks at most one runnable activity per instance,
round-robining across teams (so one team's thousand-cell regression
cannot starve another's single hot fix) and by descending priority then
FIFO within a team, and feeds the picks to ``HybridFramework.run_many``
— the batch scheduler's conflict graph and determinism guarantees apply
unchanged.  Outcomes are absorbed back through the orchestrator's
robustness machinery: transient failures consume retry budget, hard
failures dead-letter, crashes stay ``running`` for recovery to adopt.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.faults import TransientFault
from repro.jcf.durable_flows import (
    DurableFlowOrchestrator,
    JCFFlowInstance,
    StepPlan,
)
from repro.jcf.model import (
    ATTEMPT_FAILED,
    ATTEMPT_OK,
    ATTEMPT_SKIPPED,
    ATTEMPT_TRANSIENT,
    FLOW_QUEUED,
    FLOW_RUNNING,
)


@dataclasses.dataclass
class QueueReport:
    """What one :meth:`FlowQueue.drain` accomplished."""

    waves: int = 0
    activities_run: int = 0
    completed: List[str] = dataclasses.field(default_factory=list)
    degraded: List[str] = dataclasses.field(default_factory=list)
    dead_lettered: List[str] = dataclasses.field(default_factory=list)
    crashed: List[str] = dataclasses.field(default_factory=list)
    still_queued: List[str] = dataclasses.field(default_factory=list)


class FlowQueue:
    """Drains queued flow instances through the batch scheduler."""

    def __init__(
        self,
        hybrid,
        orchestrator: DurableFlowOrchestrator,
        triggers=None,
    ) -> None:
        self.hybrid = hybrid
        self.orchestrator = orchestrator
        self.triggers = triggers
        #: rotates which team goes first each wave (fairness)
        self._rr_cursor = 0

    # -- wave selection -------------------------------------------------------

    def queued(self) -> List[JCFFlowInstance]:
        return self.orchestrator.instances(status=FLOW_QUEUED)

    def next_wave(
        self, max_runs: Optional[int] = None
    ) -> List[JCFFlowInstance]:
        """Pick the instances the next wave may advance.

        Per-team fairness: buckets by team (priority desc, FIFO within),
        then round-robin across buckets starting at a rotating cursor.
        At most one instance per (library, cell) per wave — two flows on
        the same cell would race the same working variant.
        """
        buckets: Dict[str, List[JCFFlowInstance]] = {}
        for instance in self.queued():
            buckets.setdefault(instance.team, []).append(instance)
        for bucket in buckets.values():
            # select() returns id order == FIFO; sort is stable
            bucket.sort(key=lambda i: -i.priority)
        teams = sorted(buckets)
        if not teams:
            return []
        start = self._rr_cursor % len(teams)
        self._rr_cursor += 1
        order = teams[start:] + teams[:start]
        picked: List[JCFFlowInstance] = []
        claimed_cells = set()
        index = 0
        while True:
            progressed = False
            for team in order:
                bucket = buckets[team]
                if index < len(bucket):
                    progressed = True
                    instance = bucket[index]
                    key = (instance.library_name, instance.cell_name)
                    if key in claimed_cells:
                        continue
                    claimed_cells.add(key)
                    picked.append(instance)
                    if max_runs is not None and len(picked) >= max_runs:
                        return picked
            if not progressed:
                return picked
            index += 1

    # -- draining -------------------------------------------------------------

    def drain(
        self,
        workers: int = 4,
        seed: int = 0,
        max_waves: Optional[int] = None,
        dispatch_triggers: bool = True,
    ) -> QueueReport:
        """Run waves until the queue is empty (or *max_waves* hit).

        When a trigger registry is attached, pending events are
        dispatched between waves, so flows enqueued *by* this drain's
        checkins run in the same call.
        """
        report = QueueReport()
        orchestrator = self.orchestrator
        while max_waves is None or report.waves < max_waves:
            wave = self.next_wave()
            if not wave:
                if dispatch_triggers and self.triggers is not None:
                    if self.triggers.dispatch(orchestrator):
                        continue  # events spawned fresh work
                break
            report.waves += 1
            requests = []
            planned: List[Tuple[JCFFlowInstance, StepPlan]] = []
            for instance in wave:
                plan = orchestrator.plan_step(instance, raise_stuck=False)
                if plan is None:
                    continue  # finalized, degraded or dead-lettered now
                requests.append(
                    self._request_for(instance, plan)
                )
                planned.append((instance, plan))
                orchestrator._mark(instance, FLOW_RUNNING)
            if not requests:
                continue
            result = self.hybrid.run_many(
                requests, workers=workers, seed=seed
            )
            report.activities_run += len(requests)
            for outcome, (instance, plan) in zip(result.outcomes, planned):
                self._absorb(report, instance, plan, outcome)
        self._census(report)
        return report

    def _request_for(self, instance: JCFFlowInstance, plan: StepPlan):
        from repro.core.scheduler import RunRequest  # late: avoid cycle

        project, library, _variant = self.orchestrator._context(instance)
        provider = self.orchestrator._script(instance.script_name)
        kwargs = dict(provider(plan.activity) or {})
        kwargs["force_early"] = plan.force_early
        return RunRequest(
            user=instance.user,
            project=project,
            library=library,
            cell_name=instance.cell_name,
            activity=plan.activity,
            kwargs=kwargs,
            label=f"flow:{instance.oid}:{plan.activity}",
        )

    def _absorb(
        self,
        report: QueueReport,
        instance: JCFFlowInstance,
        plan: StepPlan,
        outcome,
    ) -> None:
        """Fold one scheduler outcome back into durable flow state."""
        from repro.core.scheduler import (  # late: avoid cycle
            RUN_CRASHED,
            RUN_FAILED,
            RUN_OK,
        )

        orchestrator = self.orchestrator
        attempt_no = len(
            [
                a
                for a in instance.attempts(plan.activity)
                if a.get("outcome") != ATTEMPT_SKIPPED
            ]
        ) + 1
        now = self.hybrid.clock.now_ms
        if outcome.status == RUN_OK:
            result = outcome.result
            if result.success:
                orchestrator._record_attempt(
                    instance, plan.activity, attempt_no,
                    ATTEMPT_OK, "", now,
                )
            else:
                orchestrator._record_attempt(
                    instance, plan.activity, attempt_no,
                    ATTEMPT_FAILED, result.details, now,
                )
            orchestrator._mark(instance, FLOW_QUEUED)
        elif outcome.status == RUN_FAILED:
            error = outcome.error
            if isinstance(error, TransientFault):
                orchestrator._record_attempt(
                    instance, plan.activity, attempt_no,
                    ATTEMPT_TRANSIENT, str(error), now,
                )
                orchestrator.retried_attempts += 1
                self.hybrid.clock.charge_retry_backoff(attempt_no - 1)
            else:
                orchestrator._record_attempt(
                    instance, plan.activity, attempt_no,
                    ATTEMPT_FAILED, str(error), now,
                )
            orchestrator._mark(instance, FLOW_QUEUED)
        elif outcome.status == RUN_CRASHED:
            # the process "died": leave the instance running — recovery
            # adopts it back to queued, exactly like a real crash
            report.crashed.append(instance.oid)
        else:
            # deferred / blocked: never executed, no attempt consumed
            orchestrator._mark(instance, FLOW_QUEUED)

    def _census(self, report: QueueReport) -> None:
        from repro.jcf.model import (
            FLOW_DEAD_LETTER,
            FLOW_DEGRADED,
            FLOW_DONE,
        )

        for instance in self.orchestrator.instances():
            if instance.status == FLOW_DONE:
                report.completed.append(instance.oid)
            elif instance.status == FLOW_DEGRADED:
                report.degraded.append(instance.oid)
            elif instance.status == FLOW_DEAD_LETTER:
                report.dead_lettered.append(instance.oid)
            elif instance.status == FLOW_QUEUED:
                report.still_queued.append(instance.oid)
