"""The JCF desktop: the user-facing surface of the master framework.

All metadata manipulation the paper mentions happens "via the JCF
desktop" — in particular the manual submission of design hierarchies
before design work starts (Section 3.3).  Desktop methods therefore
charge simulated UI time per interaction, which the Section 3.4
experiment aggregates into per-task interface costs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProjectError
from repro.jcf.project import JCFCell, JCFCellVersion, JCFProject, JCFVariant
from repro.jcf.resources import ResourceManager
from repro.jcf.workspace import WorkspaceManager
from repro.oms.database import OMSDatabase


class JCFDesktop:
    """Interactive operations, each costing the designer UI time."""

    def __init__(
        self,
        database: OMSDatabase,
        resources: ResourceManager,
        workspaces: WorkspaceManager,
    ) -> None:
        self._db = database
        self._resources = resources
        self._workspaces = workspaces
        #: per-user count of desktop interactions (E34 raw data)
        self.interactions_by_user: Dict[str, int] = {}

    def _interact(self, user: str, count: int = 1) -> None:
        self._db.clock.charge_ui(count)
        self.interactions_by_user[user] = (
            self.interactions_by_user.get(user, 0) + count
        )

    # -- project structure ----------------------------------------------------

    def create_project(self, user: str, name: str) -> JCFProject:
        """Create a project (one dialog)."""
        self._interact(user)
        existing = self._db.select(
            "Project", lambda o: o.get("name") == name
        )
        if existing:
            raise ProjectError(f"duplicate project {name!r}")
        obj = self._db.create("Project", {"name": name})
        return JCFProject(self._db, obj)

    def find_project(self, name: str) -> Optional[JCFProject]:
        found = self._db.select("Project", lambda o: o.get("name") == name)
        return JCFProject(self._db, found[0]) if found else None

    def create_cell(
        self, user: str, project: JCFProject, name: str, entry: bool = False
    ) -> JCFCell:
        """Create a cell in the project (one dialog)."""
        self._interact(user)
        return project.create_cell(name, entry=entry)

    # -- manual hierarchy submission (Section 3.3) ---------------------------------

    def submit_hierarchy(
        self,
        user: str,
        project: JCFProject,
        edges: Sequence[Tuple[str, str]],
    ) -> int:
        """Manually declare CompOf edges, one desktop interaction per edge.

        "The existing JCF-FMCAD prototype requires that all hierarchical
        manipulations must be done manually via the JCF desktop before
        the design is started." (Section 3.3)  Returns the number of
        interactions spent — the manual cost E33 measures.
        """
        for parent_name, child_name in edges:
            self._interact(user)
            parent = project.cell(parent_name)
            child = project.cell(child_name)
            if not parent.has_component(child):
                parent.add_component(child)
        return len(edges)

    def declared_hierarchy(
        self, project: JCFProject
    ) -> List[Tuple[str, str]]:
        """All CompOf edges of the project, as (parent, child) names.

        One batched ``neighbors()`` expansion over the whole cell list
        instead of a ``targets()`` scan per cell.
        """
        cells = project.cells()
        children = self._db.neighbors("comp_of", [cell.oid for cell in cells])
        edges: List[Tuple[str, str]] = [
            (cell.name, child.get("name"))
            for cell in cells
            for child in children.get(cell.oid, [])
        ]
        return sorted(edges)

    # -- workspace operations -----------------------------------------------------------

    def reserve_cell_version(
        self, user: str, cell_version: JCFCellVersion
    ) -> None:
        """Reserve via the desktop (one dialog)."""
        self._interact(user)
        self._workspaces.reserve(user, cell_version)

    def publish_cell_version(
        self, user: str, cell_version: JCFCellVersion
    ) -> None:
        self._interact(user)
        self._workspaces.publish(user, cell_version)

    # -- browsing ----------------------------------------------------------------------

    def browse_variant(self, user: str, variant: JCFVariant) -> Dict[str, List[int]]:
        """Inspect a variant's design objects (one dialog)."""
        self._interact(user)
        return {
            dobj.name: [v.number for v in dobj.versions()]
            for dobj in variant.design_objects()
        }

    def total_interactions(self) -> int:
        return sum(self.interactions_by_user.values())

    # -- project summary --------------------------------------------------------

    def render_project(self, project: JCFProject) -> str:
        """A one-screen textual tree of the project's structure.

        Shows cells, their CompOf children, cell versions with status and
        reservation holder, variants and design objects — the view the
        JCF desktop's browser would present.
        """
        lines = [f"project {project.name}"]
        for cell in project.cells():
            children = ", ".join(c.name for c in cell.components())
            suffix = f"  (components: {children})" if children else ""
            lines.append(f"  cell {cell.name}{suffix}")
            for cell_version in cell.versions():
                holder = self._workspaces.reserved_by(cell_version)
                held = f", reserved by {holder}" if holder else ""
                lines.append(
                    f"    v{cell_version.number} "
                    f"[{cell_version.status}{held}]"
                )
                for variant in cell_version.variants():
                    objects = ", ".join(
                        f"{d.name}({len(d.versions())})"
                        for d in variant.design_objects()
                    )
                    lines.append(
                        f"      variant {variant.name}: "
                        f"{objects or 'empty'}"
                    )
        return "\n".join(lines)
