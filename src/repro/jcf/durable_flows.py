"""Durable, crash-resumable flow orchestration.

The 1995 coupling made single tool runs recoverable (intent journal +
two-phase recovery); a *flow* — the fixed activity DAG of Section 2.1 —
still lived only in the head of whichever designer was driving it.  This
module persists the flow execution itself as first-class OMS objects
(:class:`FlowInstance` plus per-activity :class:`FlowAttempt` records),
so a crash-killed flow rolls forward from its last durably-completed
activity after ``reopen()`` + ``recover()`` instead of being restarted
by hand.

Robustness policy is per activity: a :class:`TransientFault`-raising
activity is retried under a configurable budget with simulated-clock
backoff; budget exhaustion parks the instance in ``dead_letter`` state
(typed :class:`FlowStuckError`, visible to ``audit()`` and the ``flows
list`` CLI) instead of wedging the queue; an *optional* activity whose
tool is quarantined is skipped and the flow completes ``degraded`` with
a recorded finding, its successors started through the paper's
supervised early start.

Crash points: every state-machine transition commits behind the
``flow.persist`` fault point; resume traverses ``flow.resume`` per
instance.  Both join the crash matrix next to the ``harvest.*`` and
``run.*`` points.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import FlowError, FlowStuckError, QuarantinedError
from repro.faults import CrashFault, TransientFault, fault_point
from repro.jcf.model import (
    ATTEMPT_FAILED,
    ATTEMPT_OK,
    ATTEMPT_SKIPPED,
    ATTEMPT_TRANSIENT,
    EXEC_DONE,
    EXEC_RUNNING,
    FLOW_DEAD_LETTER,
    FLOW_DEGRADED,
    FLOW_DONE,
    FLOW_QUEUED,
    FLOW_RUNNING,
    FLOW_TERMINAL_STATES,
)
from repro.jcf.project import JCFProject, JCFVariant, _Wrapper
from repro.oms.objects import OMSObject

#: HybridFramework wrapper attribute per orchestrated activity.  Defined
#: here (not imported from repro.core.scheduler) so repro.jcf stays free
#: of upward imports; the scheduler's ACTIVITIES tuple must stay in sync
#: and a test asserts it does.
WRAPPER_ACTIVITIES = (
    "schematic_entry",
    "digital_simulation",
    "layout_entry",
)


@dataclasses.dataclass(frozen=True)
class ActivityPolicy:
    """Robustness budget of one activity.

    ``attempts`` bounds executed attempts per budget epoch (transient
    *and* hard failures count; skips do not).  ``timeout_ms`` bounds the
    simulated wall time from the first attempt's start; ``None`` means
    unbounded.  ``optional`` activities degrade away (skip + finding)
    when their tool is quarantined instead of dead-lettering the flow.
    """

    attempts: int = 3
    timeout_ms: Optional[float] = None
    optional: bool = False

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")


@dataclasses.dataclass(frozen=True)
class FlowPolicy:
    """Per-flow robustness policy: a default plus per-activity overrides."""

    default: ActivityPolicy = ActivityPolicy()
    overrides: Mapping[str, ActivityPolicy] = dataclasses.field(
        default_factory=dict
    )

    def for_activity(self, name: str) -> ActivityPolicy:
        return self.overrides.get(name, self.default)


class JCFFlowInstance(_Wrapper):
    """Typed view onto one persisted FlowInstance object."""

    def _get(self, name: str):
        return self._db.get(self.oid).get(name)

    @property
    def flow_name(self) -> str:
        return self._get("flow_name")

    @property
    def status(self) -> str:
        return self._get("status")

    @property
    def user(self) -> str:
        return self._get("user")

    @property
    def library_name(self) -> str:
        return self._get("library") or ""

    @property
    def cell_name(self) -> str:
        return self._get("cell") or ""

    @property
    def team(self) -> str:
        return self._get("team") or ""

    @property
    def priority(self) -> int:
        return int(self._get("priority") or 0)

    @property
    def script_name(self) -> str:
        return self._get("script") or ""

    @property
    def variant_oid(self) -> str:
        return self._get("variant_oid") or ""

    @property
    def epoch(self) -> int:
        return int(self._get("epoch") or 0)

    @property
    def findings(self) -> List[str]:
        return list(self._get("findings") or [])

    @property
    def note(self) -> str:
        return self._get("note") or ""

    @property
    def terminal(self) -> bool:
        return self.status in FLOW_TERMINAL_STATES

    def variant(self) -> JCFVariant:
        return JCFVariant(self._db, self._db.get(self.variant_oid))

    def attempts(
        self, activity: Optional[str] = None, current_epoch_only: bool = True
    ) -> List[OMSObject]:
        """Durably-recorded attempts, id-ordered (== chronological)."""
        epoch = self.epoch
        records = []
        for obj in self._db.targets("instance_attempt", self.oid):
            if activity is not None and obj.get("activity") != activity:
                continue
            if current_epoch_only and int(obj.get("epoch") or 0) != epoch:
                continue
            records.append(obj)
        return records

    def skipped_activities(self) -> List[str]:
        return [
            obj.get("activity")
            for obj in self.attempts()
            if obj.get("outcome") == ATTEMPT_SKIPPED
        ]


@dataclasses.dataclass(frozen=True)
class StepPlan:
    """The next activity a flow instance should execute."""

    activity: str
    #: a skipped-optional predecessor means the successor starts through
    #: the coupling's supervised early start (extra consistency window)
    force_early: bool


class DurableFlowOrchestrator:
    """Drives persisted flow instances through their activity DAGs.

    Owns the script registry (named parameter providers — callables
    cannot persist, so instances store a *name* and the provider is
    re-registered after restart, exactly like crash tests re-supply
    their edit functions), the per-flow robustness policies, and the
    tool quarantine set used for graceful degradation.
    """

    def __init__(self, hybrid) -> None:
        self.hybrid = hybrid
        self._db = hybrid.jcf.db
        self._scripts: Dict[str, Callable[[str], dict]] = {}
        self._policies: Dict[str, FlowPolicy] = {}
        self._default_policy = FlowPolicy()
        self._quarantined_tools: set = set()
        #: counters (bench_flows / tests)
        self.resumed_flows = 0
        self.retried_attempts = 0
        self.degraded_flows = 0
        self.dead_lettered_flows = 0
        self._register_builtin_scripts()

    def _register_builtin_scripts(self) -> None:
        # late import: repro.workloads imports tool modules only
        from repro.workloads.scripts import inverter_flow_script

        self.register_script("inverter_flow", inverter_flow_script())

    # -- scripts --------------------------------------------------------------

    def register_script(
        self, name: str, provider: Callable[[str], dict]
    ) -> None:
        """Register *provider* (activity name -> tool kwargs) as *name*."""
        self._scripts[name] = provider

    def script_names(self) -> List[str]:
        return sorted(self._scripts)

    def _script(self, name: str) -> Callable[[str], dict]:
        try:
            return self._scripts[name]
        except KeyError:
            raise FlowError(
                f"no registered flow script {name!r}; register_script() it "
                "before running (scripts are process-level and must be "
                "re-registered after a restart)"
            ) from None

    # -- policies -------------------------------------------------------------

    def set_policy(self, flow_name: str, policy: FlowPolicy) -> None:
        self._policies[flow_name] = policy

    def policy_for(self, flow_name: str) -> FlowPolicy:
        return self._policies.get(flow_name, self._default_policy)

    # -- tool quarantine (graceful degradation) -------------------------------

    def quarantine_tool(self, tool_name: str) -> None:
        """Mark *tool_name* unavailable; optional activities skip it."""
        self._quarantined_tools.add(tool_name)

    def restore_tool(self, tool_name: str) -> None:
        self._quarantined_tools.discard(tool_name)

    def tool_quarantined(self, tool_name: str) -> bool:
        return tool_name in self._quarantined_tools

    # -- instance lifecycle ---------------------------------------------------

    def start(
        self,
        user: str,
        project: JCFProject,
        cell_name: str,
        flow_name: str,
        script: str,
        library_name: str = "",
        team: str = "",
        priority: int = 0,
    ) -> JCFFlowInstance:
        """Persist a new queued flow instance for *cell_name*.

        Joins an enclosing transaction when one is open (trigger
        dispatch relies on this for its exactly-once guarantee).
        """
        self.hybrid.jcf.flows.definition(flow_name)  # must be registered
        variant = self.hybrid.schematic_entry.working_variant(
            project, cell_name
        )
        now = self._db.clock.now_ms
        with self._db.transaction():
            fault_point("flow.persist")
            obj = self._db.create(
                "FlowInstance",
                {
                    "flow_name": flow_name,
                    "status": FLOW_QUEUED,
                    "user": user,
                    "library": library_name,
                    "cell": cell_name,
                    "team": team,
                    "priority": priority,
                    "script": script,
                    "variant_oid": variant.oid,
                    "created_ms": now,
                    "updated_ms": now,
                },
            )
        return JCFFlowInstance(self._db, obj)

    def instances(
        self, status: Optional[str] = None
    ) -> List[JCFFlowInstance]:
        """All persisted instances, id-ordered; optionally by status."""
        return [
            JCFFlowInstance(self._db, obj)
            for obj in self._db.select(
                "FlowInstance",
                (lambda o: o.get("status") == status)
                if status is not None
                else None,
            )
        ]

    def instance(self, oid: str) -> JCFFlowInstance:
        return JCFFlowInstance(self._db, self._db.get(oid))

    # -- persisted state transitions ------------------------------------------

    def _mark(
        self, instance: JCFFlowInstance, status: str, note: str = ""
    ) -> None:
        with self._db.transaction():
            fault_point("flow.persist")
            self._db.set_attr(instance.oid, "status", status)
            self._db.set_attr(
                instance.oid, "updated_ms", self._db.clock.now_ms
            )
            if note:
                self._db.set_attr(instance.oid, "note", note)

    def _record_attempt(
        self,
        instance: JCFFlowInstance,
        activity: str,
        attempt: int,
        outcome: str,
        error: str,
        started_ms: float,
    ) -> None:
        with self._db.transaction():
            fault_point("flow.persist")
            obj = self._db.create(
                "FlowAttempt",
                {
                    "activity": activity,
                    "attempt": attempt,
                    "epoch": instance.epoch,
                    "outcome": outcome,
                    "error": error,
                    "started_ms": started_ms,
                    "finished_ms": self._db.clock.now_ms,
                },
            )
            self._db.link("instance_attempt", instance.oid, obj.oid)
            self._db.set_attr(
                instance.oid, "updated_ms", self._db.clock.now_ms
            )

    def _record_skip(
        self, instance: JCFFlowInstance, activity: str, reason: str
    ) -> None:
        finding = f"{activity}: {reason}"
        with self._db.transaction():
            fault_point("flow.persist")
            obj = self._db.create(
                "FlowAttempt",
                {
                    "activity": activity,
                    "attempt": 0,
                    "epoch": instance.epoch,
                    "outcome": ATTEMPT_SKIPPED,
                    "error": reason,
                    "started_ms": self._db.clock.now_ms,
                    "finished_ms": self._db.clock.now_ms,
                },
            )
            self._db.link("instance_attempt", instance.oid, obj.oid)
            self._db.set_attr(
                instance.oid, "findings", instance.findings + [finding]
            )
            self._db.set_attr(
                instance.oid, "updated_ms", self._db.clock.now_ms
            )

    def _dead_letter(
        self,
        instance: JCFFlowInstance,
        activity: str,
        reason: str,
        raise_stuck: bool,
    ) -> None:
        self.dead_lettered_flows += 1
        self._mark(
            instance, FLOW_DEAD_LETTER, note=f"{activity}: {reason}"
        )
        if raise_stuck:
            raise FlowStuckError(
                f"flow instance {instance.oid} dead-lettered at "
                f"{activity!r}: {reason}",
                instance_oid=instance.oid,
                activity=activity,
            )

    # -- planning -------------------------------------------------------------

    def plan_step(
        self, instance: JCFFlowInstance, raise_stuck: bool = True
    ) -> Optional[StepPlan]:
        """Next activity to run, or ``None`` once the instance is terminal.

        Applies quarantine skips (degradation) and robustness-budget
        checks synchronously: calling this may itself finalize,
        degrade or dead-letter the instance.
        """
        if instance.terminal:
            return None
        flow_def = self.hybrid.jcf.flows.definition(instance.flow_name)
        policy = self.policy_for(instance.flow_name)
        variant = instance.variant()
        state = self.hybrid.jcf.engine.state_of(variant)
        while True:
            skipped = set(instance.skipped_activities())
            candidate = None
            for name in flow_def.topological_order():
                status = state.status_by_activity.get(name)
                if status == EXEC_DONE or name in skipped:
                    continue
                if status == EXEC_RUNNING:
                    raise FlowError(
                        f"activity {name!r} of instance {instance.oid} has "
                        "a running execution; run recover() before "
                        "resuming flows"
                    )
                candidate = name
                break
            if candidate is None:
                self._finalize(instance)
                return None
            activity_policy = policy.for_activity(candidate)
            tool_name = flow_def.activity(candidate).tool_name
            if self.tool_quarantined(tool_name):
                if activity_policy.optional:
                    self._record_skip(
                        instance, candidate, f"tool {tool_name!r} quarantined"
                    )
                    continue  # rescan with the skip applied
                self._dead_letter(
                    instance,
                    candidate,
                    f"required tool {tool_name!r} quarantined",
                    raise_stuck,
                )
                return None
            budget_failure = self._budget_exhausted(
                instance, candidate, activity_policy
            )
            if budget_failure:
                self._dead_letter(
                    instance, candidate, budget_failure, raise_stuck
                )
                return None
            preds = flow_def.activity(candidate).predecessors
            return StepPlan(
                activity=candidate,
                force_early=any(p in skipped for p in preds),
            )

    def _budget_exhausted(
        self,
        instance: JCFFlowInstance,
        activity: str,
        policy: ActivityPolicy,
    ) -> str:
        """Non-empty reason string when *activity* may not run again."""
        attempts = [
            a
            for a in instance.attempts(activity)
            if a.get("outcome") != ATTEMPT_SKIPPED
        ]
        if len(attempts) >= policy.attempts:
            return (
                f"retry budget exhausted ({len(attempts)}/{policy.attempts} "
                f"attempts; last error: {attempts[-1].get('error') or '?'})"
            )
        if policy.timeout_ms is not None and attempts:
            first_start = attempts[0].get("started_ms") or 0.0
            elapsed = self._db.clock.now_ms - first_start
            if elapsed > policy.timeout_ms:
                return (
                    f"timeout budget exhausted ({elapsed:.0f}ms elapsed "
                    f"> {policy.timeout_ms:.0f}ms)"
                )
        return ""

    def _finalize(self, instance: JCFFlowInstance) -> str:
        skipped = instance.skipped_activities()
        status = FLOW_DEGRADED if skipped else FLOW_DONE
        if status == FLOW_DEGRADED:
            self.degraded_flows += 1
        self._mark(instance, status)
        return status

    # -- synchronous execution ------------------------------------------------

    def _context(
        self, instance: JCFFlowInstance
    ) -> Tuple[JCFProject, "object", JCFVariant]:
        """Resolve (project, fmcad library, variant) from persisted attrs."""
        variant = instance.variant()
        project = JCFProject(
            self._db,
            self._db.get(variant.cell_version.cell.project_oid),
        )
        name = instance.library_name or project.name
        try:
            library = self.hybrid.fmcad.library(name)
        except Exception:
            library = self.hybrid.fmcad.open_library(name)
        return project, library, variant

    def run(self, instance: JCFFlowInstance) -> str:
        """Drive *instance* to a terminal state; return that state.

        Raises :class:`FlowStuckError` when the instance dead-letters
        and :class:`CrashFault` when a fault plan kills the process
        mid-flow (the instance then resumes after recovery).
        """
        if instance.terminal:
            return instance.status
        self._script(instance.script_name)  # fail fast before mutating
        self._mark(instance, FLOW_RUNNING)
        while True:
            plan = self.plan_step(instance, raise_stuck=True)
            if plan is None:
                return instance.status
            self._execute_attempt(instance, plan)

    def _execute_attempt(
        self, instance: JCFFlowInstance, plan: StepPlan
    ) -> None:
        """Run ONE attempt of the planned activity and record its outcome."""
        project, library, _variant = self._context(instance)
        provider = self._script(instance.script_name)
        kwargs = dict(provider(plan.activity) or {})
        wrapper = getattr(self.hybrid, plan.activity, None)
        if wrapper is None:
            raise FlowError(
                f"activity {plan.activity!r} has no tool wrapper; "
                f"orchestratable activities are {WRAPPER_ACTIVITIES}"
            )
        attempt_no = len(
            [
                a
                for a in instance.attempts(plan.activity)
                if a.get("outcome") != ATTEMPT_SKIPPED
            ]
        ) + 1
        started = self._db.clock.now_ms
        try:
            result = wrapper.run(
                instance.user,
                project,
                library,
                instance.cell_name,
                force_early=plan.force_early,
                **kwargs,
            )
        except CrashFault:
            raise  # a dead process records nothing; recovery takes over
        except TransientFault as exc:
            # the wrapper's inner retry loop gave up: charge backoff and
            # let the budget decide whether another attempt happens
            self._record_attempt(
                instance, plan.activity, attempt_no,
                ATTEMPT_TRANSIENT, str(exc), started,
            )
            self.retried_attempts += 1
            self._db.clock.charge_retry_backoff(attempt_no - 1)
        except QuarantinedError as exc:
            policy = self.policy_for(instance.flow_name).for_activity(
                plan.activity
            )
            if policy.optional:
                # input quarantined mid-run: degrade exactly like an
                # unavailable tool
                self._record_skip(
                    instance, plan.activity, f"quarantined input: {exc}"
                )
            else:
                self._record_attempt(
                    instance, plan.activity, attempt_no,
                    ATTEMPT_FAILED, str(exc), started,
                )
        except Exception as exc:
            self._record_attempt(
                instance, plan.activity, attempt_no,
                ATTEMPT_FAILED, str(exc), started,
            )
        else:
            if result.success:
                self._record_attempt(
                    instance, plan.activity, attempt_no,
                    ATTEMPT_OK, "", started,
                )
            else:
                self._record_attempt(
                    instance, plan.activity, attempt_no,
                    ATTEMPT_FAILED, result.details, started,
                )

    # -- resume ---------------------------------------------------------------

    def resume_pending(
        self, raise_stuck: bool = False
    ) -> List[Tuple[str, str]]:
        """Roll every non-terminal instance forward; return (oid, state).

        Called after ``reopen()`` + ``recover()``: recovery has already
        adopted stale ``running`` instances back to ``queued`` and
        failed their interrupted executions, so each instance simply
        re-plans from its durable state and re-runs its interrupted
        activity (idempotent scripts make that a delta-harvest no-op
        when the crashed attempt's output already landed).
        """
        results: List[Tuple[str, str]] = []
        for instance in self.instances():
            if instance.terminal:
                continue
            if instance.script_name not in self._scripts:
                # whoever restarts the process must re-register the
                # script before this instance can move; leave it queued
                results.append((instance.oid, "skipped:script-missing"))
                continue
            fault_point("flow.resume")
            self.resumed_flows += 1
            try:
                final = self.run(instance)
            except FlowStuckError:
                if raise_stuck:
                    raise
                final = FLOW_DEAD_LETTER
            results.append((instance.oid, final))
        return results

    # -- dead-letter operations -----------------------------------------------

    def retry_dead_letter(self, instance: JCFFlowInstance) -> None:
        """Re-queue a dead-lettered instance with a fresh budget epoch.

        Prior attempts stay on record (they belong to older epochs and
        no longer count against the budget); the instance goes back to
        ``queued`` for the next ``resume_pending()`` or queue drain.
        """
        if instance.status != FLOW_DEAD_LETTER:
            raise FlowError(
                f"instance {instance.oid} is {instance.status!r}; only "
                "dead_letter instances can be retried"
            )
        with self._db.transaction():
            fault_point("flow.persist")
            self._db.set_attr(instance.oid, "epoch", instance.epoch + 1)
            self._db.set_attr(instance.oid, "status", FLOW_QUEUED)
            self._db.set_attr(instance.oid, "note", "")
            self._db.set_attr(
                instance.oid, "updated_ms", self._db.clock.now_ms
            )

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        by_status: Dict[str, int] = {}
        for instance in self.instances():
            by_status[instance.status] = by_status.get(instance.status, 0) + 1
        return {
            "instances": sum(by_status.values()),
            "by_status": by_status,
            "resumed_flows": self.resumed_flows,
            "retried_attempts": self.retried_attempts,
            "degraded_flows": self.degraded_flows,
            "dead_lettered_flows": self.dead_lettered_flows,
        }
