"""Project data: projects, cells, cell versions, variants, design objects.

These are typed wrappers over OMS objects implementing the project-data
half of Figure 1.  Cell hierarchy (CompOf) is deliberately *metadata*,
separate from design data, and cross-project links are rejected — the two
properties that distinguish JCF from FMCAD in Sections 2.3 and 3.1.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import (
    CrossProjectSharingError,
    ProjectError,
    VersioningError,
)
from repro.ids import sort_key
from repro.jcf.model import STATUS_IN_WORK, STATUS_PUBLISHED
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject


def find_or_create_viewtype(db: OMSDatabase, name: str) -> OMSObject:
    """Return the ViewType object named *name*, creating it if needed."""
    found = db.select("ViewType", lambda o: o.get("name") == name)
    if found:
        return found[0]
    return db.create("ViewType", {"name": name})


class _Wrapper:
    """Shared base for typed views onto one OMS object."""

    def __init__(self, db: OMSDatabase, obj: OMSObject) -> None:
        self._db = db
        self._obj = obj

    @property
    def oid(self) -> str:
        return self._obj.oid

    @property
    def obj(self) -> OMSObject:
        return self._obj

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Wrapper) and other.oid == self.oid

    def __hash__(self) -> int:
        return hash(self.oid)


class JCFProject(_Wrapper):
    """Top-level project container (maps to an FMCAD library, Table 1)."""

    @property
    def name(self) -> str:
        return self._obj.get("name")

    def create_cell(self, name: str, entry: bool = False) -> "JCFCell":
        """Create a cell owned by this project."""
        if self.find_cell(name) is not None:
            raise ProjectError(
                f"project {self.name!r}: duplicate cell {name!r}"
            )
        with self._db.transaction():
            obj = self._db.create("Cell", {"name": name})
            self._db.link("cell_in_project", obj.oid, self.oid)
            if entry:
                self._db.link("has_entry", self.oid, obj.oid)
        return JCFCell(self._db, obj)

    def find_cell(self, name: str) -> Optional["JCFCell"]:
        for obj in self._db.select("Cell", lambda o: o.get("name") == name):
            owners = self._db.target_oids("cell_in_project", obj.oid)
            if owners and owners[0] == self.oid:
                return JCFCell(self._db, obj)
        return None

    def cell(self, name: str) -> "JCFCell":
        found = self.find_cell(name)
        if found is None:
            raise ProjectError(f"project {self.name!r} has no cell {name!r}")
        return found

    def cells(self) -> List["JCFCell"]:
        return [
            JCFCell(self._db, obj)
            for obj in self._db.sources("cell_in_project", self.oid)
        ]

    def entry_cells(self) -> List["JCFCell"]:
        return [
            JCFCell(self._db, obj)
            for obj in self._db.targets("has_entry", self.oid)
        ]


class JCFCell(_Wrapper):
    """A logical building block; versioned and hierarchically composed."""

    @property
    def name(self) -> str:
        return self._obj.get("name")

    @property
    def project_oid(self) -> str:
        owners = self._db.target_oids("cell_in_project", self.oid)
        if not owners:
            raise ProjectError(f"cell {self.name!r} has no owning project")
        return owners[0]

    # -- CompOf hierarchy (separate metadata) --------------------------------

    def add_component(self, child: "JCFCell") -> None:
        """Declare *child* a component of this cell (CompOf metadata).

        Rejects cross-project composition: JCF cannot share data between
        projects (Section 3.1) — unless the framework enables the
        ``cross_project_sharing`` future-work extension ("It would be
        helpful to also provide access to cells of other projects"),
        under which the foreign cell is referenced read-only and keeps
        its owning project.
        """
        if child.project_oid != self.project_oid:
            if not self._db.policy.get("cross_project_sharing", False):
                raise CrossProjectSharingError(
                    f"cannot compose {child.name!r} under {self.name!r}: "
                    "cells belong to different projects and JCF does not "
                    "support data sharing between projects"
                )
        if child.oid == self.oid or self._would_cycle(child):
            raise ProjectError(
                f"CompOf cycle: {child.name!r} already contains {self.name!r}"
            )
        self._db.link("comp_of", self.oid, child.oid)

    def _would_cycle(self, child: "JCFCell") -> bool:
        # oid-level DFS: no object fetches, just adjacency-index probes
        frontier = [child.oid]
        seen = set(frontier)
        while frontier:
            oid = frontier.pop()
            if oid == self.oid:
                return True
            for nxt_oid in self._db.target_oids("comp_of", oid):
                if nxt_oid not in seen:
                    seen.add(nxt_oid)
                    frontier.append(nxt_oid)
        return False

    def has_component(self, child: "JCFCell") -> bool:
        """True when *child* is already a direct CompOf component (O(1))."""
        return self._db.linked("comp_of", self.oid, child.oid)

    def components(self) -> List["JCFCell"]:
        return [
            JCFCell(self._db, obj)
            for obj in self._db.targets("comp_of", self.oid)
        ]

    def used_in(self) -> List["JCFCell"]:
        return [
            JCFCell(self._db, obj)
            for obj in self._db.sources("comp_of", self.oid)
        ]

    # -- first-level versioning --------------------------------------------------

    def create_version(self) -> "JCFCellVersion":
        """Instantiate the cell: a new cell version succeeding the latest."""
        previous = self.latest_version()
        number = previous.number + 1 if previous else 1
        with self._db.transaction():
            obj = self._db.create(
                "CellVersion", {"number": number, "status": STATUS_IN_WORK}
            )
            self._db.link("cell_version_of", self.oid, obj.oid)
            if previous is not None:
                self._db.link("cv_precedes", previous.oid, obj.oid)
        return JCFCellVersion(self._db, obj)

    def versions(self) -> List["JCFCellVersion"]:
        found = [
            JCFCellVersion(self._db, obj)
            for obj in self._db.targets("cell_version_of", self.oid)
        ]
        return sorted(found, key=lambda cv: cv.number)

    def version(self, number: int) -> "JCFCellVersion":
        for cv in self.versions():
            if cv.number == number:
                return cv
        raise VersioningError(f"cell {self.name!r} has no version {number}")

    def latest_version(self) -> Optional["JCFCellVersion"]:
        versions = self.versions()
        return versions[-1] if versions else None


class JCFCellVersion(_Wrapper):
    """Instantiation of a cell; carries flow, team, variants and configs."""

    @property
    def number(self) -> int:
        return self._obj.get("number")

    @property
    def status(self) -> str:
        return self._db.get(self.oid).get("status")

    @property
    def cell(self) -> JCFCell:
        owners = self._db.sources("cell_version_of", self.oid)
        if not owners:
            raise ProjectError(f"cell version {self.oid} has no owning cell")
        return JCFCell(self._db, owners[0])

    # -- attached flow and team ---------------------------------------------------

    def attach_flow(self, flow_obj: OMSObject) -> None:
        existing = self._db.target_oids("cv_flow", self.oid)
        if existing:
            self._db.unlink("cv_flow", self.oid, existing[0])
        self._db.link("cv_flow", self.oid, flow_obj.oid)

    def attached_flow(self) -> Optional[OMSObject]:
        found = self._db.targets("cv_flow", self.oid)
        return found[0] if found else None

    def attach_team(self, team_obj: OMSObject) -> None:
        existing = self._db.target_oids("cv_team", self.oid)
        if existing:
            self._db.unlink("cv_team", self.oid, existing[0])
        self._db.link("cv_team", self.oid, team_obj.oid)

    def attached_team(self) -> Optional[OMSObject]:
        found = self._db.targets("cv_team", self.oid)
        return found[0] if found else None

    # -- publication state ------------------------------------------------------------

    def publish(self) -> None:
        """Mark the cell version published (read-only for everyone)."""
        self._db.set_attr(self.oid, "status", STATUS_PUBLISHED)

    @property
    def published(self) -> bool:
        return self.status == STATUS_PUBLISHED

    # -- second-level versioning: variants ------------------------------------------------

    def create_variant(
        self, name: str, derived_from: Optional["JCFVariant"] = None
    ) -> "JCFVariant":
        """Derive a new variant inside this cell version.

        "The users have the ability to derive many different variants of
        the same flow in one cell version to store the modifications and
        to select the optimal design solution." (Section 2.1)
        """
        if any(v.name == name for v in self.variants()):
            raise VersioningError(
                f"cell version {self.number}: duplicate variant {name!r}"
            )
        with self._db.transaction():
            obj = self._db.create(
                "Variant", {"name": name, "status": STATUS_IN_WORK}
            )
            self._db.link("variant_of", self.oid, obj.oid)
            if derived_from is not None:
                self._db.link(
                    "variant_derived_from", derived_from.oid, obj.oid
                )
        return JCFVariant(self._db, obj)

    def variants(self) -> List["JCFVariant"]:
        return [
            JCFVariant(self._db, obj)
            for obj in self._db.targets("variant_of", self.oid)
        ]

    def variant(self, name: str) -> "JCFVariant":
        for variant in self.variants():
            if variant.name == name:
                return variant
        raise VersioningError(
            f"cell version {self.number} has no variant {name!r}"
        )


class JCFVariant(_Wrapper):
    """One alternative elaboration of a cell version's flow."""

    @property
    def name(self) -> str:
        return self._obj.get("name")

    @property
    def cell_version(self) -> JCFCellVersion:
        owners = self._db.sources("variant_of", self.oid)
        if not owners:
            raise ProjectError(f"variant {self.oid} has no cell version")
        return JCFCellVersion(self._db, owners[0])

    def derived_from(self) -> List["JCFVariant"]:
        return [
            JCFVariant(self._db, obj)
            for obj in self._db.sources("variant_derived_from", self.oid)
        ]

    # -- design objects ---------------------------------------------------------

    def create_design_object(
        self, name: str, viewtype_name: str
    ) -> "JCFDesignObject":
        if any(d.name == name for d in self.design_objects()):
            raise VersioningError(
                f"variant {self.name!r}: duplicate design object {name!r}"
            )
        with self._db.transaction():
            obj = self._db.create("DesignObject", {"name": name})
            self._db.link("dobj_in_variant", self.oid, obj.oid)
            viewtype = find_or_create_viewtype(self._db, viewtype_name)
            self._db.link("dobj_viewtype", obj.oid, viewtype.oid)
        return JCFDesignObject(self._db, obj)

    def design_objects(self) -> List["JCFDesignObject"]:
        return [
            JCFDesignObject(self._db, obj)
            for obj in self._db.targets("dobj_in_variant", self.oid)
        ]

    def design_object(self, name: str) -> "JCFDesignObject":
        for dobj in self.design_objects():
            if dobj.name == name:
                return dobj
        raise VersioningError(
            f"variant {self.name!r} has no design object {name!r}"
        )

    def find_design_object(
        self, viewtype_name: str
    ) -> Optional["JCFDesignObject"]:
        """The variant's design object of the given viewtype, if any."""
        for dobj in self.design_objects():
            if dobj.viewtype_name == viewtype_name:
                return dobj
        return None


class JCFDesignObject(_Wrapper):
    """A named, viewtyped piece of design data inside a variant."""

    @property
    def name(self) -> str:
        return self._obj.get("name")

    @property
    def viewtype_name(self) -> str:
        found = self._db.targets("dobj_viewtype", self.oid)
        if not found:
            raise ProjectError(f"design object {self.name!r} has no viewtype")
        return found[0].get("name")

    @property
    def variant(self) -> JCFVariant:
        owners = self._db.sources("dobj_in_variant", self.oid)
        if not owners:
            raise ProjectError(f"design object {self.name!r} has no variant")
        return JCFVariant(self._db, owners[0])

    def new_version(
        self, payload: bytes, directory_path: str = ""
    ) -> "JCFDesignObjectVersion":
        """Store a new design-object version with *payload* in OMS.

        The payload is delta-encoded against the previous version when
        that saves space — version chains of small edits cost roughly one
        full payload plus the edits, not N full copies.  Reconstruction
        is transparent to every reader.
        """
        latest = self.latest_version()
        number = latest.number + 1 if latest else 1
        base = self._db.payload_stat(latest.oid) if latest else None
        with self._db.transaction():
            obj = self._db.create(
                "DesignObjectVersion",
                {"number": number, "directory_path": directory_path},
                payload=payload,
                payload_delta_base=base.digest if base else None,
            )
            self._db.link("dov_of", self.oid, obj.oid)
        return JCFDesignObjectVersion(self._db, obj)

    def versions(self) -> List["JCFDesignObjectVersion"]:
        found = [
            JCFDesignObjectVersion(self._db, obj)
            for obj in self._db.targets("dov_of", self.oid)
        ]
        return sorted(found, key=lambda v: v.number)

    def version(self, number: int) -> "JCFDesignObjectVersion":
        for v in self.versions():
            if v.number == number:
                return v
        raise VersioningError(
            f"design object {self.name!r} has no version {number}"
        )

    def latest_version(self) -> Optional["JCFDesignObjectVersion"]:
        versions = self.versions()
        return versions[-1] if versions else None


class JCFDesignObjectVersion(_Wrapper):
    """Versioned design data; payload lives in OMS as an opaque blob."""

    @property
    def number(self) -> int:
        return self._obj.get("number")

    @property
    def design_object(self) -> JCFDesignObject:
        owners = self._db.sources("dov_of", self.oid)
        if not owners:
            raise ProjectError(f"version {self.oid} has no design object")
        return JCFDesignObject(self._db, owners[0])

    @property
    def payload_size(self) -> int:
        """Payload size — an O(1) blob-table probe, no bytes materialized."""
        return self._db.get(self.oid).payload_size

    @property
    def payload_digest(self) -> Optional[str]:
        """Content digest of the payload — O(1), no bytes materialized."""
        return self._db.get(self.oid).payload_digest

    # -- Figure 1 'derived' / 'equivalent' relations -----------------------------

    def record_derived(self, successor: "JCFDesignObjectVersion") -> None:
        """Record that *successor* was derived from this version."""
        self._db.link("derived", self.oid, successor.oid)

    def derived_versions(self) -> List["JCFDesignObjectVersion"]:
        return [
            JCFDesignObjectVersion(self._db, obj)
            for obj in self._db.targets("derived", self.oid)
        ]

    def derivation_sources(self) -> List["JCFDesignObjectVersion"]:
        return [
            JCFDesignObjectVersion(self._db, obj)
            for obj in self._db.sources("derived", self.oid)
        ]

    def mark_equivalent(self, other: "JCFDesignObjectVersion") -> None:
        self._db.link("equivalent", self.oid, other.oid)

    def equivalents(self) -> List["JCFDesignObjectVersion"]:
        forward = self._db.targets("equivalent", self.oid)
        backward = self._db.sources("equivalent", self.oid)
        by_oid = {obj.oid: obj for obj in forward + backward}
        return [
            JCFDesignObjectVersion(self._db, by_oid[oid])
            for oid in sorted(by_oid, key=sort_key)
        ]
