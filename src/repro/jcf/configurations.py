"""JCF configurations: consistent sets of design-object versions.

Figure 1's Configurations partition: a cell version owns configuration
versions; configuration versions precede one another; each configuration
pins design-object versions (at most one per design object).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.jcf.project import (
    JCFCellVersion,
    JCFDesignObjectVersion,
    _Wrapper,
)
from repro.oms.database import OMSDatabase


class JCFConfiguration(_Wrapper):
    """One ConfigVersion object."""

    @property
    def name(self) -> str:
        return self._obj.get("name")

    @property
    def number(self) -> int:
        return self._obj.get("number")

    @property
    def cell_version(self) -> JCFCellVersion:
        owners = self._db.sources("config_of", self.oid)
        if not owners:
            raise ConfigurationError(
                f"configuration {self.name!r} has no cell version"
            )
        return JCFCellVersion(self._db, owners[0])

    def pinned_versions(self) -> List[JCFDesignObjectVersion]:
        return [
            JCFDesignObjectVersion(self._db, obj)
            for obj in self._db.targets("config_contains", self.oid)
        ]

    def predecessors(self) -> List["JCFConfiguration"]:
        return [
            JCFConfiguration(self._db, obj)
            for obj in self._db.sources("config_precedes", self.oid)
        ]


class ConfigurationService:
    """Creates and validates configuration versions."""

    def __init__(self, database: OMSDatabase) -> None:
        self._db = database

    def create(
        self,
        cell_version: JCFCellVersion,
        name: str,
        predecessor: Optional[JCFConfiguration] = None,
    ) -> JCFConfiguration:
        """Open a new configuration version under *cell_version*."""
        existing = self.configurations_of(cell_version)
        if any(c.name == name for c in existing):
            raise ConfigurationError(
                f"cell version {cell_version.number}: duplicate "
                f"configuration {name!r}"
            )
        number = max((c.number for c in existing), default=0) + 1
        with self._db.transaction():
            obj = self._db.create(
                "ConfigVersion", {"name": name, "number": number}
            )
            self._db.link("config_of", cell_version.oid, obj.oid)
            if predecessor is not None:
                self._db.link("config_precedes", predecessor.oid, obj.oid)
        return JCFConfiguration(self._db, obj)

    def configurations_of(
        self, cell_version: JCFCellVersion
    ) -> List[JCFConfiguration]:
        return [
            JCFConfiguration(self._db, obj)
            for obj in self._db.targets("config_of", cell_version.oid)
        ]

    def pin(
        self,
        configuration: JCFConfiguration,
        version: JCFDesignObjectVersion,
    ) -> None:
        """Add a design-object version to the configuration.

        Enforces membership (the version's variant must belong to the
        configuration's cell version) and uniqueness (at most one version
        per design object).
        """
        owner_cv = version.design_object.variant.cell_version
        if owner_cv.oid != configuration.cell_version.oid:
            raise ConfigurationError(
                f"version {version.oid} belongs to cell version "
                f"{owner_cv.number}, not the configuration's "
                f"{configuration.cell_version.number}"
            )
        target_dobj = version.design_object.oid
        for pinned in configuration.pinned_versions():
            if pinned.design_object.oid == target_dobj:
                raise ConfigurationError(
                    f"configuration {configuration.name!r} already pins a "
                    f"version of design object "
                    f"{version.design_object.name!r}"
                )
        self._db.link("config_contains", configuration.oid, version.oid)

    def unpin(
        self,
        configuration: JCFConfiguration,
        version: JCFDesignObjectVersion,
    ) -> None:
        self._db.unlink("config_contains", configuration.oid, version.oid)

    def validate(self, configuration: JCFConfiguration) -> List[str]:
        """List integrity problems of a configuration (empty = consistent)."""
        problems: List[str] = []
        seen_objects = set()
        for version in configuration.pinned_versions():
            dobj = version.design_object
            if dobj.oid in seen_objects:
                problems.append(
                    f"multiple versions of design object {dobj.name!r}"
                )
            seen_objects.add(dobj.oid)
            if dobj.variant.cell_version.oid != configuration.cell_version.oid:
                problems.append(
                    f"version of {dobj.name!r} from a foreign cell version"
                )
        return problems
