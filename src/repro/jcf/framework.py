"""The JCF framework facade: one wired-up JESSI-COMMON-Framework 3.0."""

from __future__ import annotations

import contextlib
import pathlib
import threading
from typing import Any, Dict, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.oms.wal import WriteAheadLog

from repro.clock import SimClock
from repro.jcf.configurations import ConfigurationService
from repro.jcf.desktop import JCFDesktop
from repro.jcf.flow_engine import FlowEngine
from repro.jcf.flows import FlowDef, FlowRegistry
from repro.jcf.model import build_jcf_schema
from repro.jcf.project import JCFProject
from repro.jcf.resources import ResourceManager
from repro.jcf.versioning import VersioningService
from repro.jcf.workspace import WorkspaceManager
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject
from repro.oms.query import QueryEngine
from repro.oms.storage import StagingArea


class JCFFramework:
    """Facade over one JCF installation.

    Wires the OMS database (with the Figure 1 schema), resource
    management, flow registry and engine, workspaces, configurations and
    the desktop.  Design data leaves the framework only through
    :attr:`staging` — the closed-interface property of Section 2.1.
    """

    def __init__(
        self,
        root: pathlib.Path,
        clock: Optional[SimClock] = None,
        administrator: str = "admin",
        enable_procedural_interface: bool = False,
        allow_cross_project_sharing: bool = False,
        snapshot: Optional[bytes] = None,
        wal: Optional["WriteAheadLog"] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.clock = clock or SimClock()
        self.schema = build_jcf_schema()
        if snapshot is not None and wal is not None:
            raise ValueError(
                "pass either snapshot= or wal=, not both: a WAL directory "
                "carries its own checkpoint"
            )
        self.wal = wal
        self.wal_recovery = None
        if wal is not None:
            # WAL persistence: rebuild from the last good checkpoint plus
            # log replay (a fresh directory yields an empty database),
            # then attach so every commit from here on is logged.  On a
            # fresh install the bootstrap objects created below are the
            # first records in the log.
            self.db, self.wal_recovery = wal.recover(
                self.schema,
                clock=self.clock,
                enable_procedural_interface=enable_procedural_interface,
                policy={
                    "cross_project_sharing": allow_cross_project_sharing
                },
            )
            self.db.attach_wal(wal)
        elif snapshot is not None:
            from repro.oms.snapshot import restore_snapshot

            self.db = restore_snapshot(
                self.schema,
                snapshot,
                clock=self.clock,
                enable_procedural_interface=enable_procedural_interface,
            )
        else:
            self.db = OMSDatabase(
                self.schema,
                clock=self.clock,
                enable_procedural_interface=enable_procedural_interface,
                policy={
                    "cross_project_sharing": allow_cross_project_sharing
                },
            )
        self.query = QueryEngine(self.db)
        self.resources = ResourceManager(self.db, administrator=administrator)
        self.flows = FlowRegistry(self.db)
        self.engine = FlowEngine(self.db, self.flows)
        self.workspaces = WorkspaceManager(self.db, self.resources)
        self.configurations = ConfigurationService(self.db)
        self.desktop = JCFDesktop(self.db, self.resources, self.workspaces)
        self.versioning = VersioningService(self.db)
        self._default_staging = StagingArea(self.db, self.root / "staging")
        self._staging_local = threading.local()
        if snapshot is not None or (
            self.wal_recovery is not None and not self.wal_recovery.fresh
        ):
            self.flows.rehydrate()

    # -- staging ---------------------------------------------------------------

    @property
    def staging(self) -> StagingArea:
        """The staging area serving the calling thread.

        Normally the framework-wide default area; inside a
        :meth:`staging_sandbox` block (one per scheduled run) it is that
        run's private sandbox, so concurrent runs can never collide on
        staged file names.
        """
        override = getattr(self._staging_local, "area", None)
        return override if override is not None else self._default_staging

    @contextlib.contextmanager
    def staging_sandbox(self, name: str) -> Iterator[StagingArea]:
        """Bind a private staging directory to the calling thread.

        The sandbox lives at ``<staging root>/<name>`` — inside the
        default area's root, so the crash audit and recovery sweeps can
        find a crashed run's leavings by scanning subdirectories.  The
        caller owns cleanup: the scheduler clears a sandbox after a
        clean run and deliberately leaves crash leavings for
        ``CouplingRecovery.recover()``.
        """
        sandbox = StagingArea(
            self.db,
            self._default_staging.root / name,
            copy_on_write=self._default_staging.copy_on_write,
        )
        previous = getattr(self._staging_local, "area", None)
        self._staging_local.area = sandbox
        try:
            yield sandbox
        finally:
            self._staging_local.area = previous
            # fold the sandbox's traffic into the framework-wide
            # accounting so stats() still reports total staging cost
            default = self._default_staging
            with default._lock:
                default.bytes_exported += sandbox.bytes_exported
                default.bytes_imported += sandbox.bytes_imported
                default.files_exported += sandbox.files_exported
                default.files_imported += sandbox.files_imported
                default.export_hits += sandbox.export_hits
                default.export_links += sandbox.export_links
                default.export_reflinks += sandbox.export_reflinks
                default.import_hits += sandbox.import_hits

    # -- persistence ---------------------------------------------------------

    def save_snapshot(self) -> bytes:
        """Serialise the whole metadata+design-data state (OMS snapshot)."""
        from repro.oms.snapshot import dump_snapshot

        return dump_snapshot(self.db)

    def checkpoint(self) -> pathlib.Path:
        """Compact the attached WAL (WAL persistence mode only)."""
        if self.wal is None:
            raise ValueError(
                "checkpoint(): this framework has no attached WAL; "
                "snapshot-mode persistence goes through save_snapshot()"
            )
        return self.wal.checkpoint(self.db)

    # -- convenience -----------------------------------------------------------

    def register_flow(self, flow_def: FlowDef) -> OMSObject:
        """Materialise a flow definition as fixed metadata."""
        return self.flows.register(flow_def)

    def project(self, name: str) -> JCFProject:
        found = self.desktop.find_project(name)
        if found is None:
            raise KeyError(f"no project {name!r}")
        return found

    def checkout_design_data(self, user: str, version) -> "object":
        """Stage a design-object version out of OMS for *user*.

        Enforces the workspace visibility rules of Section 2.1: other
        users "are only allowed to read the published parts of the design
        data".  Returns the staged file (and charges the copy — even this
        read-only access pays, Section 3.6).
        """
        from repro.errors import AuthorizationError

        cell_version = version.design_object.variant.cell_version
        if not self.workspaces.can_read(user, cell_version):
            holder = self.workspaces.reserved_by(cell_version)
            raise AuthorizationError(
                f"user {user!r} may not read unpublished data of cell "
                f"version {cell_version.number} (reserved by {holder!r})"
            )
        # read-only by definition (writable access needs a reservation),
        # so the export is eligible for the zero-copy hard-link path
        return self.staging.export_object(version.oid, writable=False)

    def stats(self) -> Dict[str, Any]:
        return {
            "db": self.db.stats(),
            "workspaces": self.workspaces.stats(),
            "staging": self.staging.accounting(),
            "flow_engine": {
                "rejected_starts": self.engine.rejected_starts,
                "forced_starts": self.engine.forced_starts,
            },
        }
