"""JCF — simulator of the JESSI-COMMON-Framework 3.0 (the master).

The package reproduces the Figure 1 information architecture and the
behaviours the paper evaluates:

* a strict split between **resources** (users, teams, flows — metadata
  defined in advance by the framework administrator) and **project data**
  (cells, cell versions, variants, design objects);
* **two-level versioning**: cell versions, and design-object versions
  within a variant (Section 3.2);
* the **workspace concept**: a cell version reserved in one user's
  private workspace is writable only by that user; others read published
  data (Section 2.1);
* **fixed flows**: activities execute in the prescribed order only
  (Sections 2.1/3.5), with every execution recording needs/creates
  derivation relations;
* hierarchy as **separate metadata** (CompOf), submitted manually via the
  desktop (Sections 2.3/3.3) — isomorphic hierarchies only in JCF 3.0;
* everything stored in the **OMS** database with its closed interface.
"""

from repro.jcf.model import build_jcf_schema
from repro.jcf.resources import ResourceManager
from repro.jcf.flows import (
    ActivityDef,
    FlowDef,
    fpga_flow,
    standard_encapsulation_flow,
)
from repro.jcf.framework import JCFFramework
from repro.jcf.project import (
    JCFCell,
    JCFCellVersion,
    JCFDesignObject,
    JCFDesignObjectVersion,
    JCFProject,
    JCFVariant,
)
from repro.jcf.workspace import WorkspaceManager
from repro.jcf.flow_engine import FlowEngine, FlowExecutionState
from repro.jcf.versioning import VersioningService
from repro.jcf.configurations import ConfigurationService
from repro.jcf.desktop import JCFDesktop

__all__ = [
    "build_jcf_schema",
    "ResourceManager",
    "ActivityDef",
    "FlowDef",
    "fpga_flow",
    "standard_encapsulation_flow",
    "JCFFramework",
    "JCFProject",
    "JCFCell",
    "JCFCellVersion",
    "JCFVariant",
    "JCFDesignObject",
    "JCFDesignObjectVersion",
    "WorkspaceManager",
    "FlowEngine",
    "FlowExecutionState",
    "VersioningService",
    "ConfigurationService",
    "JCFDesktop",
]
