"""Flow definitions.

Flows are JCF resources: "each design flow has to be defined in advance,
and therefore, it will become part of the resources and can be regarded
as metadata" (Section 2.1).  A flow is a DAG of activities; each activity
is executed by one tool, consumes design data of some viewtypes and
produces others.  Once materialised into the database a flow is frozen —
"Flows are fixed and cannot be modified".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from repro.errors import FlowError, FlowFrozenError
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject


@dataclasses.dataclass(frozen=True)
class ActivityDef:
    """Definition of one flow step.

    ``needs``/``creates`` list viewtype names (Figure 1 'Needs'/'Creates');
    ``predecessors`` lists activity names that must complete first.
    """

    name: str
    tool_name: str
    needs: Tuple[str, ...] = ()
    creates: Tuple[str, ...] = ()
    predecessors: Tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class FlowDef:
    """A validated DAG of activity definitions."""

    name: str
    activities: Tuple[ActivityDef, ...]

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check name uniqueness, predecessor resolution and acyclicity."""
        names = [a.name for a in self.activities]
        if len(names) != len(set(names)):
            raise FlowError(f"flow {self.name!r}: duplicate activity names")
        known = set(names)
        for activity in self.activities:
            for pred in activity.predecessors:
                if pred not in known:
                    raise FlowError(
                        f"flow {self.name!r}: activity {activity.name!r} "
                        f"references unknown predecessor {pred!r}"
                    )
        self._topological_order()  # raises on cycles

    def activity(self, name: str) -> ActivityDef:
        for activity in self.activities:
            if activity.name == name:
                return activity
        raise FlowError(f"flow {self.name!r} has no activity {name!r}")

    def _topological_order(self) -> List[str]:
        order: List[str] = []
        visiting: Set[str] = set()
        done: Set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise FlowError(f"flow {self.name!r}: cycle through {name!r}")
            visiting.add(name)
            for pred in self.activity(name).predecessors:
                visit(pred)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for activity in self.activities:
            visit(activity.name)
        return order

    def topological_order(self) -> List[str]:
        """Activity names in a valid execution order."""
        return self._topological_order()

    def successors_of(self, name: str) -> List[str]:
        self.activity(name)
        return [
            a.name for a in self.activities if name in a.predecessors
        ]


#: The flow used by the 1995 encapsulation scenario (Section 2.4): three
#: FMCAD tools, each modelled by one JCF activity.  The simulator needs a
#: finished schematic; the layout derives from the simulated schematic.
def standard_encapsulation_flow(name: str = "jcf_fmcad_flow") -> FlowDef:
    """Schematic entry -> digital simulation -> layout entry."""
    return FlowDef(
        name=name,
        activities=(
            ActivityDef(
                name="schematic_entry",
                tool_name="schematic_editor",
                needs=(),
                creates=("schematic",),
            ),
            ActivityDef(
                name="digital_simulation",
                tool_name="digital_simulator",
                needs=("schematic",),
                creates=("simulation",),
                predecessors=("schematic_entry",),
            ),
            ActivityDef(
                name="layout_entry",
                tool_name="layout_editor",
                needs=("schematic",),
                creates=("layout",),
                predecessors=("digital_simulation",),
            ),
        ),
    )


def fpga_flow(name: str = "fpga_flow") -> FlowDef:
    """The FPGA design flow of [Seep94b], modelled in JCF.

    Schematic entry is white-box; the downstream FPGA vendor tools are
    black boxes (see :mod:`repro.core.integration`): synthesis consumes
    the schematic, place-and-route consumes the netlist, bitstream
    generation consumes the placement.
    """
    return FlowDef(
        name=name,
        activities=(
            ActivityDef(
                name="schematic_entry",
                tool_name="schematic_editor",
                creates=("schematic",),
            ),
            ActivityDef(
                name="synthesis",
                tool_name="synthesis_tool",
                needs=("schematic",),
                creates=("netlist",),
                predecessors=("schematic_entry",),
            ),
            ActivityDef(
                name="place_and_route",
                tool_name="place_route_tool",
                needs=("netlist",),
                creates=("placement",),
                predecessors=("synthesis",),
            ),
            ActivityDef(
                name="bitstream_generation",
                tool_name="bitstream_tool",
                needs=("placement",),
                creates=("bitstream",),
                predecessors=("place_and_route",),
            ),
        ),
    )


class FlowRegistry:
    """Materialises :class:`FlowDef` objects into the OMS database.

    Materialised flows are frozen; re-registration or post-hoc edits raise
    :class:`FlowFrozenError`.  Only the project manager (or administrator)
    may define flows — "These flows can only be defined and changed by
    the project manager" (Section 3.5).
    """

    def __init__(self, database: OMSDatabase) -> None:
        self._db = database
        self._defs: Dict[str, FlowDef] = {}
        #: callbacks invoked with the flow name after every mutation of
        #: the definition table (register or rehydrate).  The flow
        #: engine subscribes its state-cache invalidation here: a cached
        #: per-variant status map is keyed by activity names taken from
        #: the definition, so any change to the definition table must
        #: drop it — even for a flow of the same name, whose materialised
        #: activity set may differ from what the cache was computed
        #: against (the classic case: rehydrate() after a restore
        #: replacing a stale in-memory definition table).
        self._listeners: List = []

    def add_listener(self, callback) -> None:
        """Call *callback(flow_name)* after every definition mutation."""
        self._listeners.append(callback)

    def _notify(self, name: str) -> None:
        for callback in self._listeners:
            callback(name)

    def register(self, flow_def: FlowDef) -> OMSObject:
        """Store the flow and its activities as frozen metadata."""
        if flow_def.name in self._defs:
            raise FlowFrozenError(
                f"flow {flow_def.name!r} is already registered and fixed"
            )
        with self._db.transaction():
            flow_obj = self._db.create(
                "Flow", {"name": flow_def.name, "frozen": True}
            )
            activity_oids: Dict[str, str] = {}
            for activity in flow_def.activities:
                act_obj = self._db.create("Activity", {"name": activity.name})
                self._db.link("flow_has_activity", flow_obj.oid, act_obj.oid)
                activity_oids[activity.name] = act_obj.oid
                tool = self._find_or_create("Tool", activity.tool_name)
                self._db.link("activity_uses_tool", act_obj.oid, tool.oid)
                for needs in activity.needs:
                    vt = self._find_or_create("ViewType", needs)
                    self._db.link("activity_needs", act_obj.oid, vt.oid)
                for creates in activity.creates:
                    vt = self._find_or_create("ViewType", creates)
                    self._db.link("activity_creates", act_obj.oid, vt.oid)
            for activity in flow_def.activities:
                for pred in activity.predecessors:
                    self._db.link(
                        "activity_precedes",
                        activity_oids[pred],
                        activity_oids[activity.name],
                    )
        self._defs[flow_def.name] = flow_def
        self._notify(flow_def.name)
        return flow_obj

    def _find_or_create(self, type_name: str, name: str) -> OMSObject:
        found = self._db.select(type_name, lambda o: o.get("name") == name)
        if found:
            return found[0]
        return self._db.create(type_name, {"name": name})

    # -- lookup -------------------------------------------------------------

    def definition(self, name: str) -> FlowDef:
        try:
            return self._defs[name]
        except KeyError:
            raise FlowError(f"no registered flow {name!r}") from None

    def flow_object(self, name: str) -> OMSObject:
        found = self._db.select("Flow", lambda o: o.get("name") == name)
        if not found:
            raise FlowError(f"no registered flow {name!r}")
        return found[0]

    def names(self) -> List[str]:
        return sorted(self._defs)

    def modify(self, name: str) -> None:
        """Flows are fixed: any modification attempt raises."""
        self.definition(name)
        raise FlowFrozenError(
            f"flow {name!r} is fixed; JCF flows cannot be modified after "
            "definition (Section 2.1)"
        )

    def rehydrate(self) -> List[str]:
        """Rebuild Python-side flow definitions from database metadata.

        Everything a :class:`FlowDef` needs is materialised in OMS, so a
        framework restored from a snapshot recovers its flows without
        re-registration.  Returns the recovered flow names.
        """
        recovered: List[str] = []
        for flow_obj in self._db.select("Flow"):
            name = flow_obj.get("name")
            if name in self._defs:
                continue
            activities = []
            activity_objs = self._db.targets(
                "flow_has_activity", flow_obj.oid
            )
            for activity in activity_objs:
                tools = self._db.targets(
                    "activity_uses_tool", activity.oid
                )
                needs = tuple(
                    vt.get("name")
                    for vt in self._db.targets(
                        "activity_needs", activity.oid
                    )
                )
                creates = tuple(
                    vt.get("name")
                    for vt in self._db.targets(
                        "activity_creates", activity.oid
                    )
                )
                predecessors = tuple(
                    pred.get("name")
                    for pred in self._db.sources(
                        "activity_precedes", activity.oid
                    )
                    if pred.oid in {a.oid for a in activity_objs}
                )
                activities.append(
                    ActivityDef(
                        name=activity.get("name"),
                        tool_name=tools[0].get("name") if tools else "",
                        needs=needs,
                        creates=creates,
                        predecessors=predecessors,
                    )
                )
            self._defs[name] = FlowDef(name, tuple(activities))
            self._notify(name)
            recovered.append(name)
        return recovered
