"""The JCF workspace concept — the kernel of its multi-user capabilities.

Section 2.1: "the workspace concept of JCF allows only one user to work
on a particular cell version if this cell version is reserved in his
private workspace.  Other users are only allowed to read the published
parts of the design data.  When the work is finished, the cell can be
published and then be modified by other users."

Unlike FMCAD's checkout model, reservation is per *cell version* — so two
users can work on two different versions (or variants) of the same cell
in parallel, the capability Section 3.1 credits the hybrid framework
with.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import (
    AuthorizationError,
    ReservationConflictError,
    WorkspaceError,
)
from repro.jcf.project import JCFCellVersion
from repro.jcf.resources import ResourceManager
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject


class WorkspaceManager:
    """Private workspaces and cell-version reservations."""

    def __init__(self, database: OMSDatabase, resources: ResourceManager) -> None:
        self._db = database
        self._resources = resources
        #: accounting for bench_multiuser
        self.granted_reservations = 0
        self.denied_reservations = 0

    # -- workspace lifecycle ---------------------------------------------------

    def _existing_workspace(self, user_name: str) -> Optional[OMSObject]:
        """The user's workspace if one exists — never creates one."""
        user = self._resources.user(user_name)
        existing = self._db.target_oids("workspace_of", user.oid)
        if existing:
            return self._db.get(existing[0])
        return None

    def workspace_for(self, user_name: str) -> OMSObject:
        """The user's private workspace, created on first use."""
        workspace = self._existing_workspace(user_name)
        if workspace is not None:
            return workspace
        user = self._resources.user(user_name)
        # atomically: a failed link must not leak an orphan workspace
        with self._db.transaction():
            workspace = self._db.create("Workspace", {"owner": user_name})
            self._db.link("workspace_of", user.oid, workspace.oid)
        return workspace

    # -- reservation protocol -----------------------------------------------------

    def reserved_by(self, cell_version: JCFCellVersion) -> Optional[str]:
        """Name of the user whose workspace holds *cell_version*, if any.

        One O(1) reverse-index probe — this predicate runs on every
        read/write access check, so it must not fetch or scan objects.
        """
        holder_oid = self._db.source_oids("reserves", cell_version.oid)
        if not holder_oid:
            return None
        return self._db.get(holder_oid[0]).get("owner")

    def reserve(self, user_name: str, cell_version: JCFCellVersion) -> None:
        """Reserve *cell_version* into the user's private workspace.

        Requires team authorization (the user must belong to the team
        attached to the cell version, or to a team supporting the owning
        project) and exclusivity (no other workspace holds it).
        """
        self._require_authorized(user_name, cell_version)
        if cell_version.published:
            raise WorkspaceError(
                f"cell version {cell_version.number} is published; create a "
                "new version to continue work"
            )
        holder = self.reserved_by(cell_version)
        if holder is not None and holder != user_name:
            self.denied_reservations += 1
            self._db.clock.charge_lock_wait()
            raise ReservationConflictError(
                f"cell version {cell_version.number} of cell "
                f"{cell_version.cell.name!r} is reserved by {holder!r}"
            )
        if holder == user_name:
            return  # idempotent
        workspace = self.workspace_for(user_name)
        self._db.link("reserves", workspace.oid, cell_version.oid)
        self.granted_reservations += 1

    def release(self, user_name: str, cell_version: JCFCellVersion) -> None:
        """Drop the reservation without publishing."""
        self._require_holder(user_name, cell_version)
        workspace = self.workspace_for(user_name)
        self._db.unlink("reserves", workspace.oid, cell_version.oid)

    def publish(self, user_name: str, cell_version: JCFCellVersion) -> None:
        """Finish work: publish the cell version and release it.

        Published data becomes readable by everyone and writable by
        no one; further changes need a new cell version.
        """
        self._require_holder(user_name, cell_version)
        workspace = self.workspace_for(user_name)
        with self._db.transaction():
            cell_version.publish()
            self._db.unlink("reserves", workspace.oid, cell_version.oid)

    # -- access predicates -----------------------------------------------------------

    def can_write(self, user_name: str, cell_version: JCFCellVersion) -> bool:
        """Writable only inside the reserving user's workspace."""
        return (
            not cell_version.published
            and self.reserved_by(cell_version) == user_name
        )

    def can_read(self, user_name: str, cell_version: JCFCellVersion) -> bool:
        """Published data is readable by all; reserved data by its holder."""
        if cell_version.published:
            return True
        return self.reserved_by(cell_version) == user_name

    def reservations_of(self, user_name: str) -> List[JCFCellVersion]:
        """List the cell versions held in the user's workspace.

        A pure read: a user without a workspace simply holds nothing.
        (It used to create the workspace as a side effect, which bumped
        the database mutation epoch and needlessly invalidated the
        query-engine memo on every listing.)
        """
        workspace = self._existing_workspace(user_name)
        if workspace is None:
            return []
        return [
            JCFCellVersion(self._db, obj)
            for obj in self._db.targets("reserves", workspace.oid)
        ]

    # -- internals ----------------------------------------------------------------------

    def _require_holder(
        self, user_name: str, cell_version: JCFCellVersion
    ) -> None:
        holder = self.reserved_by(cell_version)
        if holder != user_name:
            raise WorkspaceError(
                f"cell version {cell_version.number} is not reserved by "
                f"{user_name!r} (holder: {holder!r})"
            )

    def _require_authorized(
        self, user_name: str, cell_version: JCFCellVersion
    ) -> None:
        team = cell_version.attached_team()
        if team is not None:
            if self._resources.is_member(user_name, team.get("name")):
                return
            raise AuthorizationError(
                f"user {user_name!r} is not a member of team "
                f"{team.get('name')!r} attached to this cell version"
            )
        project_oid = cell_version.cell.project_oid
        if not self._resources.user_may_work_on(user_name, project_oid):
            raise AuthorizationError(
                f"user {user_name!r} belongs to no team supporting the "
                "owning project"
            )

    # -- statistics -----------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "granted": self.granted_reservations,
            "denied": self.denied_reservations,
        }
