"""Event-driven flow triggers.

A trigger is persisted metadata: "when *event* happens on a matching
(library, cell, viewtype), enqueue flow *flow_name*" — the classic ECAD
automation of re-running downstream simulation after a cell checkin,
expressed as JCF resources so it survives the process like every other
piece of flow state.

The pending-trigger set is durable too: the wrappers record a
:class:`TriggerEvent` the moment a checkin lands, and ``dispatch()``
later consumes it *exactly once* — the enqueue of the spawned
:class:`FlowInstance`, the event's ``dispatched`` mark and the
``flow.trigger`` fault point all commit in one OMS transaction, so a
crash mid-dispatch rolls the whole step back and the event is simply
dispatched again after recovery (while a crash after the commit changes
nothing: the event is no longer pending).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FlowError
from repro.faults import fault_point
from repro.jcf.model import (
    EVENT_DISPATCHED,
    EVENT_PENDING,
    FLOW_TERMINAL_STATES,
)
from repro.jcf.project import JCFProject
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject

#: the event the tool wrappers raise after every successful harvest
CHECKIN_EVENT = "checkin"


class TriggerRegistry:
    """Persisted trigger definitions plus the durable pending-event set."""

    def __init__(self, database: OMSDatabase) -> None:
        self._db = database
        #: events recorded / dispatched this process (bench counters)
        self.recorded_events = 0
        self.dispatched_events = 0
        self.deduped_events = 0

    # -- trigger definitions --------------------------------------------------

    def define(
        self,
        name: str,
        flow_name: str,
        user: str,
        event: str = CHECKIN_EVENT,
        library: str = "*",
        cell: str = "*",
        viewtype: str = "*",
        script: str = "",
        team: str = "",
        priority: int = 0,
    ) -> OMSObject:
        """Persist a trigger definition; names are unique."""
        if self.find(name) is not None:
            raise FlowError(f"trigger {name!r} is already defined")
        with self._db.transaction():
            obj = self._db.create(
                "FlowTrigger",
                {
                    "name": name,
                    "event": event,
                    "library": library,
                    "cell": cell,
                    "viewtype": viewtype,
                    "flow_name": flow_name,
                    "script": script,
                    "user": user,
                    "team": team,
                    "priority": priority,
                    "enabled": True,
                },
            )
        return obj

    def find(self, name: str) -> Optional[OMSObject]:
        found = self._db.select(
            "FlowTrigger", lambda o: o.get("name") == name
        )
        return found[0] if found else None

    def triggers(self) -> List[OMSObject]:
        return self._db.select("FlowTrigger")

    def set_enabled(self, name: str, enabled: bool) -> None:
        trigger = self.find(name)
        if trigger is None:
            raise FlowError(f"no trigger {name!r}")
        with self._db.transaction():
            self._db.set_attr(trigger.oid, "enabled", bool(enabled))

    @staticmethod
    def _matches(trigger: OMSObject, event: str, library: str,
                 cell: str, viewtype: str) -> bool:
        if not trigger.get("enabled"):
            return False
        if trigger.get("event") != event:
            return False
        for pattern, value in (
            (trigger.get("library"), library),
            (trigger.get("cell"), cell),
            (trigger.get("viewtype"), viewtype),
        ):
            if pattern not in ("*", value):
                return False
        return True

    def _matching_triggers(
        self, event: str, library: str, cell: str, viewtype: str
    ) -> List[OMSObject]:
        return [
            t
            for t in self.triggers()
            if self._matches(t, event, library, cell, viewtype)
        ]

    # -- the durable pending set ----------------------------------------------

    def record_event(
        self, event: str, library: str, cell: str, viewtype: str
    ) -> Optional[str]:
        """Durably note that *event* happened; return the event oid.

        No-ops (returns ``None``) when no enabled trigger matches — the
        pending set only holds events somebody asked to react to — and
        when an identical event is already pending (one checkin burst
        wants one downstream re-run, not one per save).
        """
        if not self._matching_triggers(event, library, cell, viewtype):
            return None
        for pending in self.pending_events():
            if (
                pending.get("event") == event
                and pending.get("library") == library
                and pending.get("cell") == cell
                and pending.get("viewtype") == viewtype
            ):
                self.deduped_events += 1
                return None
        obj = self._db.create(
            "TriggerEvent",
            {
                "event": event,
                "library": library,
                "cell": cell,
                "viewtype": viewtype,
                "state": EVENT_PENDING,
                "created_ms": self._db.clock.now_ms,
            },
        )
        self.recorded_events += 1
        return obj.oid

    def pending_events(self) -> List[OMSObject]:
        return self._db.select(
            "TriggerEvent", lambda o: o.get("state") == EVENT_PENDING
        )

    # -- dispatch -------------------------------------------------------------

    def _project_of_cell(self, cell_name: str) -> Optional[JCFProject]:
        for obj in self._db.select("Project"):
            project = JCFProject(self._db, obj)
            if project.find_cell(cell_name) is not None:
                return project
        return None

    def _duplicate_instance(
        self, orchestrator, flow_name: str, cell: str, script: str
    ) -> bool:
        for instance in orchestrator.instances():
            if (
                instance.flow_name == flow_name
                and instance.cell_name == cell
                and instance.script_name == script
                and instance.status not in FLOW_TERMINAL_STATES
            ):
                return True
        return False

    def dispatch(self, orchestrator) -> List[str]:
        """Consume every pending event; return spawned instance oids.

        Each event is processed in its own transaction carrying the
        ``flow.trigger`` fault point, so a crash leaves it pending and
        the *next* dispatch (after recovery) redoes it — at-least-once
        attempts, exactly-once effects.
        """
        spawned: List[str] = []
        for event in self.pending_events():
            cell = event.get("cell") or ""
            matches = self._matching_triggers(
                event.get("event"),
                event.get("library") or "",
                cell,
                event.get("viewtype") or "",
            )
            project = self._project_of_cell(cell)
            with self._db.transaction():
                fault_point("flow.trigger")
                self._db.set_attr(event.oid, "state", EVENT_DISPATCHED)
                self._db.set_attr(
                    event.oid, "dispatched_ms", self._db.clock.now_ms
                )
                if project is None:
                    continue  # event about a cell JCF no longer maps
                for trigger in matches:
                    flow_name = trigger.get("flow_name")
                    script = trigger.get("script") or ""
                    if self._duplicate_instance(
                        orchestrator, flow_name, cell, script
                    ):
                        continue
                    instance = orchestrator.start(
                        user=trigger.get("user"),
                        project=project,
                        cell_name=cell,
                        flow_name=flow_name,
                        script=script,
                        library_name=event.get("library") or "",
                        team=trigger.get("team") or "",
                        priority=int(trigger.get("priority") or 0),
                    )
                    self._db.link(
                        "trigger_spawned", trigger.oid, instance.oid
                    )
                    spawned.append(instance.oid)
            self.dispatched_events += 1
        return spawned
