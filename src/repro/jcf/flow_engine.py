"""Flow execution: activities run in the prescribed order, and only there.

Section 3.5: "the specified order in which tools can be executed is
prescribed and fixed for the designer", and every execution records which
design-object versions it needed and created, so derivation relations and
what-belongs-to-what information are always available — the capability
standard FMCAD lacks entirely.

The engine also supports the coupling's supervised early start (Section
2.4: wrappers "enabled activity execution when its predecessor was not
yet finished"), which marks the execution ``forced_early`` so the
consistency guard can show its extra windows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.errors import FlowError, FlowOrderError
from repro.jcf.flows import FlowRegistry
from repro.jcf.model import (
    EXEC_DONE,
    EXEC_FAILED,
    EXEC_NOT_STARTED,
    EXEC_RUNNING,
)
from repro.jcf.project import JCFDesignObjectVersion, JCFVariant, _Wrapper
from repro.oms.database import OMSDatabase


class JCFExecution(_Wrapper):
    """One ActiveExecVersion: an activity run on a variant."""

    @property
    def status(self) -> str:
        return self._db.get(self.oid).get("status")

    @property
    def forced_early(self) -> bool:
        return bool(self._db.get(self.oid).get("forced_early"))

    @property
    def activity_name(self) -> str:
        owners = self._db.sources("exec_of_activity", self.oid)
        if not owners:
            raise FlowError(f"execution {self.oid} has no activity")
        return owners[0].get("name")

    @property
    def variant(self) -> JCFVariant:
        owners = self._db.sources("exec_in_variant", self.oid)
        if not owners:
            raise FlowError(f"execution {self.oid} has no variant")
        return JCFVariant(self._db, owners[0])

    def needed_versions(self) -> List[JCFDesignObjectVersion]:
        return [
            JCFDesignObjectVersion(self._db, obj)
            for obj in self._db.targets("needs_of_version", self.oid)
        ]

    def created_versions(self) -> List[JCFDesignObjectVersion]:
        return [
            JCFDesignObjectVersion(self._db, obj)
            for obj in self._db.targets("creates_version", self.oid)
        ]


@dataclasses.dataclass(frozen=True)
class FlowExecutionState:
    """Snapshot of one variant's progress through its flow."""

    variant_name: str
    flow_name: str
    status_by_activity: Dict[str, str]

    @property
    def complete(self) -> bool:
        return all(s == EXEC_DONE for s in self.status_by_activity.values())

    def runnable(self, flow_registry: FlowRegistry) -> List[str]:
        """Activities whose predecessors are all done and that have not run."""
        flow_def = flow_registry.definition(self.flow_name)
        names = []
        for activity in flow_def.activities:
            if self.status_by_activity.get(activity.name) not in (
                EXEC_NOT_STARTED,
                EXEC_FAILED,
            ):
                continue
            if all(
                self.status_by_activity.get(pred) == EXEC_DONE
                for pred in activity.predecessors
            ):
                names.append(activity.name)
        return names


class FlowEngine:
    """Runs flow activities against variants, enforcing the fixed order."""

    def __init__(self, database: OMSDatabase, flows: FlowRegistry) -> None:
        self._db = database
        self._flows = flows
        #: out-of-order invocation attempts rejected (bench_flow)
        self.rejected_starts = 0
        #: early starts forced through by the coupling wrappers
        self.forced_starts = 0
        #: variant oid -> (flow name, status-by-activity) — the
        #: materialised index behind :meth:`state_of`.  Maintained by
        #: start/finish_activity; a transaction that aborts pops its
        #: variant's entry via a journalled undo, so the cache can never
        #: serve state a rollback took back.  Concurrent runs touch
        #: disjoint variants (scheduler conflict graph), so plain dict
        #: operations suffice.
        self._state_cache: Dict[str, tuple] = {}
        #: cache effectiveness counters (bench_flow / regression tests)
        self.state_cache_hits = 0
        self.state_cache_misses = 0
        # the cache's activity-name sets come from the registry's
        # definitions; a definition-table mutation (register of a new
        # flow, rehydrate replacing a stale table after restore) must
        # drop the affected entries or state_of would keep serving a
        # status map computed against the superseded definition
        flows.add_listener(self._on_registry_mutation)

    def _on_registry_mutation(self, flow_name: str) -> None:
        """Drop cached state computed against a superseded definition."""
        stale = [
            variant_oid
            for variant_oid, cached in self._state_cache.items()
            if cached[0] == flow_name
        ]
        for variant_oid in stale:
            self._state_cache.pop(variant_oid, None)

    # -- state inspection -------------------------------------------------------

    def _flow_name_of(self, variant: JCFVariant) -> str:
        flow_obj = variant.cell_version.attached_flow()
        if flow_obj is None:
            raise FlowError(
                f"variant {variant.name!r}: its cell version has no attached "
                "flow; attach one before starting activities"
            )
        return flow_obj.get("name")

    def executions_of(self, variant: JCFVariant) -> List[JCFExecution]:
        return [
            JCFExecution(self._db, obj)
            for obj in self._db.targets("exec_in_variant", variant.oid)
        ]

    def state_of(self, variant: JCFVariant) -> FlowExecutionState:
        """Latest status per activity of the variant's flow.

        Served from the per-variant index when possible — O(activities)
        instead of rescanning every ``exec_in_variant`` execution.  The
        cached entry remembers which flow it was computed against, so a
        re-attached flow forces a rescan rather than serving stale
        activity names.
        """
        flow_name = self._flow_name_of(variant)
        cached = self._state_cache.get(variant.oid)
        if cached is not None and cached[0] == flow_name:
            self.state_cache_hits += 1
            return FlowExecutionState(
                variant_name=variant.name,
                flow_name=flow_name,
                status_by_activity=dict(cached[1]),
            )
        self.state_cache_misses += 1
        flow_def = self._flows.definition(flow_name)
        status = {a.name: EXEC_NOT_STARTED for a in flow_def.activities}
        for execution in self.executions_of(variant):
            # executions come back id-ordered == chronological
            status[execution.activity_name] = execution.status
        self._state_cache[variant.oid] = (flow_name, dict(status))
        return FlowExecutionState(
            variant_name=variant.name,
            flow_name=flow_name,
            status_by_activity=status,
        )

    def invalidate_state_cache(self, variant_oid: Optional[str] = None) -> None:
        """Drop the materialised state index (for one variant or all).

        Needed only by callers that mutate executions behind the
        engine's back; start/finish_activity maintain the index
        themselves.
        """
        if variant_oid is None:
            self._state_cache.clear()
        else:
            self._state_cache.pop(variant_oid, None)

    def _cache_status(
        self, variant_oid: str, activity_name: str, status: str
    ) -> None:
        """Fold one status change into the index (entry may be absent)."""
        cached = self._state_cache.get(variant_oid)
        if cached is not None:
            cached[1][activity_name] = status

    # -- execution protocol ----------------------------------------------------------

    def start_activity(
        self,
        variant: JCFVariant,
        activity_name: str,
        force_early: bool = False,
    ) -> JCFExecution:
        """Begin one activity on *variant*.

        Raises :class:`FlowOrderError` when a predecessor has not finished,
        unless *force_early* — the coupling's supervised early start.
        """
        flow_name = self._flow_name_of(variant)
        flow_def = self._flows.definition(flow_name)
        activity_def = flow_def.activity(activity_name)
        state = self.state_of(variant)
        if state.status_by_activity[activity_name] == EXEC_RUNNING:
            raise FlowError(
                f"activity {activity_name!r} is already running on variant "
                f"{variant.name!r}"
            )
        unfinished = [
            pred
            for pred in activity_def.predecessors
            if state.status_by_activity.get(pred) != EXEC_DONE
        ]
        if unfinished and not force_early:
            self.rejected_starts += 1
            raise FlowOrderError(
                f"activity {activity_name!r} cannot start: predecessors "
                f"{unfinished} not finished (fixed flow {flow_name!r})"
            )
        forced = bool(unfinished)
        if forced:
            self.forced_starts += 1
        activity_obj = self._activity_object(flow_name, activity_name)
        with self._db.transaction():
            exec_obj = self._db.create(
                "ActiveExecVersion",
                {
                    "status": EXEC_RUNNING,
                    "started_ms": self._db.clock.now_ms,
                    "forced_early": forced,
                },
            )
            self._db.link("exec_of_activity", activity_obj.oid, exec_obj.oid)
            self._db.link("exec_in_variant", variant.oid, exec_obj.oid)
            # if this transaction (or an outer one it joined) aborts, the
            # execution vanishes — the journalled undo drops the index
            # entry so the cache cannot keep reporting it as running
            self._db._journal(
                lambda: self._state_cache.pop(variant.oid, None)
            )
        self._cache_status(variant.oid, activity_name, EXEC_RUNNING)
        return JCFExecution(self._db, exec_obj)

    def finish_activity(
        self,
        execution: JCFExecution,
        needs: Sequence[JCFDesignObjectVersion] = (),
        creates: Sequence[JCFDesignObjectVersion] = (),
        success: bool = True,
    ) -> None:
        """Complete an execution, recording its derivation relations.

        Every created version is linked ``derived`` from every needed
        version — this is how JCF "records all derivation relationships
        between schematic and layout versions" (Section 2.4).
        """
        if execution.status != EXEC_RUNNING:
            raise FlowError(
                f"execution {execution.oid} is {execution.status}; only "
                "running executions can finish"
            )
        variant_oid = execution.variant.oid
        activity_name = execution.activity_name
        with self._db.transaction():
            for needed in needs:
                self._db.link("needs_of_version", execution.oid, needed.oid)
            for created in creates:
                self._db.link("creates_version", execution.oid, created.oid)
                for needed in needs:
                    if not self._db.linked("derived", needed.oid, created.oid):
                        self._db.link("derived", needed.oid, created.oid)
            self._db.set_attr(
                execution.oid, "status", EXEC_DONE if success else EXEC_FAILED
            )
            self._db.set_attr(
                execution.oid, "finished_ms", self._db.clock.now_ms
            )
            self._db._journal(
                lambda: self._state_cache.pop(variant_oid, None)
            )
        self._cache_status(
            variant_oid, activity_name, EXEC_DONE if success else EXEC_FAILED
        )

    # -- derivation queries (Section 3.5) ------------------------------------------------

    def derivation_chain(
        self, version: JCFDesignObjectVersion
    ) -> List[JCFDesignObjectVersion]:
        """All ancestors this version was (transitively) derived from."""
        seen = {version.oid}
        chain: List[JCFDesignObjectVersion] = []
        frontier = [version]
        while frontier:
            current = frontier.pop()
            for source in current.derivation_sources():
                if source.oid not in seen:
                    seen.add(source.oid)
                    chain.append(source)
                    frontier.append(source)
        return chain

    def what_belongs_to_what(
        self, variant: JCFVariant
    ) -> Dict[str, Dict[str, List[str]]]:
        """Per execution: which versions it needed and created.

        This is exactly the record Section 3.5 says FMCAD cannot provide.
        """
        report: Dict[str, Dict[str, List[str]]] = {}
        for execution in self.executions_of(variant):
            key = f"{execution.activity_name}@{execution.oid}"
            report[key] = {
                "needs": [v.oid for v in execution.needed_versions()],
                "creates": [v.oid for v in execution.created_versions()],
            }
        return report

    # -- reporting ---------------------------------------------------------------------------

    def render_state(self, variant: JCFVariant) -> str:
        """A one-screen textual flow-status report (desktop display).

        Example::

            flow jcf_fmcad_flow on variant fmcad_main
              [done]        schematic_entry
              [running]     digital_simulation
              [not_started] layout_entry      (blocked by digital_simulation)
        """
        state = self.state_of(variant)
        flow_def = self._flows.definition(state.flow_name)
        lines = [
            f"flow {state.flow_name} on variant {state.variant_name}"
        ]
        for activity in flow_def.activities:
            status = state.status_by_activity[activity.name]
            blockers = [
                pred
                for pred in activity.predecessors
                if state.status_by_activity.get(pred) != EXEC_DONE
            ]
            suffix = (
                f"  (blocked by {', '.join(blockers)})"
                if blockers and status == EXEC_NOT_STARTED
                else ""
            )
            lines.append(f"  [{status}] {activity.name}{suffix}")
        return "\n".join(lines)

    # -- internals --------------------------------------------------------------------------

    def _activity_object(self, flow_name: str, activity_name: str):
        flow_obj = self._flows.flow_object(flow_name)
        for activity in self._db.targets("flow_has_activity", flow_obj.oid):
            if activity.get("name") == activity_name:
                return activity
        raise FlowError(
            f"flow {flow_name!r} has no materialised activity "
            f"{activity_name!r}"
        )
