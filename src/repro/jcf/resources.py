"""JCF resources: users and teams.

Section 2.1: "Resources are defined by the framework administrator.  Each
user becomes a member of the appropriate teams and these teams can be
used to support projects."  Resource definition is therefore privileged:
only the administrator may create users, teams and memberships, and that
privilege check is real (``AuthorizationError``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import AuthorizationError, ResourceError
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject


class ResourceManager:
    """Administrator-controlled registry of users and teams."""

    def __init__(self, database: OMSDatabase, administrator: str = "admin") -> None:
        self._db = database
        self.administrator = administrator

    # -- privilege -------------------------------------------------------------

    def _require_admin(self, acting_user: str) -> None:
        if acting_user != self.administrator:
            raise AuthorizationError(
                f"resource definition requires the framework administrator "
                f"({self.administrator!r}), not {acting_user!r}"
            )

    # -- users -----------------------------------------------------------------

    def define_user(
        self, acting_user: str, name: str, full_name: str = ""
    ) -> OMSObject:
        """Register a new framework user (administrator only)."""
        self._require_admin(acting_user)
        if self.find_user(name) is not None:
            raise ResourceError(f"duplicate user {name!r}")
        return self._db.create("User", {"name": name, "full_name": full_name})

    def find_user(self, name: str) -> Optional[OMSObject]:
        found = self._db.select("User", lambda o: o.get("name") == name)
        return found[0] if found else None

    def user(self, name: str) -> OMSObject:
        found = self.find_user(name)
        if found is None:
            raise ResourceError(f"unknown user {name!r}")
        return found

    def users(self) -> List[OMSObject]:
        return self._db.select("User")

    # -- teams ------------------------------------------------------------------

    def define_team(self, acting_user: str, name: str) -> OMSObject:
        """Register a new team (administrator only)."""
        self._require_admin(acting_user)
        if self.find_team(name) is not None:
            raise ResourceError(f"duplicate team {name!r}")
        return self._db.create("Team", {"name": name})

    def find_team(self, name: str) -> Optional[OMSObject]:
        found = self._db.select("Team", lambda o: o.get("name") == name)
        return found[0] if found else None

    def team(self, name: str) -> OMSObject:
        found = self.find_team(name)
        if found is None:
            raise ResourceError(f"unknown team {name!r}")
        return found

    def teams(self) -> List[OMSObject]:
        return self._db.select("Team")

    # -- membership ---------------------------------------------------------------

    def add_member(self, acting_user: str, user_name: str, team_name: str) -> None:
        """Put a user on a team (administrator only)."""
        self._require_admin(acting_user)
        self._db.link("member_of", self.user(user_name).oid, self.team(team_name).oid)

    def remove_member(
        self, acting_user: str, user_name: str, team_name: str
    ) -> None:
        self._require_admin(acting_user)
        self._db.unlink(
            "member_of", self.user(user_name).oid, self.team(team_name).oid
        )

    def is_member(self, user_name: str, team_name: str) -> bool:
        user = self.find_user(user_name)
        team = self.find_team(team_name)
        if user is None or team is None:
            return False
        return self._db.linked("member_of", user.oid, team.oid)

    def teams_of(self, user_name: str) -> List[str]:
        user = self.user(user_name)
        return [t.get("name") for t in self._db.targets("member_of", user.oid)]

    def members_of(self, team_name: str) -> List[str]:
        team = self.team(team_name)
        return [u.get("name") for u in self._db.sources("member_of", team.oid)]

    # -- project support ---------------------------------------------------------

    def assign_team_to_project(
        self, acting_user: str, team_name: str, project_oid: str
    ) -> None:
        """Let a team support a project (administrator only)."""
        self._require_admin(acting_user)
        self._db.link("team_supports", self.team(team_name).oid, project_oid)

    def team_supports_project(self, team_name: str, project_oid: str) -> bool:
        team = self.find_team(team_name)
        if team is None:
            return False
        return self._db.linked("team_supports", team.oid, project_oid)

    def user_may_work_on(self, user_name: str, project_oid: str) -> bool:
        """True when the user belongs to any team supporting the project."""
        return any(
            self.team_supports_project(team_name, project_oid)
            for team_name in self.teams_of(user_name)
        )
