"""Background scrubber: detect, classify, repair, quarantine.

The scrubber walks every at-rest representation the coupling owns —
OMS blobs (including delta chains), staged files, FMCAD version files,
``.meta`` files, the persisted snapshot — re-verifies each against its
recorded checksum, and classifies what it finds:

* **bit-rot** — same size, wrong bytes (a flipped bit at rest);
* **truncation** — shorter than recorded (an interrupted write);
* **torn-write** — longer or structurally wrong (interleaved writers);
* **missing** — the record survived, the file did not;
* **orphan** — the file survived, no record claims it (informational).

In repair mode it heals findings from *verified* peers: the coupling
mirrors every payload on both sides of the master/slave split (OMS blob
<-> FMCAD version file, plus staged copies), so a damaged copy is
re-written from a sibling that first re-proves its own content address.
Repair iterates to a fixpoint — healing a delta base heals every delta
stacked on it — and whatever still fails afterwards is **quarantined**:
blobs are flagged so reads raise :class:`QuarantinedError`, files are
moved into the quarantine directory and recorded in its manifest so
later scrubs treat the loss as known rather than fresh damage.  A
quarantined payload is never served; that is the whole point.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    IntegrityError,
    MetaFileError,
    OMSError,
    QuarantinedError,
)
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.fmcad.objects import CellViewVersion
from repro.jcf.framework import JCFFramework
from repro.oms.snapshot import verify_snapshot_bytes

#: author recorded on ``.meta`` flushes performed by the scrubber
SCRUB_USER = "scrubber"

#: the persisted hybrid snapshot (HybridFramework.SNAPSHOT_NAME; kept as
#: a literal here so the scrubber does not import the coupling layer)
_SNAPSHOT_NAME = "jcf_snapshot.json"

#: finding actions
DETECTED = "detected"          # damage found, not (yet) handled
REPAIRED = "repaired"          # healed from a verified peer, re-verified
QUARANTINED = "quarantined"    # unrepairable; flagged/moved, never served
NOTED = "noted"                # informational (orphans); never actionable


@dataclasses.dataclass
class ScrubFinding:
    """One damaged (or noteworthy) artifact the scrubber saw."""

    area: str            # blob | staging | fmcad-version | meta | snapshot | *-orphan
    location: str        # stable key: blob:<digest> or an absolute path
    classification: str  # bit-rot | truncation | torn-write | missing | orphan
    action: str = DETECTED
    detail: str = ""     # owning oid / library name, for repair routing

    @property
    def actionable(self) -> bool:
        return self.action == DETECTED

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"[{self.action}] {self.area} {self.location}: "
            f"{self.classification}{extra}"
        )


@dataclasses.dataclass
class ScrubReport:
    """Outcome of one scrub (or scrub-and-repair) pass."""

    findings: List[ScrubFinding]
    rounds: int = 1
    repaired: bool = False  # whether this pass was allowed to repair

    @property
    def clean(self) -> bool:
        """Nothing at all to report — not even informational orphans."""
        return not self.findings

    @property
    def ok(self) -> bool:
        """No *actionable* damage: everything found was repaired,
        already quarantined, or merely informational."""
        return not any(f.actionable for f in self.findings)

    def by_action(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.action] = counts.get(finding.action, 0) + 1
        return counts

    def render(self) -> str:
        if self.clean:
            return "scrub: all stored payloads verify clean"
        lines = [
            "scrub report "
            f"(rounds={self.rounds}, repair={'on' if self.repaired else 'off'}):"
        ]
        for action, count in sorted(self.by_action().items()):
            lines.append(f"  {action}: {count}")
        for finding in self.findings:
            lines.append(f"  - {finding}")
        return "\n".join(lines)


class Scrubber:
    """Walks both frameworks' storage; detects, repairs, quarantines.

    Construct one per hybrid workspace.  ``scrub()`` is report-only;
    ``scrub(repair=True)`` heals what it can and quarantines the rest,
    reaching a fixpoint where a follow-up scrub reports ``ok``.
    """

    #: repair iterations before remaining damage is declared unrepairable;
    #: each round can unlock the next (a repaired delta base heals its
    #: children, a repaired blob becomes a source for its staged copy)
    MAX_ROUNDS = 8

    def __init__(
        self,
        jcf: JCFFramework,
        fmcad: FMCADFramework,
        quarantine_dir: Optional[pathlib.Path] = None,
        snapshot_path: Optional[pathlib.Path] = None,
        user: str = SCRUB_USER,
    ) -> None:
        self.jcf = jcf
        self.fmcad = fmcad
        self.user = user
        root = self.jcf.root.parent
        self.quarantine_dir = pathlib.Path(
            quarantine_dir if quarantine_dir is not None else root / "quarantine"
        )
        self.snapshot_path = pathlib.Path(
            snapshot_path if snapshot_path is not None
            else root / _SNAPSHOT_NAME
        )
        self._manifest_path = self.quarantine_dir / "MANIFEST"
        #: location -> classification for everything already quarantined;
        #: findings at these locations are known losses, not fresh damage
        self._manifest: Dict[str, str] = self._load_manifest()
        # routing indexes rebuilt by every _collect pass
        self._version_index: Dict[str, Tuple[Library, CellViewVersion]] = {}
        self._meta_owner: Dict[str, Optional[Library]] = {}

    # -- the entry point -------------------------------------------------------

    def scrub(self, repair: bool = False) -> ScrubReport:
        """One full sweep; with *repair*, iterate to a verified fixpoint."""
        if not repair:
            return ScrubReport(self._collect(), rounds=1, repaired=False)
        outcome: Dict[str, ScrubFinding] = {}
        rounds = 0
        while rounds < self.MAX_ROUNDS:
            rounds += 1
            detected = self._collect()
            for finding in detected:
                if not finding.actionable and finding.location not in outcome:
                    outcome[finding.location] = finding
            actionable = [f for f in detected if f.actionable]
            if not actionable:
                break
            progress = False
            for finding in actionable:
                if self._repair_one(finding):
                    finding.action = REPAIRED
                    progress = True
                outcome[finding.location] = finding
            if not progress:
                for finding in actionable:
                    self._quarantine_one(finding)
                    finding.action = QUARANTINED
                    outcome[finding.location] = finding
        # closing verification: anything still actionable here survived
        # MAX_ROUNDS of repair — surface it rather than claim success
        for finding in self._collect():
            if finding.actionable:
                outcome[finding.location] = finding
        findings = sorted(
            outcome.values(), key=lambda f: (f.area, f.location)
        )
        return ScrubReport(findings, rounds=rounds, repaired=True)

    # -- detection -------------------------------------------------------------

    def _collect(self) -> List[ScrubFinding]:
        """One verification sweep over every storage area."""
        findings: List[ScrubFinding] = []
        self._version_index = {}
        self._meta_owner = {}

        for digest, classification in sorted(
            self.jcf.db.scrub_payloads().items()
        ):
            findings.append(
                ScrubFinding("blob", f"blob:{digest}", classification)
            )

        for oid, path, classification in self.jcf.staging.verify_staged():
            findings.append(
                ScrubFinding("staging", str(path), classification, detail=oid)
            )
        for path in self.jcf.staging.orphan_files():
            findings.append(
                ScrubFinding(
                    "staging-orphan", str(path), "orphan", action=NOTED
                )
            )

        libraries, unopenable = self._libraries()
        for library in libraries:
            meta_path = str(library.metafile.path)
            self._meta_owner[meta_path] = library
            classification = library.metafile.verify()
            if classification is not None:
                findings.append(
                    ScrubFinding(
                        "meta", meta_path, classification, detail=library.name
                    )
                )
            for version, vclass in library.scrub_versions():
                location = str(version.path)
                self._version_index[location] = (library, version)
                findings.append(
                    ScrubFinding(
                        "fmcad-version", location, vclass,
                        detail=library.name,
                    )
                )
            try:
                for path in library.orphaned_files():
                    findings.append(
                        ScrubFinding(
                            "fmcad-orphan", str(path), "orphan",
                            action=NOTED, detail=library.name,
                        )
                    )
            except MetaFileError:
                pass  # already reported as a meta finding above
        for name, classification in unopenable:
            meta_path = str(self.fmcad.root / "libs" / name / ".meta")
            self._meta_owner[meta_path] = None
            findings.append(
                ScrubFinding("meta", meta_path, classification, detail=name)
            )

        if self.snapshot_path.exists():
            classification = verify_snapshot_bytes(
                self.snapshot_path.read_bytes()
            )
            if classification is not None:
                findings.append(
                    ScrubFinding(
                        "snapshot", str(self.snapshot_path), classification
                    )
                )

        return [f for f in findings if f.location not in self._manifest]

    def _libraries(self) -> Tuple[List[Library], List[Tuple[str, str]]]:
        """Every library, opening closed ones; plus the unopenable ones.

        A closed library whose ``.meta`` is too damaged to parse cannot
        be opened at all — it is returned separately as
        ``(name, classification)`` so the damage still becomes a finding.
        """
        libraries = list(self.fmcad.libraries())
        open_names = {library.name for library in libraries}
        unopenable: List[Tuple[str, str]] = []
        for name in self.fmcad.known_library_names():
            if name in open_names:
                continue
            try:
                libraries.append(self.fmcad.open_library(name))
            except IntegrityError as exc:
                unopenable.append((name, exc.classification or "torn-write"))
            except MetaFileError:
                unopenable.append((name, "torn-write"))
        return libraries, unopenable

    # -- repair ----------------------------------------------------------------

    def _repair_one(self, finding: ScrubFinding) -> bool:
        """Try to heal one finding from a verified peer; True on success."""
        if finding.area == "blob":
            digest = finding.location.split(":", 1)[1]
            data = self._peer_bytes(digest, include_blobs=False)
            if data is None:
                return False
            self.jcf.db.repair_payload(digest, data)
            return True
        if finding.area == "staging":
            try:
                return self.jcf.staging.repair_staged(finding.detail)
            except (IntegrityError, OMSError):
                return False  # the OMS side is damaged too — next round
        if finding.area == "fmcad-version":
            indexed = self._version_index.get(finding.location)
            if indexed is None:
                return False
            library, version = indexed
            digest = version._content_digest
            if digest is None:
                return False
            data = self._peer_bytes(digest)
            if data is None:
                return False
            library.repair_version(version, data)
            return True
        if finding.area == "meta":
            library = self._meta_owner.get(finding.location)
            if library is None:
                return False  # closed library: no in-memory records
            if not library.flush_meta(self.user):
                return False  # writer lock contended
            return library.metafile.verify() is None
        if finding.area == "snapshot":
            # the live database is the repair source: re-dump it through
            # the same atomic path save_state uses
            tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
            tmp.write_bytes(self.jcf.save_snapshot())
            tmp.replace(self.snapshot_path)
            return (
                verify_snapshot_bytes(self.snapshot_path.read_bytes()) is None
            )
        return False

    def _peer_bytes(
        self, digest: str, include_blobs: bool = True
    ) -> Optional[bytes]:
        """Bytes proving *digest*, from any verified peer copy.

        Sources, in order of cheapness: the OMS blob store (delta-chain
        re-materialisation, verified), FMCAD version files carrying the
        digest (re-hashed before use), staged files recorded with the
        digest (re-hashed before use).  A corrupt source disqualifies
        itself by failing its own hash, so repair can never launder
        damage from one copy into another.
        """
        if include_blobs:
            try:
                return self.jcf.db.materialize_payload(digest, verify=True)
            except (QuarantinedError, IntegrityError, OMSError):
                pass
        for library in self.fmcad.libraries():
            data = library.verified_version_bytes(digest)
            if data is not None:
                return data
        for staged in self.jcf.staging.staged():
            if staged.digest != digest:
                continue
            try:
                data = staged.path.read_bytes()
            except FileNotFoundError:
                continue
            if hashlib.sha256(data).hexdigest() == digest:
                return data
        return None

    # -- quarantine ------------------------------------------------------------

    def _quarantine_one(self, finding: ScrubFinding) -> None:
        """Take an unrepairable artifact out of service, loudly.

        Blobs are flagged in the store (reads raise
        :class:`QuarantinedError`); files are moved under the quarantine
        directory.  Either way the manifest records the location so the
        next scrub treats it as a known loss — that is what lets
        scrub -> repair -> scrub converge instead of rediscovering the
        same corpse forever.
        """
        if finding.area == "blob":
            # the store's quarantine drops any cached bytes / live mmap
            # view for the digest itself
            digest = finding.location.split(":", 1)[1]
            self.jcf.db.quarantine_payload(digest)
        else:
            path = pathlib.Path(finding.location)
            if path.exists():
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                target = self.quarantine_dir / (
                    f"{len(self._manifest):04d}_{path.name}"
                )
                path.replace(target)
            if finding.area == "staging" and finding.detail:
                self.jcf.staging.forget(finding.detail)
            if finding.area == "fmcad-version":
                # a library read must not keep serving the quarantined
                # version from the shared cache; the cached bytes are
                # clean (they proved the digest) but the version is now
                # officially out of service
                self._invalidate_version_cache(finding.location)
        self._manifest[finding.location] = finding.classification
        self._append_manifest(finding.location, finding.classification)

    def _invalidate_version_cache(self, location: str) -> None:
        indexed = self._version_index.get(location)
        if indexed is None:
            return
        library, version = indexed
        cache = library.read_cache
        digest = version._content_digest
        if cache is not None and digest is not None:
            cache.invalidate(digest)

    def _load_manifest(self) -> Dict[str, str]:
        if not self._manifest_path.exists():
            return {}
        manifest: Dict[str, str] = {}
        for line in self._manifest_path.read_text(
            encoding="utf-8"
        ).splitlines():
            if not line.strip():
                continue
            location, _, classification = line.partition("|")
            manifest[location] = classification
        return manifest

    def _append_manifest(self, location: str, classification: str) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        with self._manifest_path.open("a", encoding="utf-8") as handle:
            handle.write(f"{location}|{classification}\n")

    def quarantined(self) -> Dict[str, str]:
        """Everything ever quarantined here: location -> classification."""
        return dict(self._manifest)
