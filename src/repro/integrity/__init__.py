"""Storage integrity: verified reads, scrubbing, and peer repair.

The coupling stores every design payload at least twice — an OMS blob on
the master side and a version file in an FMCAD library on the slave side
(paper Section 2.1: all data moves through the UNIX file system).  That
duplication is usually discussed as overhead; this package exploits it
as redundancy: when one copy rots, the other is a repair source.
"""

from repro.integrity.scrub import ScrubFinding, ScrubReport, Scrubber

__all__ = ["ScrubFinding", "ScrubReport", "Scrubber"]
