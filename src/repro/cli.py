"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``
    Print the library version and the implemented system inventory.
``demo``
    Run a self-contained hybrid-framework demonstration (the quickstart
    scenario) in a temporary directory and print the resulting state.
``selfcheck``
    Exercise one coupled flow end-to-end and verify the invariants the
    paper claims (derivation record complete, consistency scan clean);
    exits non-zero on failure.
``audit``
    Cross-framework crash-consistency audit of a saved workspace (or a
    fresh demo environment); exits non-zero when findings remain.
``recover``
    Run two-phase crash recovery on a saved workspace, print what was
    repaired, then re-audit; exits non-zero when the audit stays dirty.
``scrub``
    Verify every stored payload against its content address and report
    damage; with ``--repair``, heal from cross-framework peer copies and
    quarantine what cannot be healed.  Exit codes are cron-friendly:
    0 = store verified, 1 = actionable damage remains, 2 = could not
    open the workspace at all.
``flows``
    Inspect and drive durable flow instances in a saved workspace:
    ``list`` (exit 1 when any instance is dead-lettered), ``resume``
    (recover, roll every pending instance forward, save), ``retry``
    (re-queue dead-lettered instances with a fresh robustness budget).
``serve``
    Run the sharded asyncio design server over a saved workspace (or a
    freshly provisioned multi-team scenario): line-delimited JSON over
    TCP, per-library shards, batch-coalesced group commits, admission
    control.  Ctrl-C drains in-flight windows before exiting.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
from typing import List, Optional

import repro
from repro.core import HybridFramework
from repro.core.mapping import TABLE1_MAPPING, WORKING_VARIANT
from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Enhanced Functionality by Coupling the "
            "JESSI-COMMON-Framework with an ECAD Framework' (DATE 1995)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("info", help="show version and system inventory")
    demo = subparsers.add_parser(
        "demo", help="run the hybrid-framework demonstration"
    )
    demo.add_argument(
        "--workspace",
        type=pathlib.Path,
        default=None,
        help="directory for the demo environment (default: temp dir)",
    )
    demo.add_argument(
        "--persistence",
        choices=HybridFramework.PERSISTENCE_MODES,
        default="snapshot",
        help=(
            "how JCF/OMS state is persisted: 'snapshot' (whole-graph "
            "save) or 'wal' (write-ahead log + compaction)"
        ),
    )
    subparsers.add_parser(
        "selfcheck", help="run one coupled flow and verify the invariants"
    )
    subparsers.add_parser(
        "consult",
        help="run the demo flow and print the design consultant's report",
    )
    audit = subparsers.add_parser(
        "audit", help="cross-framework crash-consistency audit"
    )
    audit.add_argument(
        "--workspace",
        type=pathlib.Path,
        default=None,
        help=(
            "saved hybrid workspace to audit (default: run the demo flow "
            "in a temp dir and audit that)"
        ),
    )
    recover = subparsers.add_parser(
        "recover", help="repair crash leavings, then re-audit"
    )
    recover.add_argument(
        "--workspace",
        type=pathlib.Path,
        default=None,
        help=(
            "saved hybrid workspace to recover (default: temp demo "
            "environment, which needs no repair)"
        ),
    )
    scrub = subparsers.add_parser(
        "scrub",
        help="verify all stored payloads; optionally repair/quarantine",
    )
    scrub.add_argument(
        "--workspace",
        type=pathlib.Path,
        default=None,
        help=(
            "saved hybrid workspace to scrub (default: temp demo "
            "environment, which is pristine)"
        ),
    )
    scrub.add_argument(
        "--repair",
        action="store_true",
        help=(
            "heal damaged payloads from peer copies in the other "
            "framework; quarantine anything unrepairable"
        ),
    )
    flows = subparsers.add_parser(
        "flows",
        help="inspect and drive durable flow instances",
    )
    flows.add_argument(
        "action",
        choices=("list", "resume", "retry"),
        help=(
            "'list' shows every persisted instance (exit 1 when any is "
            "dead-lettered); 'resume' recovers, rolls every pending "
            "instance forward and saves; 'retry' re-queues dead-lettered "
            "instances with a fresh robustness budget"
        ),
    )
    flows.add_argument(
        "--workspace",
        type=pathlib.Path,
        default=None,
        help=(
            "saved hybrid workspace holding the flow instances (default: "
            "temp demo environment, which has none)"
        ),
    )
    flows.add_argument(
        "--instance",
        default=None,
        help="limit 'retry' to one instance oid (default: all dead-letter)",
    )
    serve = subparsers.add_parser(
        "serve",
        help="run the sharded asyncio design server (line-delimited JSON)",
    )
    serve.add_argument(
        "--workspace",
        type=pathlib.Path,
        default=None,
        help=(
            "saved hybrid workspace to serve (default: build a fresh "
            "multi-team scenario in a temp dir)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--shards", type=int, default=2,
        help="independent library shards (lock manager + commit scope each)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16,
        help="flush a shard's window as soon as this many runs coalesce",
    )
    serve.add_argument(
        "--window-ms", type=float, default=25.0,
        help="deadline bound on a coalescing window, anchored on its "
             "oldest request",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=256,
        help="admitted-but-uncommitted runs a shard holds before "
             "rejecting with ServerOverloadError",
    )
    serve.add_argument(
        "--rate", type=float, default=None, dest="rate_per_s",
        help="token-bucket admission rate per shard, runs/second "
             "(default: no throttle, queue depth only)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="scheduler workers per shard wave",
    )
    serve.add_argument(
        "--lease-ttl-ms", type=float, default=30_000.0,
        help="checkout-lease lifetime between heartbeats; an expired "
             "lease is reclaimed and its holder fenced at commit time",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive batch failures before a shard's circuit "
             "breaker opens (requests answered with ShardUnavailableError)",
    )
    serve.add_argument(
        "--breaker-cooldown-ms", type=float, default=5_000.0,
        help="how long an open breaker fences its shard before letting "
             "one half-open probe through",
    )
    serve.add_argument(
        "--persistence",
        choices=HybridFramework.PERSISTENCE_MODES,
        default="wal",
        help="persistence mode when building the default scenario",
    )
    return parser


def _demo_environment(
    workspace: Optional[pathlib.Path], persistence: str = "snapshot"
):
    root = workspace or pathlib.Path(tempfile.mkdtemp(prefix="repro_demo_"))
    hybrid = HybridFramework(root, persistence=persistence)
    resources = hybrid.jcf.resources
    resources.define_user("admin", "demo_user")
    resources.define_team("admin", "demo_team")
    resources.add_member("admin", "demo_user", "demo_team")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("demo_lib")
    library.create_cell("buffer2")
    project = hybrid.adopt_library("demo_user", library, "demo_project")
    resources.assign_team_to_project("admin", "demo_team", project.oid)
    hybrid.prepare_cell("demo_user", project, "buffer2",
                        team_name="demo_team")
    return root, hybrid, project, library


def _run_demo_flow(hybrid, project, library):
    def edit(editor):
        editor.add_port("a", "in")
        editor.add_port("y", "out")
        editor.place_gate("i0", "NOT", 1)
        editor.place_gate("i1", "NOT", 1)
        editor.wire("a", "i0", "in0")
        editor.wire("n", "i0", "out")
        editor.wire("n", "i1", "in0")
        editor.wire("y", "i1", "out")

    def bench(testbench):
        testbench.drive(0, "a", "0")
        testbench.expect(30, "y", "0")
        testbench.drive(50, "a", "1")
        testbench.expect(80, "y", "1")

    def layout(editor):
        editor.draw_rect("metal1", 0, 0, 40, 4)
        editor.add_label("a", "metal1", 1, 1)
        editor.draw_rect("metal1", 0, 10, 40, 14)
        editor.add_label("y", "metal1", 1, 11)

    return [
        hybrid.run_schematic_entry("demo_user", project, library,
                                   "buffer2", edit),
        hybrid.run_simulation("demo_user", project, library,
                              "buffer2", bench),
        hybrid.run_layout_entry("demo_user", project, library,
                                "buffer2", layout),
    ]


def cmd_info(out) -> int:
    out.write(f"repro {repro.__version__}\n")
    out.write(
        "reproduction of Kunzmann & Seepold, DATE 1995 "
        "(JCF-FMCAD hybrid framework)\n\n"
    )
    out.write("implemented systems:\n")
    for line in (
        "  repro.oms       OMS object-oriented database kernel",
        "  repro.jcf       JESSI-COMMON-Framework 3.0 (master)",
        "  repro.fmcad     ECAD framework 'FMCAD' (slave)",
        "  repro.tools     schematic entry / layout editor / digital "
        "simulator",
        "  repro.core      the JCF-FMCAD coupling (the paper's "
        "contribution)",
        "  repro.workloads synthetic designs and multi-user agents",
    ):
        out.write(line + "\n")
    out.write("\nTable 1 mapping:\n")
    for jcf_kind, fmcad_kind in TABLE1_MAPPING:
        out.write(f"  {jcf_kind:22s} <-> {fmcad_kind}\n")
    return 0


def cmd_demo(
    out,
    workspace: Optional[pathlib.Path],
    persistence: str = "snapshot",
) -> int:
    root, hybrid, project, library = _demo_environment(
        workspace, persistence
    )
    out.write(f"demo environment: {root}\n")
    results = _run_demo_flow(hybrid, project, library)
    for result in results:
        status = "ok" if result.success else "FAILED"
        out.write(f"  {result.activity_name:20s} {status}  "
                  f"({result.details})\n")
    variant = (
        project.cell("buffer2").latest_version().variant(WORKING_VARIANT)
    )
    out.write("\nderivation record:\n")
    for key, record in hybrid.jcf.engine.what_belongs_to_what(
        variant
    ).items():
        out.write(f"  {key}: needs={record['needs']} "
                  f"creates={record['creates']}\n")
    out.write(
        f"\nsimulated designer time: {hybrid.clock.now_ms:,.0f} ms\n"
    )
    read_path = hybrid.read_path_stats()
    cache = read_path.get("cache", {})
    out.write(
        "read path: "
        f"cache hits={cache.get('hits', 0)} "
        f"misses={cache.get('misses', 0)}, "
        f"query memo hits={read_path['query_memo']['hits']}, "
        f"staging reflinks={read_path['staging_reflinks']}, "
        f"checkout clones={read_path['checkout_clones']}\n"
    )
    if workspace is not None:
        saved = hybrid.save_state()
        out.write(f"saved: {saved}\n")
    return 0 if all(r.success for r in results) else 1


def cmd_selfcheck(out) -> int:
    root, hybrid, project, library = _demo_environment(None)
    results = _run_demo_flow(hybrid, project, library)
    failures: List[str] = []
    if not all(r.success for r in results):
        failures.append("a coupled tool run failed")
    variant = (
        project.cell("buffer2").latest_version().variant(WORKING_VARIANT)
    )
    if not hybrid.jcf.engine.state_of(variant).complete:
        failures.append("flow did not complete")
    record = hybrid.jcf.engine.what_belongs_to_what(variant)
    if len(record) != 3 or not all(e["creates"] for e in record.values()):
        failures.append("derivation record incomplete")
    findings = hybrid.guard.scan(project, library)
    if findings:
        failures.append(f"consistency scan found {len(findings)} problems")
    if failures:
        for failure in failures:
            out.write(f"FAIL: {failure}\n")
        return 1
    out.write("selfcheck passed: flow complete, derivations recorded, "
              "environment consistent\n")
    return 0


def cmd_consult(out) -> int:
    from repro.core.consultant import DesignConsultant

    root, hybrid, project, library = _demo_environment(None)

    # run only the first activity, leaving the flow half-done so the
    # consultant has something to advise about
    def edit(editor):
        editor.add_port("a", "in")
        editor.add_port("y", "out")
        editor.place_gate("i0", "NOT", 1)
        editor.place_gate("i1", "NOT", 1)
        editor.wire("a", "i0", "in0")
        editor.wire("n", "i0", "out")
        editor.wire("n", "i1", "in0")
        editor.wire("y", "i1", "out")

    result = hybrid.run_schematic_entry(
        "demo_user", project, library, "buffer2", edit
    )
    consultant = DesignConsultant(hybrid.jcf, guard=hybrid.guard)
    advice = consultant.advise(project, library)
    out.write(DesignConsultant.render(advice) + "\n")
    return 0 if result.success else 1


def _open_for_inspection(workspace: Optional[pathlib.Path]):
    """A hybrid environment to audit/recover.

    A saved workspace — one containing a JCF snapshot, or a WAL
    directory (checkpoint + log) — is reopened in place, the restart
    path recovery is designed for.  Naming a workspace with neither is
    an error: auditing anything other than the named store would report
    a state nobody asked about.  With no workspace at all, a demo
    environment is built and its flow run, so the commands have a real
    (healthy) coupling to inspect.
    """
    if workspace is not None:
        from repro.core.coupling import WAL_DIR_NAME
        from repro.oms.wal import WriteAheadLog

        has_snapshot = (
            (workspace / HybridFramework.SNAPSHOT_NAME).exists()
            or (workspace / HybridFramework.PREV_SNAPSHOT_NAME).exists()
        )
        has_wal = WriteAheadLog.present_at(
            workspace / "jcf" / WAL_DIR_NAME
        )
        if not has_snapshot and not has_wal:
            raise ReproError(
                f"no {HybridFramework.SNAPSHOT_NAME} or WAL directory in "
                f"{workspace}: not a saved hybrid workspace (see 'demo', "
                "or HybridFramework.save_state())"
            )
        return HybridFramework.reopen(workspace)
    root, hybrid, project, library = _demo_environment(None)
    _run_demo_flow(hybrid, project, library)
    return hybrid


def cmd_audit(out, workspace: Optional[pathlib.Path]) -> int:
    hybrid = _open_for_inspection(workspace)
    report = hybrid.audit()
    out.write(report.render() + "\n")
    return 0 if report.clean else 1


def cmd_recover(out, workspace: Optional[pathlib.Path]) -> int:
    hybrid = _open_for_inspection(workspace)
    report = hybrid.recover()
    out.write(report.summary() + "\n")
    audit = hybrid.audit()
    out.write(audit.render() + "\n")
    if workspace is not None:
        # persist the repaired state, or the next reopen would replay
        # the pre-recovery snapshot and find the same wreckage again
        hybrid.save_state()
    return 0 if audit.clean else 1


def cmd_scrub(out, workspace: Optional[pathlib.Path], repair: bool) -> int:
    from repro.integrity import Scrubber

    hybrid = _open_for_inspection(workspace)
    report = Scrubber(hybrid.jcf, hybrid.fmcad).scrub(repair=repair)
    out.write(report.render() + "\n")
    if repair and workspace is not None:
        # repairs rewrote files and may have converted delta payloads to
        # full ones; persist so the next reopen sees the healed store
        hybrid.save_state()
    return 0 if report.ok else 1


def cmd_flows(
    out,
    action: str,
    workspace: Optional[pathlib.Path],
    instance_oid: Optional[str] = None,
) -> int:
    from repro.jcf.model import FLOW_DEAD_LETTER

    hybrid = _open_for_inspection(workspace)
    orchestrator = hybrid.flows_orchestrator
    if action == "resume":
        # recovery first: adopt stranded instances, fail interrupted
        # executions — resume_pending needs the quiesced, repaired state
        hybrid.recover()
        results = orchestrator.resume_pending()
        if not results:
            out.write("flows resume: nothing pending\n")
        for oid, state in results:
            out.write(f"  {oid}: {state}\n")
        if workspace is not None:
            hybrid.save_state()
    elif action == "retry":
        retried = []
        for instance in orchestrator.instances(status=FLOW_DEAD_LETTER):
            if instance_oid is not None and instance.oid != instance_oid:
                continue
            orchestrator.retry_dead_letter(instance)
            retried.append(instance.oid)
        if not retried:
            out.write("flows retry: no matching dead-letter instances\n")
        for oid in retried:
            out.write(f"  {oid}: re-queued with a fresh budget epoch\n")
        if workspace is not None and retried:
            hybrid.save_state()
    instances = orchestrator.instances()
    if not instances:
        out.write("no durable flow instances\n")
        return 0
    out.write(
        f"{'instance':14s} {'flow':18s} {'cell':10s} {'team':10s} "
        f"{'prio':>4s} {'status':12s} note\n"
    )
    dead = 0
    for instance in instances:
        if instance.status == FLOW_DEAD_LETTER:
            dead += 1
        out.write(
            f"{instance.oid:14s} {instance.flow_name:18s} "
            f"{instance.cell_name:10s} {instance.team:10s} "
            f"{instance.priority:4d} {instance.status:12s} "
            f"{instance.note}\n"
        )
    return 1 if (action == "list" and dead) else 0


def cmd_serve(out, args) -> int:
    """Boot a DesignServer and run it until interrupted."""
    import asyncio

    from repro.server.design_server import DesignServer

    if args.workspace is not None:
        hybrid = _open_for_inspection(args.workspace)
        out.write(f"serving saved workspace {args.workspace}\n")
    else:
        from repro.workloads.loadgen import ScenarioSpec, build_scenario

        root = pathlib.Path(tempfile.mkdtemp(prefix="repro_serve_"))
        hybrid, plans = build_scenario(
            root / "env", ScenarioSpec(), persistence=args.persistence
        )
        out.write(
            f"serving fresh scenario in {root} "
            f"({len(plans)} designer sessions provisioned)\n"
        )

    server = DesignServer(
        hybrid,
        host=args.host,
        port=args.port,
        shards=args.shards,
        max_batch=args.max_batch,
        window_ms=args.window_ms,
        queue_depth=args.queue_depth,
        admission_rate_per_s=args.rate_per_s,
        workers=args.workers,
        lease_ttl_ms=args.lease_ttl_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
    )

    async def run() -> None:
        host, port = await server.start()
        out.write(
            f"listening on {host}:{port} "
            f"(shards={args.shards}, window={args.window_ms}ms, "
            f"batch<={args.max_batch})\n"
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            # Ctrl-C cancels the main task; drain in the SAME loop so the
            # in-flight windows commit and their clients get answers
            out.write("interrupt: draining in-flight windows...\n")
        finally:
            await server.stop()
            out.write("server stopped cleanly\n")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "info":
        return cmd_info(out)
    if args.command == "demo":
        return cmd_demo(out, args.workspace, args.persistence)
    if args.command == "selfcheck":
        return cmd_selfcheck(out)
    if args.command == "consult":
        return cmd_consult(out)
    if args.command == "audit":
        try:
            return cmd_audit(out, args.workspace)
        except ReproError as error:
            out.write(f"error: {error}\n")
            return 2
    if args.command == "recover":
        try:
            return cmd_recover(out, args.workspace)
        except ReproError as error:
            out.write(f"error: {error}\n")
            return 2
    if args.command == "scrub":
        try:
            return cmd_scrub(out, args.workspace, args.repair)
        except ReproError as error:
            out.write(f"error: {error}\n")
            return 2
    if args.command == "flows":
        try:
            return cmd_flows(out, args.action, args.workspace, args.instance)
        except ReproError as error:
            out.write(f"error: {error}\n")
            return 2
    if args.command == "serve":
        try:
            return cmd_serve(out, args)
        except ReproError as error:
            out.write(f"error: {error}\n")
            return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
