"""Unit tests for flow definitions and the flow registry."""

import pytest

from repro.errors import FlowError, FlowFrozenError
from repro.jcf.flows import (
    ActivityDef,
    FlowDef,
    FlowRegistry,
    standard_encapsulation_flow,
)


class TestFlowDef:
    def test_duplicate_activity_names_rejected(self):
        with pytest.raises(FlowError):
            FlowDef(
                "f",
                (
                    ActivityDef("a", "tool"),
                    ActivityDef("a", "tool"),
                ),
            )

    def test_unknown_predecessor_rejected(self):
        with pytest.raises(FlowError):
            FlowDef("f", (ActivityDef("a", "t", predecessors=("ghost",)),))

    def test_cycle_rejected(self):
        with pytest.raises(FlowError):
            FlowDef(
                "f",
                (
                    ActivityDef("a", "t", predecessors=("b",)),
                    ActivityDef("b", "t", predecessors=("a",)),
                ),
            )

    def test_self_cycle_rejected(self):
        with pytest.raises(FlowError):
            FlowDef("f", (ActivityDef("a", "t", predecessors=("a",)),))

    def test_topological_order_respects_precedence(self):
        flow = standard_encapsulation_flow()
        order = flow.topological_order()
        assert order.index("schematic_entry") < order.index(
            "digital_simulation"
        )
        assert order.index("digital_simulation") < order.index("layout_entry")

    def test_successors_of(self):
        flow = standard_encapsulation_flow()
        assert flow.successors_of("schematic_entry") == ["digital_simulation"]
        assert flow.successors_of("layout_entry") == []

    def test_unknown_activity_lookup_raises(self):
        with pytest.raises(FlowError):
            standard_encapsulation_flow().activity("ghost")

    def test_standard_flow_shape(self):
        """The Section 2.4 scenario: three tools, one activity each."""
        flow = standard_encapsulation_flow()
        assert [a.tool_name for a in flow.activities] == [
            "schematic_editor",
            "digital_simulator",
            "layout_editor",
        ]
        sim = flow.activity("digital_simulation")
        assert sim.needs == ("schematic",)
        assert sim.creates == ("simulation",)


class TestFlowRegistry:
    def test_register_materialises_metadata(self, jcf):
        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        flow_obj = registry.flow_object("jcf_fmcad_flow")
        assert flow_obj.get("frozen") is True
        activities = jcf.db.targets("flow_has_activity", flow_obj.oid)
        assert len(activities) == 3

    def test_activity_tool_links(self, jcf):
        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        flow_obj = registry.flow_object("jcf_fmcad_flow")
        for activity in jcf.db.targets("flow_has_activity", flow_obj.oid):
            tools = jcf.db.targets("activity_uses_tool", activity.oid)
            assert len(tools) == 1

    def test_precedes_links_materialised(self, jcf):
        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        flow_obj = registry.flow_object("jcf_fmcad_flow")
        by_name = {
            a.get("name"): a
            for a in jcf.db.targets("flow_has_activity", flow_obj.oid)
        }
        assert jcf.db.linked(
            "activity_precedes",
            by_name["schematic_entry"].oid,
            by_name["digital_simulation"].oid,
        )

    def test_reregistration_rejected(self, jcf):
        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        with pytest.raises(FlowFrozenError):
            registry.register(standard_encapsulation_flow())

    def test_modify_always_raises(self, jcf):
        """Flows are fixed and cannot be modified (Section 2.1)."""
        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        with pytest.raises(FlowFrozenError):
            registry.modify("jcf_fmcad_flow")

    def test_unknown_flow_raises(self, jcf):
        registry = FlowRegistry(jcf.db)
        with pytest.raises(FlowError):
            registry.definition("ghost")
        with pytest.raises(FlowError):
            registry.flow_object("ghost")

    def test_viewtypes_shared_not_duplicated(self, jcf):
        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        names = [o.get("name") for o in jcf.db.select("ViewType")]
        assert len(names) == len(set(names))


class TestRehydration:
    def test_rehydrate_rebuilds_definitions(self, jcf):
        """A snapshot-restored framework recovers flows from metadata."""
        from repro.jcf.model import build_jcf_schema
        from repro.oms.snapshot import dump_snapshot, restore_snapshot

        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        snapshot = dump_snapshot(jcf.db)

        restored_db = restore_snapshot(build_jcf_schema(), snapshot)
        fresh_registry = FlowRegistry(restored_db)
        recovered = fresh_registry.rehydrate()
        assert recovered == ["jcf_fmcad_flow"]
        definition = fresh_registry.definition("jcf_fmcad_flow")
        original = standard_encapsulation_flow()
        assert {a.name for a in definition.activities} == {
            a.name for a in original.activities
        }
        restored_sim = definition.activity("digital_simulation")
        assert restored_sim.needs == ("schematic",)
        assert restored_sim.creates == ("simulation",)
        assert restored_sim.predecessors == ("schematic_entry",)
        assert restored_sim.tool_name == "digital_simulator"

    def test_rehydrate_is_idempotent(self, jcf):
        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        assert registry.rehydrate() == []  # already known

    def test_rehydrated_flow_stays_frozen(self, jcf):
        from repro.jcf.model import build_jcf_schema
        from repro.oms.snapshot import dump_snapshot, restore_snapshot

        registry = FlowRegistry(jcf.db)
        registry.register(standard_encapsulation_flow())
        restored_db = restore_snapshot(
            build_jcf_schema(), dump_snapshot(jcf.db)
        )
        fresh_registry = FlowRegistry(restored_db)
        fresh_registry.rehydrate()
        with pytest.raises(FlowFrozenError):
            fresh_registry.register(standard_encapsulation_flow())
