"""Unit tests for the workspace concept (Section 2.1)."""

import pytest

from repro.errors import (
    AuthorizationError,
    ReservationConflictError,
    WorkspaceError,
)


@pytest.fixture
def cell_version(jcf):
    project = jcf.desktop.create_project("alice", "chipA")
    jcf.resources.assign_team_to_project("admin", "team1", project.oid)
    cell = project.create_cell("alu")
    return cell.create_version()


class TestWorkspaceCreation:
    def test_failed_link_leaks_no_orphan_workspace(self, jcf, monkeypatch):
        """workspace_for is atomic: create + workspace_of link together."""
        original_link = jcf.db.link

        def failing_link(rel_name, source_oid, target_oid):
            if rel_name == "workspace_of":
                raise RuntimeError("simulated link failure")
            return original_link(rel_name, source_oid, target_oid)

        monkeypatch.setattr(jcf.db, "link", failing_link)
        with pytest.raises(RuntimeError):
            jcf.workspaces.workspace_for("alice")
        monkeypatch.undo()
        assert jcf.db.count("Workspace") == 0
        # a retry after the failure works and creates exactly one
        workspace = jcf.workspaces.workspace_for("alice")
        assert workspace.get("owner") == "alice"
        assert jcf.db.count("Workspace") == 1


class TestReservation:
    def test_reserve_grants_write(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        assert jcf.workspaces.can_write("alice", cell_version)
        assert jcf.workspaces.reserved_by(cell_version) == "alice"

    def test_second_user_conflicts(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        with pytest.raises(ReservationConflictError):
            jcf.workspaces.reserve("bob", cell_version)
        assert jcf.workspaces.denied_reservations == 1

    def test_reserve_is_idempotent_for_holder(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        jcf.workspaces.reserve("alice", cell_version)
        assert jcf.workspaces.granted_reservations == 1

    def test_non_team_member_rejected(self, jcf, cell_version):
        with pytest.raises(AuthorizationError):
            jcf.workspaces.reserve("carol", cell_version)

    def test_team_attached_to_cell_version_wins(self, jcf, cell_version):
        jcf.resources.define_team("admin", "team2")
        jcf.resources.add_member("admin", "carol", "team2")
        cell_version.attach_team(jcf.resources.team("team2"))
        # carol is in team2 which is attached, so she may reserve;
        # alice (team1) is not in the attached team any more
        jcf.workspaces.reserve("carol", cell_version)
        jcf.workspaces.release("carol", cell_version)
        with pytest.raises(AuthorizationError):
            jcf.workspaces.reserve("alice", cell_version)

    def test_published_version_cannot_be_reserved(self, jcf, cell_version):
        cell_version.publish()
        with pytest.raises(WorkspaceError):
            jcf.workspaces.reserve("alice", cell_version)

    def test_conflict_charges_lock_wait(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        with pytest.raises(ReservationConflictError):
            jcf.workspaces.reserve("bob", cell_version)
        assert jcf.clock.elapsed_by_category()["lock_wait"] > 0


class TestReadVisibility:
    def test_unpublished_readable_only_by_holder(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        assert jcf.workspaces.can_read("alice", cell_version)
        assert not jcf.workspaces.can_read("bob", cell_version)

    def test_published_readable_by_everyone(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        jcf.workspaces.publish("alice", cell_version)
        assert jcf.workspaces.can_read("bob", cell_version)
        assert jcf.workspaces.can_read("carol", cell_version)

    def test_published_writable_by_nobody(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        jcf.workspaces.publish("alice", cell_version)
        assert not jcf.workspaces.can_write("alice", cell_version)


class TestPublishAndRelease:
    def test_publish_requires_holder(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        with pytest.raises(WorkspaceError):
            jcf.workspaces.publish("bob", cell_version)

    def test_publish_releases_reservation(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        jcf.workspaces.publish("alice", cell_version)
        assert jcf.workspaces.reserved_by(cell_version) is None
        assert cell_version.published

    def test_release_without_publish(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        jcf.workspaces.release("alice", cell_version)
        assert jcf.workspaces.reserved_by(cell_version) is None
        assert not cell_version.published
        # bob can now take it
        jcf.workspaces.reserve("bob", cell_version)

    def test_release_requires_holder(self, jcf, cell_version):
        with pytest.raises(WorkspaceError):
            jcf.workspaces.release("alice", cell_version)


class TestParallelVersions:
    def test_two_users_on_different_versions_of_same_cell(self, jcf):
        """The Section 3.1 capability FMCAD lacks."""
        project = jcf.desktop.create_project("alice", "chipA")
        jcf.resources.assign_team_to_project("admin", "team1", project.oid)
        cell = project.create_cell("alu")
        v1 = cell.create_version()
        v2 = cell.create_version()
        jcf.workspaces.reserve("alice", v1)
        jcf.workspaces.reserve("bob", v2)  # no conflict!
        assert jcf.workspaces.can_write("alice", v1)
        assert jcf.workspaces.can_write("bob", v2)

    def test_reservations_of_user(self, jcf, cell_version):
        jcf.workspaces.reserve("alice", cell_version)
        held = jcf.workspaces.reservations_of("alice")
        assert [cv.oid for cv in held] == [cell_version.oid]

    def test_workspace_created_once_per_user(self, jcf, cell_version):
        w1 = jcf.workspaces.workspace_for("alice")
        w2 = jcf.workspaces.workspace_for("alice")
        assert w1.oid == w2.oid
