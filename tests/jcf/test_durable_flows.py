"""Unit tests for durable, crash-resumable flow orchestration."""

import pytest

from repro.errors import FlowError, FlowStuckError
from repro.faults import FaultPlan, inject
from repro.jcf.durable_flows import (
    ActivityPolicy,
    DurableFlowOrchestrator,
    FlowPolicy,
    WRAPPER_ACTIVITIES,
)
from repro.jcf.model import (
    ATTEMPT_OK,
    ATTEMPT_SKIPPED,
    ATTEMPT_TRANSIENT,
    FLOW_DEAD_LETTER,
    FLOW_DEGRADED,
    FLOW_DONE,
    FLOW_QUEUED,
)


@pytest.fixture
def env(hybrid):
    """Hybrid with one prepared cell, ready for flow instances."""
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    hybrid.jcf.resources.assign_team_to_project(
        "admin", "team1", project.oid
    )
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    return hybrid, project, library


def start_instance(hybrid, project, **overrides):
    kwargs = dict(
        user="alice",
        project=project,
        cell_name="inv2",
        flow_name="jcf_fmcad_flow",
        script="inverter_flow",
        library_name="chiplib",
        team="team1",
    )
    kwargs.update(overrides)
    return hybrid.flows_orchestrator.start(**kwargs)


class TestWrapperActivityParity:
    def test_matches_scheduler_activities(self):
        from repro.core.scheduler import ACTIVITIES

        assert WRAPPER_ACTIVITIES == ACTIVITIES


class TestLifecycle:
    def test_start_persists_a_queued_instance(self, env):
        hybrid, project, library = env
        instance = start_instance(hybrid, project)
        assert instance.status == FLOW_QUEUED
        assert instance.flow_name == "jcf_fmcad_flow"
        assert instance.cell_name == "inv2"
        assert instance.team == "team1"
        assert instance.variant_oid
        # persisted: a second orchestrator over the same store sees it
        other = DurableFlowOrchestrator(hybrid)
        assert [i.oid for i in other.instances()] == [instance.oid]

    def test_start_rejects_unknown_flow(self, env):
        hybrid, project, library = env
        with pytest.raises(FlowError):
            start_instance(hybrid, project, flow_name="no_such_flow")

    def test_run_completes_every_activity(self, env):
        hybrid, project, library = env
        instance = start_instance(hybrid, project)
        assert hybrid.flows_orchestrator.run(instance) == FLOW_DONE
        state = hybrid.jcf.engine.state_of(instance.variant())
        assert state.complete
        outcomes = [a.get("outcome") for a in instance.attempts()]
        assert outcomes == [ATTEMPT_OK] * 3

    def test_run_requires_a_registered_script(self, env):
        hybrid, project, library = env
        instance = start_instance(hybrid, project, script="not_registered")
        with pytest.raises(FlowError):
            hybrid.flows_orchestrator.run(instance)
        assert instance.status == FLOW_QUEUED  # untouched

    def test_run_on_terminal_instance_is_a_noop(self, env):
        hybrid, project, library = env
        instance = start_instance(hybrid, project)
        hybrid.flows_orchestrator.run(instance)
        assert hybrid.flows_orchestrator.run(instance) == FLOW_DONE


class TestRetryPolicy:
    def test_transient_fault_retried_within_budget(self, env):
        """A glitchy activity succeeds without operator action."""
        hybrid, project, library = env
        instance = start_instance(hybrid, project)
        plan = FaultPlan.transient("harvest.after_checkout", on_hit=1)
        with inject(plan):
            final = hybrid.flows_orchestrator.run(instance)
        assert final == FLOW_DONE
        schematic = instance.attempts("schematic_entry")
        assert [a.get("outcome") for a in schematic] == [
            ATTEMPT_TRANSIENT,
            ATTEMPT_OK,
        ]
        assert hybrid.flows_orchestrator.retried_attempts == 1

    def test_budget_exhaustion_dead_letters(self, env):
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator
        instance = start_instance(hybrid, project)
        plan = FaultPlan.transient(
            "harvest.after_checkout", on_hit=1, times=99
        )
        with inject(plan):
            with pytest.raises(FlowStuckError) as excinfo:
                orchestrator.run(instance)
        assert excinfo.value.instance_oid == instance.oid
        assert excinfo.value.activity == "schematic_entry"
        assert instance.status == FLOW_DEAD_LETTER
        assert len(instance.attempts("schematic_entry")) == 3
        assert "retry budget exhausted" in instance.note

    def test_timeout_budget_dead_letters(self, env):
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator
        orchestrator.set_policy(
            "jcf_fmcad_flow",
            FlowPolicy(default=ActivityPolicy(attempts=50, timeout_ms=1.0)),
        )
        instance = start_instance(hybrid, project)
        plan = FaultPlan.transient(
            "harvest.after_checkout", on_hit=1, times=99
        )
        with inject(plan):
            with pytest.raises(FlowStuckError):
                orchestrator.run(instance)
        assert instance.status == FLOW_DEAD_LETTER
        assert "timeout budget exhausted" in instance.note

    def test_hard_tool_failure_dead_letters_within_budget(self, env):
        """A deterministic failure converges to dead-letter, not a loop."""
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator

        def broken(activity):
            if activity == "schematic_entry":
                def edit(editor):
                    editor.place_gate("g0", "NOT", 1)  # dangling pins
                return {"edit_fn": edit}
            return {}

        orchestrator.register_script("broken", broken)
        instance = start_instance(hybrid, project, script="broken")
        with pytest.raises(FlowStuckError):
            orchestrator.run(instance)
        assert instance.status == FLOW_DEAD_LETTER
        assert len(instance.attempts("schematic_entry")) == 3

    def test_dead_letter_visible_to_audit(self, env):
        hybrid, project, library = env
        instance = start_instance(hybrid, project)
        plan = FaultPlan.transient(
            "harvest.after_checkout", on_hit=1, times=99
        )
        with inject(plan):
            with pytest.raises(FlowStuckError):
                hybrid.flows_orchestrator.run(instance)
        report = hybrid.audit()
        assert not report.clean
        assert "dead-letter-flow" in report.by_category()

    def test_retry_dead_letter_requeues_with_fresh_budget(self, env):
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator
        instance = start_instance(hybrid, project)
        plan = FaultPlan.transient(
            "harvest.after_checkout", on_hit=1, times=99
        )
        with inject(plan):
            with pytest.raises(FlowStuckError):
                orchestrator.run(instance)
        orchestrator.retry_dead_letter(instance)
        assert instance.status == FLOW_QUEUED
        assert instance.epoch == 1
        # old attempts no longer count against the new budget
        assert instance.attempts("schematic_entry") == []
        assert orchestrator.run(instance) == FLOW_DONE

    def test_retry_rejects_non_dead_letter(self, env):
        hybrid, project, library = env
        instance = start_instance(hybrid, project)
        with pytest.raises(FlowError):
            hybrid.flows_orchestrator.retry_dead_letter(instance)


class TestGracefulDegradation:
    def test_optional_tail_activity_skipped(self, env):
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator
        orchestrator.set_policy(
            "jcf_fmcad_flow",
            FlowPolicy(overrides={
                "layout_entry": ActivityPolicy(optional=True),
            }),
        )
        orchestrator.quarantine_tool("layout_editor")
        instance = start_instance(hybrid, project)
        assert orchestrator.run(instance) == FLOW_DEGRADED
        assert instance.skipped_activities() == ["layout_entry"]
        assert any("layout_entry" in f for f in instance.findings)
        skipped = instance.attempts("layout_entry")
        assert [a.get("outcome") for a in skipped] == [ATTEMPT_SKIPPED]

    def test_optional_middle_activity_forces_successor_early(self, env):
        """Successors of a skipped activity run via supervised early
        start — the paper's extra consistency window, not a rule bend."""
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator
        orchestrator.set_policy(
            "jcf_fmcad_flow",
            FlowPolicy(overrides={
                "digital_simulation": ActivityPolicy(optional=True),
            }),
        )
        orchestrator.quarantine_tool("digital_simulator")
        instance = start_instance(hybrid, project)
        assert orchestrator.run(instance) == FLOW_DEGRADED
        executions = hybrid.jcf.engine.executions_of(instance.variant())
        layout = [
            e for e in executions if e.activity_name == "layout_entry"
        ]
        assert layout and layout[0].forced_early

    def test_required_tool_quarantine_dead_letters(self, env):
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator
        orchestrator.quarantine_tool("digital_simulator")
        instance = start_instance(hybrid, project)
        with pytest.raises(FlowStuckError):
            orchestrator.run(instance)
        assert instance.status == FLOW_DEAD_LETTER

    def test_restored_tool_runs_normally(self, env):
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator
        orchestrator.quarantine_tool("layout_editor")
        orchestrator.restore_tool("layout_editor")
        instance = start_instance(hybrid, project)
        assert orchestrator.run(instance) == FLOW_DONE


class TestStats:
    def test_stats_aggregate_instances(self, env):
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator
        instance = start_instance(hybrid, project)
        orchestrator.run(instance)
        stats = orchestrator.stats()
        assert stats["instances"] == 1
        assert stats["by_status"] == {FLOW_DONE: 1}
        # surfaced through the hybrid's top-level stats too
        assert hybrid.stats()["flows"]["instances"] == 1
