"""Unit tests for JCF configuration versions."""

import pytest

from repro.errors import ConfigurationError


@pytest.fixture
def setup(jcf):
    project = jcf.desktop.create_project("alice", "chipA")
    cell = project.create_cell("alu")
    version = cell.create_version()
    variant = version.create_variant("work")
    schematic = variant.create_design_object("s", "schematic")
    sv1 = schematic.new_version(b"s1")
    sv2 = schematic.new_version(b"s2")
    layout = variant.create_design_object("l", "layout")
    lv1 = layout.new_version(b"l1")
    return jcf, version, sv1, sv2, lv1


class TestCreation:
    def test_create_numbers_sequentially(self, setup):
        jcf, version, *_ = setup
        c1 = jcf.configurations.create(version, "alpha")
        c2 = jcf.configurations.create(version, "beta")
        assert (c1.number, c2.number) == (1, 2)

    def test_duplicate_name_rejected(self, setup):
        jcf, version, *_ = setup
        jcf.configurations.create(version, "alpha")
        with pytest.raises(ConfigurationError):
            jcf.configurations.create(version, "alpha")

    def test_predecessor_links(self, setup):
        jcf, version, *_ = setup
        c1 = jcf.configurations.create(version, "alpha")
        c2 = jcf.configurations.create(version, "beta", predecessor=c1)
        assert [c.oid for c in c2.predecessors()] == [c1.oid]

    def test_back_reference(self, setup):
        jcf, version, *_ = setup
        config = jcf.configurations.create(version, "alpha")
        assert config.cell_version.oid == version.oid


class TestPinning:
    def test_pin_and_resolve(self, setup):
        jcf, version, sv1, sv2, lv1 = setup
        config = jcf.configurations.create(version, "alpha")
        jcf.configurations.pin(config, sv1)
        jcf.configurations.pin(config, lv1)
        assert {v.oid for v in config.pinned_versions()} == {sv1.oid, lv1.oid}

    def test_one_version_per_design_object(self, setup):
        jcf, version, sv1, sv2, _ = setup
        config = jcf.configurations.create(version, "alpha")
        jcf.configurations.pin(config, sv1)
        with pytest.raises(ConfigurationError):
            jcf.configurations.pin(config, sv2)

    def test_foreign_cell_version_rejected(self, setup):
        jcf, version, sv1, *_ = setup
        other_version = version.cell.create_version()
        other_config = jcf.configurations.create(other_version, "other")
        with pytest.raises(ConfigurationError):
            jcf.configurations.pin(other_config, sv1)

    def test_unpin(self, setup):
        jcf, version, sv1, sv2, _ = setup
        config = jcf.configurations.create(version, "alpha")
        jcf.configurations.pin(config, sv1)
        jcf.configurations.unpin(config, sv1)
        jcf.configurations.pin(config, sv2)  # now allowed
        assert [v.oid for v in config.pinned_versions()] == [sv2.oid]


class TestValidation:
    def test_clean_config_validates(self, setup):
        jcf, version, sv1, *_ = setup
        config = jcf.configurations.create(version, "alpha")
        jcf.configurations.pin(config, sv1)
        assert jcf.configurations.validate(config) == []
