"""Unit tests for the JCF framework facade."""

import pytest

from repro.jcf.flows import standard_encapsulation_flow
from repro.jcf.framework import JCFFramework


class TestWiring:
    def test_shared_clock_everywhere(self, jcf):
        assert jcf.db.clock is jcf.clock
        library_roots = jcf.staging.root
        assert library_roots.exists()

    def test_register_flow_and_lookup(self, jcf):
        jcf.register_flow(standard_encapsulation_flow())
        assert jcf.flows.names() == ["jcf_fmcad_flow"]
        assert jcf.flows.flow_object("jcf_fmcad_flow").get("frozen")

    def test_project_lookup(self, jcf):
        jcf.desktop.create_project("alice", "chipA")
        assert jcf.project("chipA").name == "chipA"
        with pytest.raises(KeyError):
            jcf.project("ghost")

    def test_stats_shape(self, jcf):
        stats = jcf.stats()
        assert "db" in stats and "workspaces" in stats
        assert stats["flow_engine"]["rejected_starts"] == 0

    def test_closed_interface_by_default(self, jcf):
        from repro.errors import ClosedInterfaceError

        with pytest.raises(ClosedInterfaceError):
            jcf.db.procedural_interface()

    def test_policy_defaults_to_no_sharing(self, jcf):
        assert jcf.db.policy == {"cross_project_sharing": False}


class TestDesignDataThroughStaging:
    def test_design_data_leaves_via_staging_only(self, jcf):
        """The architectural property of Section 2.1, end to end."""
        project = jcf.desktop.create_project("alice", "p")
        variant = (
            project.create_cell("c").create_version().create_variant("v")
        )
        dobj = variant.create_design_object("c/schematic", "schematic")
        version = dobj.new_version(b"design bytes")
        staged = jcf.staging.export_object(version.oid)
        assert staged.path.read_bytes() == b"design bytes"
        # the copy was charged against the shared clock
        assert jcf.clock.elapsed_by_category()["copy"] > 0
