"""Unit tests for the Figure 1 schema (JCF 3.0 information model)."""

from repro.jcf.model import build_jcf_schema

#: Every box of Figure 1 that the schema must contain.
FIGURE1_ENTITIES = {
    "User",
    "Team",
    "Flow",
    "Activity",
    "ActivityProxy",
    "Tool",
    "ViewType",
    "Project",
    "Cell",
    "CellVersion",
    "Variant",
    "DesignObject",
    "DesignObjectVersion",
    "ActiveExecVersion",
    "ConfigVersion",
    "Workspace",
}

#: Every labelled edge of Figure 1 the schema must contain.
FIGURE1_RELATIONSHIPS = {
    "member_of",
    "team_supports",
    "flow_has_activity",
    "activity_precedes",
    "activity_uses_tool",
    "activity_needs",
    "activity_creates",
    "has_entry",
    "comp_of",
    "cell_version_of",
    "cv_precedes",
    "cv_flow",
    "cv_team",
    "variant_of",
    "dobj_in_variant",
    "dobj_viewtype",
    "dov_of",
    "derived",
    "equivalent",
    "exec_of_activity",
    "exec_in_variant",
    "needs_of_version",
    "creates_version",
    "config_of",
    "config_precedes",
    "config_contains",
    "workspace_of",
    "reserves",
}


class TestFigure1Schema:
    def test_all_figure1_entities_present(self):
        schema = build_jcf_schema()
        assert FIGURE1_ENTITIES <= set(schema.entity_names())

    def test_all_figure1_relationships_present(self):
        schema = build_jcf_schema()
        assert FIGURE1_RELATIONSHIPS <= set(schema.relationship_names())

    def test_cell_versions_belong_to_one_cell(self):
        schema = build_jcf_schema()
        assert schema.relationship("cell_version_of").cardinality == "1:N"

    def test_variants_belong_to_one_cell_version(self):
        schema = build_jcf_schema()
        assert schema.relationship("variant_of").cardinality == "1:N"

    def test_workspace_reservation_is_exclusive(self):
        """A cell version sits in at most one workspace (Section 2.1)."""
        schema = build_jcf_schema()
        assert schema.relationship("reserves").cardinality == "1:N"

    def test_one_workspace_per_user(self):
        schema = build_jcf_schema()
        assert schema.relationship("workspace_of").cardinality == "1:1"

    def test_activity_uses_one_tool(self):
        schema = build_jcf_schema()
        assert schema.relationship("activity_uses_tool").cardinality == "N:1"

    def test_cells_owned_by_one_project(self):
        schema = build_jcf_schema()
        assert schema.relationship("cell_in_project").cardinality == "N:1"

    def test_derivation_is_many_to_many(self):
        schema = build_jcf_schema()
        assert schema.relationship("derived").cardinality == "M:N"

    def test_schema_is_reconstructible(self):
        """Two builds produce identical descriptions (determinism)."""
        assert build_jcf_schema().describe() == build_jcf_schema().describe()

    def test_metadata_split_documented(self):
        """CompOf is documented as separate, manually submitted metadata."""
        schema = build_jcf_schema()
        assert "manually" in schema.relationship("comp_of").doc
