"""Unit tests for administrator-controlled resources."""

import pytest

from repro.errors import AuthorizationError, ResourceError


class TestAdministratorPrivilege:
    def test_only_admin_defines_users(self, jcf):
        with pytest.raises(AuthorizationError):
            jcf.resources.define_user("alice", "mallory")

    def test_only_admin_defines_teams(self, jcf):
        with pytest.raises(AuthorizationError):
            jcf.resources.define_team("alice", "rogues")

    def test_only_admin_changes_membership(self, jcf):
        with pytest.raises(AuthorizationError):
            jcf.resources.add_member("alice", "carol", "team1")


class TestUsers:
    def test_define_and_find(self, jcf):
        assert jcf.resources.user("alice").get("name") == "alice"

    def test_duplicate_user_rejected(self, jcf):
        with pytest.raises(ResourceError):
            jcf.resources.define_user("admin", "alice")

    def test_unknown_user_raises(self, jcf):
        with pytest.raises(ResourceError):
            jcf.resources.user("ghost")

    def test_users_listing(self, jcf):
        names = {u.get("name") for u in jcf.resources.users()}
        assert {"alice", "bob", "carol"} <= names


class TestTeams:
    def test_membership(self, jcf):
        assert jcf.resources.is_member("alice", "team1")
        assert not jcf.resources.is_member("carol", "team1")

    def test_remove_member(self, jcf):
        jcf.resources.remove_member("admin", "bob", "team1")
        assert not jcf.resources.is_member("bob", "team1")

    def test_teams_of(self, jcf):
        jcf.resources.define_team("admin", "team2")
        jcf.resources.add_member("admin", "alice", "team2")
        assert jcf.resources.teams_of("alice") == ["team1", "team2"]

    def test_members_of(self, jcf):
        assert jcf.resources.members_of("team1") == ["alice", "bob"]

    def test_duplicate_team_rejected(self, jcf):
        with pytest.raises(ResourceError):
            jcf.resources.define_team("admin", "team1")

    def test_is_member_with_unknown_names_is_false(self, jcf):
        assert not jcf.resources.is_member("ghost", "team1")
        assert not jcf.resources.is_member("alice", "ghost_team")


class TestProjectSupport:
    def test_team_supports_project(self, jcf):
        project = jcf.desktop.create_project("alice", "p1")
        jcf.resources.assign_team_to_project("admin", "team1", project.oid)
        assert jcf.resources.team_supports_project("team1", project.oid)
        assert jcf.resources.user_may_work_on("alice", project.oid)
        assert not jcf.resources.user_may_work_on("carol", project.oid)

    def test_assignment_needs_admin(self, jcf):
        project = jcf.desktop.create_project("alice", "p1")
        with pytest.raises(AuthorizationError):
            jcf.resources.assign_team_to_project(
                "alice", "team1", project.oid
            )
