"""Unit tests for the fair-scheduling durable flow queue."""

import pytest

from repro.faults import FaultPlan, inject
from repro.jcf.model import (
    ATTEMPT_OK,
    ATTEMPT_TRANSIENT,
    FLOW_DONE,
)


@pytest.fixture
def env(hybrid):
    """Three prepared cells across two teams."""
    resources = hybrid.jcf.resources
    resources.define_team("admin", "team2")
    resources.add_member("admin", "bob", "team2")
    library = hybrid.fmcad.create_library("chiplib")
    for cell in ("cell_a", "cell_b", "cell_c"):
        library.create_cell(cell)
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    resources.assign_team_to_project("admin", "team2", project.oid)
    hybrid.prepare_cell("alice", project, "cell_a", team_name="team1")
    hybrid.prepare_cell("alice", project, "cell_c", team_name="team1")
    hybrid.prepare_cell("bob", project, "cell_b", team_name="team2")
    return hybrid, project, library


def start(hybrid, project, cell, user="alice", team="team1", priority=0):
    return hybrid.flows_orchestrator.start(
        user=user,
        project=project,
        cell_name=cell,
        flow_name="jcf_fmcad_flow",
        script="inverter_flow",
        library_name="chiplib",
        team=team,
        priority=priority,
    )


class TestWaveSelection:
    def test_round_robin_across_teams(self, env):
        """With room for two, each team advances one instance — a big
        team cannot starve a small one."""
        hybrid, project, library = env
        start(hybrid, project, "cell_a")
        start(hybrid, project, "cell_c")
        start(hybrid, project, "cell_b", user="bob", team="team2")
        wave = hybrid.flow_queue.next_wave(max_runs=2)
        assert sorted(i.team for i in wave) == ["team1", "team2"]

    def test_priority_orders_within_a_team(self, env):
        hybrid, project, library = env
        start(hybrid, project, "cell_a", priority=0)
        start(hybrid, project, "cell_c", priority=5)
        wave = hybrid.flow_queue.next_wave(max_runs=1)
        assert [i.cell_name for i in wave] == ["cell_c"]

    def test_fifo_within_equal_priority(self, env):
        hybrid, project, library = env
        start(hybrid, project, "cell_a")
        start(hybrid, project, "cell_c")
        wave = hybrid.flow_queue.next_wave(max_runs=1)
        assert [i.cell_name for i in wave] == ["cell_a"]

    def test_one_instance_per_cell_per_wave(self, env):
        """Two flows on one cell would race its working variant."""
        hybrid, project, library = env
        start(hybrid, project, "cell_a")
        start(hybrid, project, "cell_a")
        wave = hybrid.flow_queue.next_wave()
        assert len(wave) == 1

    def test_empty_queue_selects_nothing(self, env):
        hybrid, project, library = env
        assert hybrid.flow_queue.next_wave() == []


class TestDrain:
    def test_drain_completes_all_instances(self, env):
        hybrid, project, library = env
        oids = [
            start(hybrid, project, "cell_a").oid,
            start(hybrid, project, "cell_c").oid,
            start(hybrid, project, "cell_b", user="bob", team="team2").oid,
        ]
        report = hybrid.flow_queue.drain(workers=2)
        assert sorted(report.completed) == sorted(oids)
        assert report.still_queued == []
        assert report.dead_lettered == []
        # 3 instances x 3 activities, one activity per instance per wave
        assert report.activities_run == 9
        assert hybrid.audit().clean

    def test_max_waves_leaves_work_queued(self, env):
        hybrid, project, library = env
        instance = start(hybrid, project, "cell_a")
        report = hybrid.flow_queue.drain(max_waves=1)
        assert report.activities_run == 1
        assert report.completed == []
        assert report.still_queued == [instance.oid]
        # a later drain finishes the job
        report = hybrid.flow_queue.drain()
        assert report.completed == [instance.oid]

    def test_transient_failure_consumes_budget_then_succeeds(self, env):
        hybrid, project, library = env
        instance = start(hybrid, project, "cell_a")
        plan = FaultPlan.transient("harvest.after_checkout", on_hit=1)
        with inject(plan):
            report = hybrid.flow_queue.drain()
        assert report.completed == [instance.oid]
        outcomes = [
            a.get("outcome")
            for a in instance.attempts("schematic_entry")
        ]
        assert outcomes == [ATTEMPT_TRANSIENT, ATTEMPT_OK]

    def test_hard_failure_dead_letters_without_raising(self, env):
        hybrid, project, library = env
        orchestrator = hybrid.flows_orchestrator

        def broken(activity):
            if activity == "schematic_entry":
                def edit(editor):
                    editor.place_gate("g0", "NOT", 1)  # dangling pins
                return {"edit_fn": edit}
            return {}

        orchestrator.register_script("broken", broken)
        bad = orchestrator.start(
            user="alice",
            project=project,
            cell_name="cell_a",
            flow_name="jcf_fmcad_flow",
            script="broken",
            library_name="chiplib",
            team="team1",
        )
        good = start(hybrid, project, "cell_c")
        report = hybrid.flow_queue.drain()
        assert report.dead_lettered == [bad.oid]
        assert report.completed == [good.oid]

    def test_drain_runs_trigger_spawned_flows(self, env):
        """Events recorded before (or during) a drain feed the same
        drain via dispatch between waves."""
        hybrid, project, library = env
        hybrid.triggers.define(
            name="resim",
            flow_name="jcf_fmcad_flow",
            user="alice",
            cell="cell_a",
            script="inverter_flow",
            team="team1",
        )
        hybrid.triggers.record_event(
            "checkin", "chiplib", "cell_a", "schematic"
        )
        report = hybrid.flow_queue.drain()
        # the spawned flow's own schematic checkin (new bytes) matches
        # the trigger once more; that follow-up instance finds the
        # variant already complete and finalizes without running a tool
        # — the trigger loop converges instead of spinning
        assert len(report.completed) == 2
        assert report.activities_run == 3
        for oid in report.completed:
            assert hybrid.flows_orchestrator.instance(oid).status == FLOW_DONE
        assert hybrid.triggers.pending_events() == []
