"""Unit tests for two-level versioning analysis (Section 3.2)."""

import pytest


@pytest.fixture
def cell(jcf):
    project = jcf.desktop.create_project("alice", "chipA")
    return project.create_cell("alu")


class TestHistories:
    def test_cell_history_ordered(self, jcf, cell):
        cell.create_version()
        cell.create_version()
        history = jcf.versioning.cell_history(cell)
        assert [cv.number for cv in history] == [1, 2]

    def test_predecessors_successors(self, jcf, cell):
        v1 = cell.create_version()
        v2 = cell.create_version()
        assert [cv.oid for cv in jcf.versioning.successors_of(v1)] == [v2.oid]
        assert [cv.oid for cv in jcf.versioning.predecessors_of(v2)] == [
            v1.oid
        ]

    def test_design_history(self, jcf, cell):
        variant = cell.create_version().create_variant("w")
        dobj = variant.create_design_object("d", "schematic")
        dobj.new_version(b"1")
        dobj.new_version(b"2")
        assert [
            v.number for v in jcf.versioning.design_history(dobj)
        ] == [1, 2]


class TestTwoLevelExpressiveness:
    def build_two_level_history(self, cell):
        """Same design object evolves in two cell versions and variants."""
        for _ in range(2):
            version = cell.create_version()
            for variant_name in ("variantA", "variantB"):
                variant = version.create_variant(variant_name)
                dobj = variant.create_design_object("alu/schematic",
                                                    "schematic")
                dobj.new_version(b"x")
                dobj.new_version(b"y")

    def test_states_enumerated(self, jcf, cell):
        self.build_two_level_history(cell)
        states = jcf.versioning.states_of_cell(cell)
        # 2 cell versions x 2 variants x 1 object x 2 versions
        assert len(states) == 8

    def test_one_level_scheme_loses_distinctions(self, jcf, cell):
        """The E32 claim: FMCAD's flat (cellview, version) key cannot
        tell apart states living in different cell versions/variants."""
        self.build_two_level_history(cell)
        report = jcf.versioning.expressiveness_report(cell)
        assert report["two_level_states"] == 8
        assert report["one_level_states"] == 2  # only v1 and v2 of the view
        assert report["indistinguishable_states"] == 6

    def test_single_variant_has_no_collisions(self, jcf, cell):
        version = cell.create_version()
        variant = version.create_variant("only")
        dobj = variant.create_design_object("d", "schematic")
        dobj.new_version(b"1")
        report = jcf.versioning.expressiveness_report(cell)
        assert report["indistinguishable_states"] == 0

    def test_empty_cell_report(self, jcf, cell):
        report = jcf.versioning.expressiveness_report(cell)
        assert report["two_level_states"] == 0
