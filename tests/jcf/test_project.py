"""Unit tests for project structure, versioning and design objects."""

import pytest

from repro.errors import (
    CrossProjectSharingError,
    ProjectError,
    VersioningError,
)
from repro.jcf.project import JCFProject


@pytest.fixture
def project(jcf):
    return jcf.desktop.create_project("alice", "chipA")


class TestProjectAndCells:
    def test_create_and_find_cell(self, project):
        project.create_cell("alu")
        assert project.cell("alu").name == "alu"

    def test_duplicate_cell_rejected(self, project):
        project.create_cell("alu")
        with pytest.raises(ProjectError):
            project.create_cell("alu")

    def test_same_cell_name_allowed_across_projects(self, jcf, project):
        other = jcf.desktop.create_project("alice", "chipB")
        project.create_cell("alu")
        other.create_cell("alu")  # no clash: different namespaces

    def test_entry_cells(self, project):
        project.create_cell("top", entry=True)
        project.create_cell("alu")
        assert [c.name for c in project.entry_cells()] == ["top"]

    def test_unknown_cell_raises(self, project):
        with pytest.raises(ProjectError):
            project.cell("ghost")


class TestCompOfHierarchy:
    def test_add_and_query_components(self, project):
        top = project.create_cell("top")
        alu = project.create_cell("alu")
        top.add_component(alu)
        assert [c.name for c in top.components()] == ["alu"]
        assert [c.name for c in alu.used_in()] == ["top"]

    def test_cycle_rejected(self, project):
        a = project.create_cell("a")
        b = project.create_cell("b")
        a.add_component(b)
        with pytest.raises(ProjectError):
            b.add_component(a)

    def test_self_composition_rejected(self, project):
        a = project.create_cell("a")
        with pytest.raises(ProjectError):
            a.add_component(a)

    def test_cross_project_sharing_rejected(self, jcf, project):
        """Section 3.1: no data sharing between projects."""
        other = jcf.desktop.create_project("alice", "chipB")
        mine = project.create_cell("mine")
        theirs = other.create_cell("theirs")
        with pytest.raises(CrossProjectSharingError):
            mine.add_component(theirs)

    def test_diamond_is_allowed(self, project):
        top = project.create_cell("top")
        left = project.create_cell("left")
        right = project.create_cell("right")
        leaf = project.create_cell("leaf")
        top.add_component(left)
        top.add_component(right)
        left.add_component(leaf)
        right.add_component(leaf)
        assert [c.name for c in leaf.used_in()] == ["left", "right"]


class TestCellVersions:
    def test_versions_number_sequentially(self, project):
        cell = project.create_cell("alu")
        v1 = cell.create_version()
        v2 = cell.create_version()
        assert (v1.number, v2.number) == (1, 2)
        assert cell.latest_version().number == 2

    def test_precedes_links_created(self, jcf, project):
        cell = project.create_cell("alu")
        v1 = cell.create_version()
        v2 = cell.create_version()
        assert jcf.db.linked("cv_precedes", v1.oid, v2.oid)

    def test_version_lookup(self, project):
        cell = project.create_cell("alu")
        cell.create_version()
        assert cell.version(1).number == 1
        with pytest.raises(VersioningError):
            cell.version(9)

    def test_publish_changes_status(self, project):
        cell = project.create_cell("alu")
        version = cell.create_version()
        assert not version.published
        version.publish()
        assert version.published

    def test_attach_flow_and_team(self, jcf_with_flow, project):
        jcf = jcf_with_flow
        cell = project.create_cell("alu")
        version = cell.create_version()
        version.attach_flow(jcf.flows.flow_object("jcf_fmcad_flow"))
        version.attach_team(jcf.resources.team("team1"))
        assert version.attached_flow().get("name") == "jcf_fmcad_flow"
        assert version.attached_team().get("name") == "team1"

    def test_reattach_flow_replaces(self, jcf_with_flow, project):
        from repro.jcf.flows import ActivityDef, FlowDef

        jcf = jcf_with_flow
        jcf.register_flow(FlowDef("other", (ActivityDef("x", "t"),)))
        cell = project.create_cell("alu")
        version = cell.create_version()
        version.attach_flow(jcf.flows.flow_object("jcf_fmcad_flow"))
        version.attach_flow(jcf.flows.flow_object("other"))
        assert version.attached_flow().get("name") == "other"


class TestVariants:
    def test_create_variant(self, project):
        cell = project.create_cell("alu")
        version = cell.create_version()
        variant = version.create_variant("exploration1")
        assert variant.name == "exploration1"
        assert version.variant("exploration1").oid == variant.oid

    def test_duplicate_variant_rejected(self, project):
        cell = project.create_cell("alu")
        version = cell.create_version()
        version.create_variant("v")
        with pytest.raises(VersioningError):
            version.create_variant("v")

    def test_variant_derivation_tracked(self, project):
        cell = project.create_cell("alu")
        version = cell.create_version()
        base = version.create_variant("base")
        derived = version.create_variant("lowpower", derived_from=base)
        assert [v.name for v in derived.derived_from()] == ["base"]

    def test_variant_back_reference(self, project):
        cell = project.create_cell("alu")
        version = cell.create_version()
        variant = version.create_variant("v")
        assert variant.cell_version.oid == version.oid


class TestDesignObjects:
    def make_variant(self, project):
        cell = project.create_cell("alu")
        return cell.create_version().create_variant("work")

    def test_create_design_object_with_viewtype(self, project):
        variant = self.make_variant(project)
        dobj = variant.create_design_object("alu/schematic", "schematic")
        assert dobj.viewtype_name == "schematic"
        assert variant.design_object("alu/schematic").oid == dobj.oid

    def test_duplicate_design_object_rejected(self, project):
        variant = self.make_variant(project)
        variant.create_design_object("d", "schematic")
        with pytest.raises(VersioningError):
            variant.create_design_object("d", "layout")

    def test_find_by_viewtype(self, project):
        variant = self.make_variant(project)
        variant.create_design_object("s", "schematic")
        variant.create_design_object("l", "layout")
        assert variant.find_design_object("layout").name == "l"
        assert variant.find_design_object("simulation") is None

    def test_versions_store_payload(self, project):
        variant = self.make_variant(project)
        dobj = variant.create_design_object("d", "schematic")
        v1 = dobj.new_version(b"abc")
        v2 = dobj.new_version(b"defgh")
        assert (v1.number, v2.number) == (1, 2)
        assert v2.payload_size == 5
        assert dobj.latest_version().number == 2

    def test_derivation_relations(self, project):
        variant = self.make_variant(project)
        schematic = variant.create_design_object("s", "schematic")
        layout = variant.create_design_object("l", "layout")
        sv = schematic.new_version(b"s1")
        lv = layout.new_version(b"l1")
        sv.record_derived(lv)
        assert [v.oid for v in sv.derived_versions()] == [lv.oid]
        assert [v.oid for v in lv.derivation_sources()] == [sv.oid]

    def test_equivalence_is_symmetric_view(self, project):
        variant = self.make_variant(project)
        dobj = variant.create_design_object("d", "schematic")
        a = dobj.new_version(b"a")
        b = dobj.new_version(b"b")
        a.mark_equivalent(b)
        assert b.oid in [v.oid for v in a.equivalents()]
        assert a.oid in [v.oid for v in b.equivalents()]
