"""Unit tests for event-driven flow triggers."""

import pytest

from tests.conftest import build_inverter_editor_fn

from repro.errors import FlowError
from repro.faults import CrashFault, FaultPlan, inject
from repro.jcf.model import (
    EVENT_DISPATCHED,
    EVENT_PENDING,
    FLOW_DONE,
    FLOW_QUEUED,
)


@pytest.fixture
def env(hybrid):
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    hybrid.jcf.resources.assign_team_to_project(
        "admin", "team1", project.oid
    )
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    return hybrid, project, library


def define_trigger(hybrid, **overrides):
    kwargs = dict(
        name="resim_on_checkin",
        flow_name="jcf_fmcad_flow",
        user="alice",
        viewtype="schematic",
        script="inverter_flow",
        team="team1",
    )
    kwargs.update(overrides)
    return hybrid.triggers.define(**kwargs)


class TestDefinitions:
    def test_define_persists_and_find(self, env):
        hybrid, project, library = env
        define_trigger(hybrid)
        trigger = hybrid.triggers.find("resim_on_checkin")
        assert trigger is not None
        assert trigger.get("flow_name") == "jcf_fmcad_flow"
        assert trigger.get("enabled") is True

    def test_duplicate_name_rejected(self, env):
        hybrid, project, library = env
        define_trigger(hybrid)
        with pytest.raises(FlowError):
            define_trigger(hybrid)


class TestEventRecording:
    def test_checkin_records_a_pending_event(self, env):
        hybrid, project, library = env
        define_trigger(hybrid)
        result = hybrid.schematic_entry.run(
            "alice", project, library, "inv2",
            edit_fn=build_inverter_editor_fn(),
        )
        assert result.success
        pending = hybrid.triggers.pending_events()
        assert len(pending) == 1
        event = pending[0]
        assert event.get("event") == "checkin"
        assert event.get("cell") == "inv2"
        assert event.get("state") == EVENT_PENDING

    def test_no_trigger_means_no_event(self, env):
        hybrid, project, library = env
        hybrid.schematic_entry.run(
            "alice", project, library, "inv2",
            edit_fn=build_inverter_editor_fn(),
        )
        assert hybrid.triggers.pending_events() == []

    def test_identical_pending_events_dedupe(self, env):
        hybrid, project, library = env
        define_trigger(hybrid)
        oid = hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        )
        assert oid is not None
        assert hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        ) is None
        assert len(hybrid.triggers.pending_events()) == 1
        assert hybrid.triggers.deduped_events == 1

    def test_disabled_trigger_does_not_match(self, env):
        hybrid, project, library = env
        define_trigger(hybrid)
        hybrid.triggers.set_enabled("resim_on_checkin", False)
        assert hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        ) is None

    def test_pattern_mismatch_does_not_match(self, env):
        hybrid, project, library = env
        define_trigger(hybrid, cell="other_cell")
        assert hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        ) is None

    def test_unchanged_checkin_does_not_rerecord(self, env):
        """An idempotent re-run harvests identical bytes — no event, so
        resumed flows cannot re-trigger themselves forever."""
        hybrid, project, library = env
        define_trigger(hybrid)

        def idempotent(editor):
            if editor.schematic.ports():
                return
            build_inverter_editor_fn()(editor)

        hybrid.schematic_entry.run(
            "alice", project, library, "inv2", edit_fn=idempotent
        )
        assert len(hybrid.triggers.pending_events()) == 1
        # consume the event, then re-run the identical edit
        hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        hybrid.schematic_entry.run(
            "alice", project, library, "inv2", edit_fn=idempotent
        )
        assert hybrid.triggers.pending_events() == []


class TestDispatch:
    def test_dispatch_spawns_one_instance_and_marks_event(self, env):
        hybrid, project, library = env
        define_trigger(hybrid)
        hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        )
        spawned = hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        assert len(spawned) == 1
        instance = hybrid.flows_orchestrator.instance(spawned[0])
        assert instance.status == FLOW_QUEUED
        assert instance.flow_name == "jcf_fmcad_flow"
        assert instance.script_name == "inverter_flow"
        assert hybrid.triggers.pending_events() == []
        events = hybrid.jcf.db.select("TriggerEvent")
        assert [e.get("state") for e in events] == [EVENT_DISPATCHED]

    def test_dispatch_skips_duplicate_live_instance(self, env):
        hybrid, project, library = env
        define_trigger(hybrid)
        hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        )
        first = hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        )
        second = hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        assert len(first) == 1 and second == []

    def test_dispatch_after_completion_spawns_again(self, env):
        hybrid, project, library = env
        define_trigger(hybrid)
        hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        )
        first = hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        instance = hybrid.flows_orchestrator.instance(first[0])
        assert hybrid.flows_orchestrator.run(instance) == FLOW_DONE
        hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        )
        second = hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        assert len(second) == 1

    def test_crash_mid_dispatch_is_exactly_once(self, env):
        """A crash inside dispatch rolls the whole step back: the event
        stays pending, no instance exists, and the post-recovery
        re-dispatch spawns exactly one."""
        hybrid, project, library = env
        define_trigger(hybrid)
        hybrid.triggers.record_event(
            "checkin", "chiplib", "inv2", "schematic"
        )
        plan = FaultPlan.crash("flow.trigger")
        with inject(plan):
            with pytest.raises(CrashFault):
                hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        assert plan.crash_fired
        assert len(hybrid.triggers.pending_events()) == 1
        assert hybrid.flows_orchestrator.instances() == []
        spawned = hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        assert len(spawned) == 1
        assert len(hybrid.flows_orchestrator.instances()) == 1
