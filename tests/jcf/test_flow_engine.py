"""Unit tests for flow execution and derivation recording."""

import pytest

from repro.errors import FlowError, FlowOrderError
from repro.jcf.model import EXEC_DONE, EXEC_NOT_STARTED, EXEC_RUNNING


@pytest.fixture
def variant(jcf_with_flow):
    jcf = jcf_with_flow
    project = jcf.desktop.create_project("alice", "chipA")
    cell = project.create_cell("alu")
    version = cell.create_version()
    version.attach_flow(jcf.flows.flow_object("jcf_fmcad_flow"))
    return version.create_variant("work")


class TestOrderEnforcement:
    def test_first_activity_starts(self, jcf_with_flow, variant):
        execution = jcf_with_flow.engine.start_activity(
            variant, "schematic_entry"
        )
        assert execution.status == EXEC_RUNNING

    def test_out_of_order_rejected(self, jcf_with_flow, variant):
        with pytest.raises(FlowOrderError):
            jcf_with_flow.engine.start_activity(variant, "layout_entry")
        assert jcf_with_flow.engine.rejected_starts == 1

    def test_failed_predecessor_blocks_successor(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        execution = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(execution, success=False)
        with pytest.raises(FlowOrderError):
            engine.start_activity(variant, "digital_simulation")

    def test_failed_activity_can_be_retried(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        execution = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(execution, success=False)
        retry = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(retry, success=True)
        assert engine.state_of(variant).status_by_activity[
            "schematic_entry"
        ] == EXEC_DONE

    def test_force_early_overrides_order(self, jcf_with_flow, variant):
        """Section 2.4: wrappers enabled execution before the predecessor
        finished — marked as forced."""
        engine = jcf_with_flow.engine
        execution = engine.start_activity(
            variant, "digital_simulation", force_early=True
        )
        assert execution.forced_early
        assert engine.forced_starts == 1

    def test_force_early_in_order_is_not_marked(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        execution = engine.start_activity(
            variant, "schematic_entry", force_early=True
        )
        assert not execution.forced_early

    def test_double_start_while_running_rejected(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        engine.start_activity(variant, "schematic_entry")
        with pytest.raises(FlowError):
            engine.start_activity(variant, "schematic_entry")

    def test_variant_without_flow_raises(self, jcf_with_flow):
        jcf = jcf_with_flow
        project = jcf.desktop.create_project("alice", "p")
        version = project.create_cell("c").create_version()
        variant = version.create_variant("v")
        with pytest.raises(FlowError):
            jcf.engine.start_activity(variant, "schematic_entry")


class TestState:
    def test_initial_state_all_not_started(self, jcf_with_flow, variant):
        state = jcf_with_flow.engine.state_of(variant)
        assert set(state.status_by_activity.values()) == {EXEC_NOT_STARTED}
        assert not state.complete

    def test_runnable_respects_predecessors(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        state = engine.state_of(variant)
        assert state.runnable(jcf_with_flow.flows) == ["schematic_entry"]
        execution = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(execution)
        state = engine.state_of(variant)
        assert state.runnable(jcf_with_flow.flows) == ["digital_simulation"]

    def test_complete_after_all_done(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        for name in ("schematic_entry", "digital_simulation", "layout_entry"):
            execution = engine.start_activity(variant, name)
            engine.finish_activity(execution)
        assert engine.state_of(variant).complete


class TestDerivationRecording:
    def make_versions(self, variant):
        schematic = variant.create_design_object("s", "schematic")
        simulation = variant.create_design_object("r", "simulation")
        return schematic.new_version(b"s1"), simulation.new_version(b"r1")

    def test_needs_creates_links(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        sv, rv = self.make_versions(variant)
        e1 = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(e1, creates=[sv])
        e2 = engine.start_activity(variant, "digital_simulation")
        engine.finish_activity(e2, needs=[sv], creates=[rv])
        assert [v.oid for v in e2.needed_versions()] == [sv.oid]
        assert [v.oid for v in e2.created_versions()] == [rv.oid]

    def test_derived_relation_recorded(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        sv, rv = self.make_versions(variant)
        e1 = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(e1, creates=[sv])
        e2 = engine.start_activity(variant, "digital_simulation")
        engine.finish_activity(e2, needs=[sv], creates=[rv])
        assert rv.oid in [v.oid for v in sv.derived_versions()]

    def test_derivation_chain_transitive(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        schematic = variant.create_design_object("s", "schematic")
        simulation = variant.create_design_object("r", "simulation")
        layout = variant.create_design_object("l", "layout")
        sv = schematic.new_version(b"s")
        rv = simulation.new_version(b"r")
        lv = layout.new_version(b"l")
        e1 = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(e1, creates=[sv])
        e2 = engine.start_activity(variant, "digital_simulation")
        engine.finish_activity(e2, needs=[sv], creates=[rv])
        e3 = engine.start_activity(variant, "layout_entry")
        engine.finish_activity(e3, needs=[rv], creates=[lv])
        chain = engine.derivation_chain(lv)
        assert {v.oid for v in chain} == {sv.oid, rv.oid}

    def test_what_belongs_to_what(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        sv, rv = self.make_versions(variant)
        e1 = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(e1, creates=[sv])
        report = engine.what_belongs_to_what(variant)
        assert len(report) == 1
        entry = next(iter(report.values()))
        assert entry["creates"] == [sv.oid]

    def test_finish_twice_rejected(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        execution = engine.start_activity(variant, "schematic_entry")
        engine.finish_activity(execution)
        with pytest.raises(FlowError):
            engine.finish_activity(execution)


class TestStateCache:
    def test_repeated_state_of_hits_cache(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        engine.state_of(variant)
        misses = engine.state_cache_misses
        before = engine.state_cache_hits
        for _ in range(5):
            engine.state_of(variant)
        assert engine.state_cache_hits == before + 5
        assert engine.state_cache_misses == misses

    def test_cache_tracks_start_and_finish(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        engine.state_of(variant)  # warm
        execution = engine.start_activity(variant, "schematic_entry")
        state = engine.state_of(variant)  # served from cache
        assert state.status_by_activity["schematic_entry"] == EXEC_RUNNING
        engine.finish_activity(execution)
        state = engine.state_of(variant)
        assert state.status_by_activity["schematic_entry"] == EXEC_DONE
        # the cached answer matches a forced rescan exactly
        cached = state.status_by_activity
        engine.invalidate_state_cache(variant.oid)
        rescanned = engine.state_of(variant).status_by_activity
        assert cached == rescanned

    def test_aborted_transaction_invalidates_cache(self, jcf_with_flow, variant):
        """A start_activity joined to an outer transaction that aborts
        must not leave the cache claiming the activity is running."""
        engine = jcf_with_flow.engine
        db = jcf_with_flow.db
        engine.state_of(variant)  # warm
        with pytest.raises(RuntimeError):
            with db.transaction():
                engine.start_activity(variant, "schematic_entry")
                raise RuntimeError("boom")
        state = engine.state_of(variant)
        assert state.status_by_activity["schematic_entry"] == EXEC_NOT_STARTED
        # and starting again (for real) works
        engine.start_activity(variant, "schematic_entry")
        assert (
            engine.state_of(variant).status_by_activity["schematic_entry"]
            == EXEC_RUNNING
        )

    def test_returned_state_is_a_copy(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        state = engine.state_of(variant)
        state.status_by_activity["schematic_entry"] = "vandalised"
        assert (
            engine.state_of(variant).status_by_activity["schematic_entry"]
            == EXEC_NOT_STARTED
        )

    def test_reattached_flow_forces_rescan(self, jcf_with_flow, variant):
        from repro.jcf.flows import FlowDef, ActivityDef

        jcf = jcf_with_flow
        engine = jcf.engine
        engine.state_of(variant)  # warm against jcf_fmcad_flow
        other = FlowDef(
            "other_flow",
            (ActivityDef("lone_activity", "lone_tool"),),
        )
        jcf.register_flow(other)
        variant.cell_version.attach_flow(jcf.flows.flow_object("other_flow"))
        misses = engine.state_cache_misses
        state = engine.state_of(variant)
        assert engine.state_cache_misses == misses + 1
        assert set(state.status_by_activity) == {"lone_activity"}

    def test_global_invalidation(self, jcf_with_flow, variant):
        engine = jcf_with_flow.engine
        engine.state_of(variant)
        engine.invalidate_state_cache()
        misses = engine.state_cache_misses
        engine.state_of(variant)
        assert engine.state_cache_misses == misses + 1

    def test_registry_mutation_drops_cached_state(self, jcf_with_flow, variant):
        """Rehydrating a flow definition invalidates state cached
        against the old in-memory definition of the same name."""
        jcf = jcf_with_flow
        engine = jcf.engine
        engine.state_of(variant)  # warm against jcf_fmcad_flow
        # simulate a restored process whose definition table has not
        # seen this flow yet: drop the in-memory def, then rehydrate
        # it back from the persisted metadata
        jcf.flows._defs.pop("jcf_fmcad_flow")
        assert "jcf_fmcad_flow" in jcf.flows.rehydrate()
        misses = engine.state_cache_misses
        state = engine.state_of(variant)
        assert engine.state_cache_misses == misses + 1
        assert set(state.status_by_activity.values()) == {EXEC_NOT_STARTED}

    def test_unrelated_registration_preserves_cache(self, jcf_with_flow, variant):
        from repro.jcf.flows import ActivityDef, FlowDef

        jcf = jcf_with_flow
        engine = jcf.engine
        engine.state_of(variant)  # warm against jcf_fmcad_flow
        jcf.register_flow(
            FlowDef(
                "bystander_flow",
                (ActivityDef("lone_activity", "lone_tool"),),
            )
        )
        hits = engine.state_cache_hits
        engine.state_of(variant)
        assert engine.state_cache_hits == hits + 1
