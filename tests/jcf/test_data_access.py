"""Unit tests for workspace-enforced design-data access (Section 2.1)."""

import pytest

from repro.errors import AuthorizationError


@pytest.fixture
def reserved_data(jcf):
    """A design-object version inside a cell version reserved by alice."""
    project = jcf.desktop.create_project("alice", "chipA")
    jcf.resources.assign_team_to_project("admin", "team1", project.oid)
    cell = project.create_cell("alu")
    cell_version = cell.create_version()
    jcf.workspaces.reserve("alice", cell_version)
    variant = cell_version.create_variant("work")
    dobj = variant.create_design_object("alu/schematic", "schematic")
    version = dobj.new_version(b"secret work in progress")
    return jcf, cell_version, version


class TestReadVisibility:
    def test_holder_reads_their_own_data(self, reserved_data):
        jcf, cell_version, version = reserved_data
        staged = jcf.checkout_design_data("alice", version)
        assert staged.path.read_bytes() == b"secret work in progress"

    def test_other_user_blocked_while_reserved(self, reserved_data):
        jcf, cell_version, version = reserved_data
        with pytest.raises(AuthorizationError, match="reserved by 'alice'"):
            jcf.checkout_design_data("bob", version)

    def test_everyone_reads_after_publication(self, reserved_data):
        jcf, cell_version, version = reserved_data
        jcf.workspaces.publish("alice", cell_version)
        staged = jcf.checkout_design_data("bob", version)
        assert staged.size > 0

    def test_read_only_access_still_pays_the_copy(self, reserved_data):
        """Section 3.6's point, now with access control in the loop."""
        jcf, cell_version, version = reserved_data
        before = jcf.clock.elapsed_by_category().get("copy", 0.0)
        jcf.checkout_design_data("alice", version)
        assert jcf.clock.elapsed_by_category()["copy"] > before


class TestFlowStateRendering:
    def test_render_state_lists_blockers(self, jcf_with_flow):
        jcf = jcf_with_flow
        project = jcf.desktop.create_project("alice", "p")
        cell_version = project.create_cell("c").create_version()
        cell_version.attach_flow(jcf.flows.flow_object("jcf_fmcad_flow"))
        variant = cell_version.create_variant("v")
        text = jcf.engine.render_state(variant)
        assert "flow jcf_fmcad_flow on variant v" in text
        assert "[not_started] layout_entry" in text
        assert "blocked by digital_simulation" in text

    def test_render_state_shows_progress(self, jcf_with_flow):
        jcf = jcf_with_flow
        project = jcf.desktop.create_project("alice", "p")
        cell_version = project.create_cell("c").create_version()
        cell_version.attach_flow(jcf.flows.flow_object("jcf_fmcad_flow"))
        variant = cell_version.create_variant("v")
        execution = jcf.engine.start_activity(variant, "schematic_entry")
        jcf.engine.finish_activity(execution)
        text = jcf.engine.render_state(variant)
        assert "[done] schematic_entry" in text
        assert "[not_started] digital_simulation" in text
        # simulation's predecessor is done, so no blocked note for it
        assert "digital_simulation  (blocked" not in text
