"""Unit tests for the JCF desktop (interactive metadata surface)."""

import pytest

from repro.errors import ProjectError


class TestProjectOperations:
    def test_create_project_charges_ui(self, jcf):
        before = jcf.clock.elapsed_by_category().get("ui", 0.0)
        jcf.desktop.create_project("alice", "chipA")
        assert jcf.clock.elapsed_by_category()["ui"] > before
        assert jcf.desktop.interactions_by_user["alice"] == 1

    def test_duplicate_project_rejected(self, jcf):
        jcf.desktop.create_project("alice", "chipA")
        with pytest.raises(ProjectError):
            jcf.desktop.create_project("bob", "chipA")

    def test_find_project(self, jcf):
        jcf.desktop.create_project("alice", "chipA")
        assert jcf.desktop.find_project("chipA").name == "chipA"
        assert jcf.desktop.find_project("ghost") is None


class TestHierarchySubmission:
    def test_one_interaction_per_edge(self, jcf):
        project = jcf.desktop.create_project("alice", "chipA")
        for name in ("top", "alu", "fpu"):
            jcf.desktop.create_cell("alice", project, name)
        interactions_before = jcf.desktop.total_interactions()
        count = jcf.desktop.submit_hierarchy(
            "alice", project, [("top", "alu"), ("top", "fpu")]
        )
        assert count == 2
        assert jcf.desktop.total_interactions() == interactions_before + 2

    def test_submission_is_idempotent(self, jcf):
        project = jcf.desktop.create_project("alice", "chipA")
        for name in ("top", "alu"):
            jcf.desktop.create_cell("alice", project, name)
        jcf.desktop.submit_hierarchy("alice", project, [("top", "alu")])
        jcf.desktop.submit_hierarchy("alice", project, [("top", "alu")])
        assert jcf.desktop.declared_hierarchy(project) == [("top", "alu")]

    def test_declared_hierarchy_sorted(self, jcf):
        project = jcf.desktop.create_project("alice", "chipA")
        for name in ("top", "alu", "fpu"):
            jcf.desktop.create_cell("alice", project, name)
        jcf.desktop.submit_hierarchy(
            "alice", project, [("top", "fpu"), ("top", "alu")]
        )
        assert jcf.desktop.declared_hierarchy(project) == [
            ("top", "alu"),
            ("top", "fpu"),
        ]

    def test_unknown_cell_in_edge_raises(self, jcf):
        project = jcf.desktop.create_project("alice", "chipA")
        jcf.desktop.create_cell("alice", project, "top")
        with pytest.raises(ProjectError):
            jcf.desktop.submit_hierarchy(
                "alice", project, [("top", "ghost")]
            )


class TestWorkspaceViaDesktop:
    def test_reserve_and_publish(self, jcf):
        project = jcf.desktop.create_project("alice", "chipA")
        jcf.resources.assign_team_to_project("admin", "team1", project.oid)
        cell = jcf.desktop.create_cell("alice", project, "alu")
        version = cell.create_version()
        jcf.desktop.reserve_cell_version("alice", version)
        assert jcf.workspaces.can_write("alice", version)
        jcf.desktop.publish_cell_version("alice", version)
        assert version.published


class TestBrowsing:
    def test_browse_variant(self, jcf):
        project = jcf.desktop.create_project("alice", "chipA")
        variant = (
            project.create_cell("alu").create_version().create_variant("w")
        )
        dobj = variant.create_design_object("d", "schematic")
        dobj.new_version(b"1")
        dobj.new_version(b"2")
        listing = jcf.desktop.browse_variant("alice", variant)
        assert listing == {"d": [1, 2]}


class TestProjectRendering:
    def test_render_project_tree(self, jcf):
        project = jcf.desktop.create_project("alice", "chipA")
        jcf.resources.assign_team_to_project("admin", "team1", project.oid)
        top = jcf.desktop.create_cell("alice", project, "top")
        alu = jcf.desktop.create_cell("alice", project, "alu")
        top.add_component(alu)
        version = alu.create_version()
        jcf.workspaces.reserve("alice", version)
        variant = version.create_variant("work")
        dobj = variant.create_design_object("alu/schematic", "schematic")
        dobj.new_version(b"1")
        dobj.new_version(b"2")
        text = jcf.desktop.render_project(project)
        assert "project chipA" in text
        assert "cell top  (components: alu)" in text
        assert "v1 [in_work, reserved by alice]" in text
        assert "variant work: alu/schematic(2)" in text

    def test_render_empty_project(self, jcf):
        project = jcf.desktop.create_project("alice", "empty")
        assert jcf.desktop.render_project(project) == "project empty"
