"""Unit tests for the Table 1 data-model mapping."""

import pytest

from repro.core.mapping import (
    TABLE1_MAPPING,
    DataModelMapper,
    WORKING_VARIANT,
)
from repro.errors import MappingError
from repro.tools.schematic.model import Schematic


@pytest.fixture
def library(hybrid):
    """An FMCAD library with two cells and real version data."""
    library = hybrid.fmcad.create_library("asiclib")
    for cell_name in ("alu", "decoder"):
        library.create_cell(cell_name)
        cellview = library.create_cellview(cell_name, "schematic")
        schematic = Schematic(cell_name)
        schematic.add_port("a", "in")
        schematic.add_port("y", "out")
        from repro.tools.schematic.model import Component

        schematic.add_component(Component("g", "NOT", ninputs=1))
        schematic.connect("a", "g", "in0")
        schematic.connect("y", "g", "out")
        library.write_version(cellview, schematic.to_bytes(), "setup")
        library.write_version(cellview, schematic.to_bytes(), "setup")
    library.flush_meta("setup")
    return library


class TestTable1:
    def test_table_rows_verbatim(self):
        assert TABLE1_MAPPING == (
            ("Project", "Library"),
            ("CellVersion", "Cell"),
            ("ViewType", "View"),
            ("DesignObject", "Cellview"),
            ("DesignObjectVersion", "Cellview Version"),
        )

    def test_mapping_table_accessor(self):
        assert DataModelMapper.mapping_table() == list(TABLE1_MAPPING)


class TestImport:
    def test_import_creates_project(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        assert project.name == "asiclib"
        assert {c.name for c in project.cells()} == {"alu", "decoder"}

    def test_fmcad_cell_becomes_cell_version(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        cell = project.cell("alu")
        assert len(cell.versions()) == 1

    def test_cellviews_become_design_objects(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        variant = (
            project.cell("alu").latest_version().variant(WORKING_VARIANT)
        )
        dobjs = variant.design_objects()
        assert [d.name for d in dobjs] == ["alu/schematic"]
        assert dobjs[0].viewtype_name == "schematic"

    def test_every_version_imported_with_payload(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        variant = (
            project.cell("alu").latest_version().variant(WORKING_VARIANT)
        )
        dobj = variant.design_objects()[0]
        assert len(dobj.versions()) == 2
        original = library.read_version(library.cellview("alu", "schematic"), 1)
        assert hybrid.jcf.db.get(dobj.version(1).oid).payload == original

    def test_import_charges_copy_costs(self, hybrid, library):
        before = hybrid.clock.elapsed_by_category().get("copy", 0.0)
        hybrid.mapper.import_library(library, "alice")
        assert hybrid.clock.elapsed_by_category()["copy"] > before

    def test_fmcad_versions_tagged_with_jcf_oid(self, hybrid, library):
        hybrid.mapper.import_library(library, "alice")
        version = library.cellview("alu", "schematic").version(1)
        oid = version.properties.get("jcf_oid")
        assert oid is not None and hybrid.jcf.db.exists(oid)

    def test_reimport_rejected(self, hybrid, library):
        hybrid.mapper.import_library(library, "alice")
        with pytest.raises(MappingError):
            hybrid.mapper.import_library(library, "alice")

    def test_coverage_counts_all_rows(self, hybrid, library):
        hybrid.mapper.import_library(library, "alice")
        coverage = hybrid.mapper.coverage()
        assert coverage["Project"] == 1
        assert coverage["CellVersion"] == 2
        assert coverage["DesignObject"] == 2
        assert coverage["DesignObjectVersion"] == 4

    def test_jcf_oid_lookup(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        oid = hybrid.mapper.jcf_oid_for("Library", "asiclib")
        assert oid == project.oid


class TestExport:
    def test_round_trip_preserves_structure_and_data(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        exported = hybrid.mapper.export_project(project)
        assert {c.name for c in exported.cells()} == {"alu", "decoder"}
        original = library.read_version(
            library.cellview("alu", "schematic")
        )
        round_tripped = exported.read_version(
            exported.cellview("alu", "schematic")
        )
        assert round_tripped == original

    def test_export_keeps_version_count(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        exported = hybrid.mapper.export_project(project)
        assert len(exported.cellview("alu", "schematic").versions) == 2

    def test_export_drops_non_working_variants(self, hybrid, library):
        """FMCAD's one-level model cannot hold extra variants (§3.2)."""
        project = hybrid.mapper.import_library(library, "alice")
        cell_version = project.cell("alu").latest_version()
        extra = cell_version.create_variant("experiment")
        dobj = extra.create_design_object("alu/layout", "layout")
        dobj.new_version(b"experimental layout")
        exported = hybrid.mapper.export_project(project)
        assert not exported.cell("alu").has_cellview("layout")

    def test_export_custom_name(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        exported = hybrid.mapper.export_project(project, "backup")
        assert exported.name == "backup"


class TestConfigurationMirroring:
    def make_flowed(self, hybrid):
        from tests.conftest import (
            build_inverter_editor_fn,
            inverter_testbench_fn,
            simple_layout_fn,
        )

        library = hybrid.fmcad.create_library("cfglib")
        library.create_cell("cell")
        project = hybrid.adopt_library("alice", library, "cfgproj")
        hybrid.jcf.resources.assign_team_to_project(
            "admin", "team1", project.oid
        )
        hybrid.prepare_cell("alice", project, "cell", team_name="team1")
        hybrid.run_schematic_entry(
            "alice", project, library, "cell", build_inverter_editor_fn(2)
        )
        hybrid.run_simulation(
            "alice", project, library, "cell", inverter_testbench_fn(2)
        )
        hybrid.run_layout_entry(
            "alice", project, library, "cell", simple_layout_fn()
        )
        return project, library

    def test_jcf_configuration_mirrors_into_fmcad(self, hybrid):
        from repro.core.mapping import WORKING_VARIANT

        project, library = self.make_flowed(hybrid)
        cell_version = project.cell("cell").latest_version()
        config = hybrid.jcf.configurations.create(cell_version, "tapeout")
        variant = cell_version.variant(WORKING_VARIANT)
        for dobj in variant.design_objects():
            hybrid.jcf.configurations.pin(config, dobj.latest_version())

        fmcad_config = hybrid.mapper.export_configuration(config, library)
        assert fmcad_config.name == "tapeout"
        # one pin per design object (schematic, symbol, simulation, layout)
        assert len(fmcad_config) == 4
        assert fmcad_config.validate() == []
        # the pinned versions are exactly the byte-identical mirrors
        for pinned in fmcad_config.resolve():
            oid = pinned.properties.get("jcf_oid")
            assert hybrid.jcf.db.get(oid).payload == pinned.read_data()

    def test_unmirrored_version_rejected(self, hybrid):
        from repro.core.mapping import WORKING_VARIANT
        from repro.errors import MappingError

        project, library = self.make_flowed(hybrid)
        cell_version = project.cell("cell").latest_version()
        config = hybrid.jcf.configurations.create(cell_version, "broken")
        variant = cell_version.variant(WORKING_VARIANT)
        # a design object created purely on the JCF side has no mirror
        orphan = variant.create_design_object("jcf_only", "netlist")
        orphan_version = orphan.new_version(b"jcf only data")
        hybrid.jcf.configurations.pin(config, orphan_version)
        with pytest.raises(MappingError, match="no FMCAD mirror"):
            hybrid.mapper.export_configuration(config, library)
