"""Unit tests for the combined desktop UI accounting (Section 3.4)."""

import pytest

from repro.clock import SimClock
from repro.core.desktop import (
    CombinedDesktop,
    FMCAD_SCHEMATIC,
    JCF_DESKTOP,
)


@pytest.fixture
def desktop():
    return CombinedDesktop(SimClock())


class TestTaskScoping:
    def test_begin_end_produces_report(self, desktop):
        desktop.begin_task("t1")
        report = desktop.end_task()
        assert report.task_name == "t1"
        assert report.interactions == 0

    def test_nested_tasks_rejected(self, desktop):
        desktop.begin_task("t1")
        with pytest.raises(RuntimeError):
            desktop.begin_task("t2")

    def test_end_without_begin_rejected(self, desktop):
        with pytest.raises(RuntimeError):
            desktop.end_task()

    def test_interact_outside_task_rejected(self, desktop):
        with pytest.raises(RuntimeError):
            desktop.interact()

    def test_enter_outside_task_rejected(self, desktop):
        with pytest.raises(RuntimeError):
            desktop.enter(JCF_DESKTOP)


class TestContextAccounting:
    def test_first_context_is_not_a_switch(self, desktop):
        desktop.begin_task("t")
        desktop.enter(JCF_DESKTOP)
        report = desktop.end_task()
        assert report.context_switches == 0
        assert report.distinct_contexts == 1

    def test_switches_counted_and_charged(self, desktop):
        desktop.begin_task("t")
        desktop.enter(JCF_DESKTOP)
        desktop.enter(FMCAD_SCHEMATIC)
        desktop.enter(JCF_DESKTOP)
        report = desktop.end_task()
        assert report.context_switches == 2
        assert report.distinct_contexts == 2
        assert desktop.clock.elapsed_by_category()["ui_switch"] > 0

    def test_reentering_same_context_is_free(self, desktop):
        desktop.begin_task("t")
        desktop.enter(JCF_DESKTOP)
        desktop.enter(JCF_DESKTOP)
        assert desktop.end_task().context_switches == 0

    def test_interactions_counted(self, desktop):
        desktop.begin_task("t")
        desktop.enter(JCF_DESKTOP)
        desktop.interact(3)
        desktop.interact()
        assert desktop.end_task().interactions == 4

    def test_interact_requires_context(self, desktop):
        desktop.begin_task("t")
        with pytest.raises(RuntimeError):
            desktop.interact()

    def test_new_task_resets_context(self, desktop):
        desktop.begin_task("t1")
        desktop.enter(JCF_DESKTOP)
        desktop.end_task()
        desktop.begin_task("t2")
        desktop.enter(FMCAD_SCHEMATIC)  # fresh seat: not a switch
        assert desktop.end_task().context_switches == 0


class TestSummary:
    def test_summary_by_task(self, desktop):
        desktop.begin_task("hybrid_run")
        desktop.enter(JCF_DESKTOP)
        desktop.interact(2)
        desktop.enter(FMCAD_SCHEMATIC)
        desktop.interact(5)
        desktop.end_task()
        summary = desktop.summary()
        assert summary["hybrid_run"] == {
            "contexts": 2,
            "switches": 1,
            "interactions": 7,
        }
