"""Unit tests for the coupled cross-probing service."""

import pytest

from repro.core.crossprobe import CrossProbeService
from repro.errors import ITCError
from tests.conftest import build_inverter_editor_fn, simple_layout_fn
from tests.conftest import inverter_testbench_fn


@pytest.fixture
def probed(adopted_cell):
    """Cell with schematic + layout and an open cross-probe pair."""
    hybrid, project, library, cell = adopted_cell
    hybrid.run_schematic_entry(
        "alice", project, library, cell, build_inverter_editor_fn(2)
    )
    hybrid.run_simulation(
        "alice", project, library, cell, inverter_testbench_fn(2)
    )
    hybrid.run_layout_entry(
        "alice", project, library, cell, simple_layout_fn()
    )
    service = CrossProbeService(hybrid.fmcad, library, cell, "alice")
    yield hybrid, service, cell
    service.close()


class TestSchematicToLayout:
    def test_probe_highlights_extracted_geometry(self, probed):
        hybrid, service, cell = probed
        result = service.probe_from_schematic("a")
        assert result.delivered
        assert result.resolved
        assert result.highlighted_shapes >= 1
        assert "a" in service.highlights_in_layout()

    def test_probe_of_unlabelled_net_unresolved(self, probed):
        hybrid, service, cell = probed
        # n0 exists in the schematic but has no layout label
        result = service.probe_from_schematic("n0")
        assert result.delivered
        assert not result.resolved
        assert result.highlighted_shapes == 0

    def test_unknown_net_rejected(self, probed):
        _, service, _ = probed
        with pytest.raises(ITCError):
            service.probe_from_schematic("ghost_net")


class TestLayoutToSchematic:
    def test_reverse_probe_resolves(self, probed):
        hybrid, service, cell = probed
        result = service.probe_from_layout("y")
        assert result.delivered and result.resolved
        assert "y" in service.highlights_in_schematic()

    def test_unextracted_net_rejected(self, probed):
        _, service, _ = probed
        with pytest.raises(ITCError):
            service.probe_from_layout("n0")


class TestGuardMediation:
    def test_probe_by_non_holder_vetoed(self, probed):
        """The consistency guard vetoes probes into reserved cells."""
        hybrid, _, cell = probed
        # bob opens his own probing pair on alice's reserved cell
        library = hybrid.fmcad.library("chiplib")
        bob_service = CrossProbeService(hybrid.fmcad, library, cell, "bob")
        try:
            result = bob_service.probe_from_schematic("a")
            assert not result.delivered
            assert result.highlighted_shapes == 0
        finally:
            bob_service.close()

    def test_probe_after_publication_passes_for_all(self, probed):
        hybrid, _, cell = probed
        project = hybrid.jcf.desktop.find_project("chipA")
        cell_version = project.cell(cell).latest_version()
        hybrid.jcf.desktop.publish_cell_version("alice", cell_version)
        library = hybrid.fmcad.library("chiplib")
        bob_service = CrossProbeService(hybrid.fmcad, library, cell, "bob")
        try:
            result = bob_service.probe_from_schematic("a")
            assert result.delivered
        finally:
            bob_service.close()


class TestLifecycle:
    def test_close_unsubscribes_and_closes_sessions(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        service = CrossProbeService(hybrid.fmcad, library, cell, "alice")
        service.close()
        assert service.schematic_session.closed
        assert service.layout_session.closed
        assert hybrid.fmcad.bus.subscribers("crossprobe") == []

    def test_probe_without_schematic_raises(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        service = CrossProbeService(hybrid.fmcad, library, cell, "alice")
        try:
            with pytest.raises(ITCError):
                service.probe_from_schematic("a")
        finally:
            service.close()
