"""Delta harvest: unchanged tool outputs cross the boundary for free.

The incremental-harvest optimisation diffs each staged output against
the parent version's content digest and re-interns only changed views.
These tests pin its contract: the resulting database is byte-identical
to a full harvest of the same flow (the optimisation is observationally
invisible), the simulated copy-in/copy-out cost drops, and the hit /
miss counters surface through ``HybridFramework.stats()``.
"""

import json

from repro.core.coupling import HybridFramework
from repro.oms.snapshot import dump_snapshot
from tests.conftest import build_inverter_editor_fn, inverter_testbench_fn


def idempotent_edit(editor):
    if not editor.schematic.ports():
        build_inverter_editor_fn()(editor)


def build_environment(root, delta_harvest):
    hybrid = HybridFramework(root)
    for wrapper in (
        hybrid.schematic_entry,
        hybrid.digital_simulation,
        hybrid.layout_entry,
    ):
        wrapper.delta_harvest = delta_harvest
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    return hybrid


def _scrub_times(value):
    if isinstance(value, dict):
        return {
            key: 0.0 if key.endswith("_ms") else _scrub_times(item)
            for key, item in value.items()
            if key != "sha256"  # self-checksum covers the raw ms stamps
        }
    if isinstance(value, list):
        return [_scrub_times(item) for item in value]
    return value


def normalized_dump(hybrid):
    """Snapshot bytes made root- and simulated-time-independent.

    Harvested versions record the absolute FMCAD version-file path, and
    activity records carry simulated ``*_ms`` stamps — which delta
    harvest changes by design (unchanged views cost a metadata op, not a
    copy).  Everything else — payloads, digests, attributes, links —
    must match byte for byte between delta and full harvest.
    """
    dump = dump_snapshot(hybrid.jcf.db)
    dump = dump.replace(str(hybrid.root).encode(), b"<root>")
    return json.dumps(_scrub_times(json.loads(dump)), sort_keys=True)


def run_flow_twice(hybrid):
    """Design entry, then a rerun that reproduces the bytes verbatim."""
    project = hybrid.jcf.project("chipA")
    library = hybrid.fmcad.library("chiplib")
    for _ in range(2):
        result = hybrid.run_schematic_entry(
            "alice", project, library, "inv2", idempotent_edit
        )
        assert result.success
    return hybrid


class TestEquivalence:
    def test_delta_and_full_harvest_agree_byte_for_byte(self, tmp_path):
        delta = run_flow_twice(
            build_environment(tmp_path / "delta", delta_harvest=True)
        )
        full = run_flow_twice(
            build_environment(tmp_path / "full", delta_harvest=False)
        )
        assert normalized_dump(delta) == normalized_dump(full)
        assert delta.audit().clean
        assert full.audit().clean

    def test_simulation_results_also_agree(self, tmp_path):
        def run(root, delta_harvest):
            hybrid = build_environment(root, delta_harvest)
            project = hybrid.jcf.project("chipA")
            library = hybrid.fmcad.library("chiplib")
            hybrid.run_schematic_entry(
                "alice", project, library, "inv2", idempotent_edit
            )
            hybrid.run_simulation(
                "alice", project, library, "inv2", inverter_testbench_fn()
            )
            return normalized_dump(hybrid)

        assert run(tmp_path / "delta", True) == run(tmp_path / "full", False)


class TestCosts:
    def test_rerun_of_identical_output_is_a_delta_hit(self, tmp_path):
        hybrid = run_flow_twice(
            build_environment(tmp_path / "env", delta_harvest=True)
        )
        assert hybrid.schematic_entry.harvest_delta_hits > 0
        assert hybrid.schematic_entry.harvest_full_imports > 0

    def test_full_mode_never_counts_delta_hits(self, tmp_path):
        hybrid = run_flow_twice(
            build_environment(tmp_path / "env", delta_harvest=False)
        )
        assert hybrid.schematic_entry.harvest_delta_hits == 0
        assert hybrid.schematic_entry.harvest_full_imports >= 2

    def test_delta_harvest_charges_less_copy_time(self, tmp_path):
        delta = run_flow_twice(
            build_environment(tmp_path / "delta", delta_harvest=True)
        )
        full = run_flow_twice(
            build_environment(tmp_path / "full", delta_harvest=False)
        )
        delta_copy = delta.clock.elapsed_by_category().get("copy", 0.0)
        full_copy = full.clock.elapsed_by_category().get("copy", 0.0)
        assert delta_copy < full_copy

    def test_counters_surface_in_stats(self, tmp_path):
        hybrid = run_flow_twice(
            build_environment(tmp_path / "env", delta_harvest=True)
        )
        harvest = hybrid.stats()["harvest"]
        assert harvest["delta_hits"] == (
            hybrid.schematic_entry.harvest_delta_hits
        )
        assert harvest["full_imports"] >= 1
