"""Two-phase recovery: intents, compensation, roll-forward/back, audit."""

import pytest

from repro.core.mapping import WORKING_VARIANT
from repro.errors import CouplingError
from repro.faults import CrashFault, FaultPlan, TransientFault, inject
from repro.jcf.model import (
    INTENT_ABORTED,
    INTENT_DONE,
    INTENT_PENDING,
)
from tests.conftest import (
    build_inverter_editor_fn,
    inverter_testbench_fn,
)


def run_schematic(hybrid, project, library, cell):
    return hybrid.run_schematic_entry(
        "alice", project, library, cell, build_inverter_editor_fn()
    )


class TestIntentJournal:
    def test_begin_finish_lifecycle(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        journal = hybrid.intents
        oid = journal.begin(
            "schematic_entry", "alice", library.name, cell,
            fmcad_base=[("schematic", 0)],
        )
        (pending,) = journal.pending()
        assert pending.oid == oid
        assert pending.get("state") == INTENT_PENDING
        assert pending.get("fmcad_base") == [["schematic", 0]]
        journal.finish(oid, INTENT_DONE, note="done")
        assert journal.pending() == []
        assert hybrid.jcf.db.get(oid).get("state") == INTENT_DONE

    def test_begin_refuses_open_transaction(self, adopted_cell):
        hybrid, _project, library, cell = adopted_cell
        with hybrid.jcf.db.transaction():
            with pytest.raises(CouplingError, match="outside transactions"):
                hybrid.intents.begin(
                    "schematic_entry", "alice", library.name, cell
                )

    def test_finish_rejects_non_terminal_state(self, adopted_cell):
        hybrid, _project, library, cell = adopted_cell
        oid = hybrid.intents.begin(
            "schematic_entry", "alice", library.name, cell
        )
        with pytest.raises(CouplingError, match="terminal"):
            hybrid.intents.finish(oid, INTENT_PENDING)

    def test_successful_run_settles_intent_done(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        result = run_schematic(hybrid, project, library, cell)
        assert result.success
        assert hybrid.intents.pending() == []
        states = [i.get("state") for i in hybrid.intents.all()]
        assert states == [INTENT_DONE]

    def test_failed_run_settles_intent_aborted(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell

        def broken_edit(editor):
            raise RuntimeError("tool died")

        with pytest.raises(RuntimeError):
            hybrid.run_schematic_entry(
                "alice", project, library, cell, broken_edit
            )
        states = [i.get("state") for i in hybrid.intents.all()]
        assert states == [INTENT_ABORTED]


class TestTicketLeakRegression:
    """A checkin failure must cancel the ticket, not leak it open."""

    def test_checkin_failure_cancels_ticket_and_drops_version(
        self, adopted_cell
    ):
        hybrid, project, library, cell = adopted_cell
        # a transient at checkout.after_checkin dies after the version
        # file is written but before the ticket closes — the worst spot
        plan = FaultPlan.transient("checkout.after_checkin", times=5)
        with inject(plan):
            with pytest.raises(TransientFault):
                run_schematic(hybrid, project, library, cell)
        assert hybrid.fmcad.checkouts.active_tickets() == []
        # the half-landed version was dropped with the ticket
        assert library.cellview(cell, "schematic").versions == []
        # and the environment is clean enough to rerun immediately
        assert run_schematic(hybrid, project, library, cell).success
        assert hybrid.audit().clean

    def test_failure_after_checkin_compensates_closed_ticket_version(
        self, adopted_cell
    ):
        hybrid, project, library, cell = adopted_cell
        plan = FaultPlan.transient("harvest.after_checkin", times=5)
        with inject(plan):
            with pytest.raises(TransientFault):
                run_schematic(hybrid, project, library, cell)
        assert hybrid.fmcad.checkouts.active_tickets() == []
        assert library.cellview(cell, "schematic").versions == []
        assert hybrid.audit().clean


class TestMultiViewCompensation:
    """Satellite: all views of one run land in one OMS transaction."""

    def test_second_view_failure_rolls_back_first_view(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        # schematic entry emits schematic then symbol; fail the symbol's
        # checkin (hit 2) after the schematic's (hit 1) succeeded
        plan = FaultPlan.transient(
            "harvest.after_checkin", on_hit=2, times=5
        )
        with inject(plan):
            with pytest.raises(TransientFault):
                run_schematic(hybrid, project, library, cell)
        # neither view survived: FMCAD checkins compensated, OMS rolled back
        assert library.cellview(cell, "schematic").versions == []
        assert library.cellview(cell, "symbol").versions == []
        variant = (
            project.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        for dobj in variant.design_objects():
            assert dobj.latest_version() is None
        assert hybrid.audit().clean
        assert run_schematic(hybrid, project, library, cell).success


class TestRollback:
    def test_crash_mid_harvest_rolls_back_fmcad_version(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with inject(FaultPlan.crash("harvest.after_checkin")) as plan:
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        assert plan.crash_fired
        # the wreckage: open session, running execution, pending intent,
        # an FMCAD version with no OMS counterpart (the import aborted)
        assert hybrid.fmcad.sessions() != []
        assert len(hybrid.intents.pending()) == 1
        assert len(library.cellview(cell, "schematic").versions) == 1
        assert not hybrid.audit().clean

        report = hybrid.recover()
        assert report.deleted_fmcad_versions  # rolled back
        assert report.closed_sessions
        assert report.failed_executions
        assert report.aborted_intents and not report.completed_intents
        assert library.cellview(cell, "schematic").versions == []
        assert hybrid.audit().clean
        # the flow is runnable again after recovery
        assert run_schematic(hybrid, project, library, cell).success

    def test_crash_with_ticket_open_cancels_and_rolls_back(
        self, adopted_cell
    ):
        hybrid, project, library, cell = adopted_cell
        # checkout.after_checkin dies after the version file is written
        # but before the ticket closes: the worst of both worlds
        with inject(FaultPlan.crash("checkout.after_checkin")):
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        assert hybrid.fmcad.checkouts.active_tickets() != []
        report = hybrid.recover()
        assert report.cancelled_tickets
        assert report.deleted_fmcad_versions
        assert hybrid.fmcad.checkouts.active_tickets() == []
        assert library.cellview(cell, "schematic").versions == []
        assert hybrid.audit().clean
        assert run_schematic(hybrid, project, library, cell).success

    def test_crash_holding_ticket_only(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with inject(FaultPlan.crash("harvest.after_checkout")):
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        assert hybrid.fmcad.checkouts.active_tickets() != []
        report = hybrid.recover()
        assert report.cancelled_tickets
        assert not report.deleted_fmcad_versions  # nothing was written
        assert hybrid.audit().clean
        assert run_schematic(hybrid, project, library, cell).success


class TestRollForward:
    def test_crash_before_tag_repairs_cross_tag(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with inject(FaultPlan.crash("harvest.before_tag")):
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        # both sides committed; only the cross-tags are missing
        cellview = library.cellview(cell, "schematic")
        assert len(cellview.versions) == 1
        assert cellview.versions[0].properties.get("jcf_oid") is None

        report = hybrid.recover()
        assert report.repaired_tags
        assert not report.deleted_fmcad_versions
        assert report.completed_intents and not report.aborted_intents
        tag = cellview.versions[0].properties.get("jcf_oid")
        assert tag is not None and hybrid.jcf.db.exists(tag)
        assert hybrid.audit().clean

    def test_crash_before_finish_keeps_outputs(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with inject(FaultPlan.crash("run.before_finish")):
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        report = hybrid.recover()
        # outputs were durable and tagged: nothing dropped, intent done
        assert not report.deleted_fmcad_versions
        assert report.completed_intents
        assert report.failed_executions  # the derivation record was lost
        assert len(library.cellview(cell, "schematic").versions) == 1
        assert hybrid.audit().clean


class TestRecoveryIdempotence:
    def crash_and_recover(self, hybrid, project, library, cell, point):
        with inject(FaultPlan.crash(point)):
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        return hybrid.recover()

    @pytest.mark.parametrize(
        "point", ["harvest.after_checkin", "harvest.before_tag"]
    )
    def test_second_recovery_is_noop(self, adopted_cell, point):
        hybrid, project, library, cell = adopted_cell
        first = self.crash_and_recover(hybrid, project, library, cell, point)
        assert not first.empty()
        assert hybrid.audit().clean
        before = hybrid.jcf.save_snapshot()
        second = hybrid.recover()
        assert second.empty()
        assert hybrid.jcf.save_snapshot() == before
        assert hybrid.audit().clean

    def test_recovery_on_healthy_store_is_noop(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        assert run_schematic(hybrid, project, library, cell).success
        before = hybrid.jcf.save_snapshot()
        report = hybrid.recover()
        assert report.empty()
        assert hybrid.jcf.save_snapshot() == before
        assert hybrid.audit().clean

    def test_recovery_refuses_open_transaction(self, adopted_cell):
        hybrid, _project, _library, _cell = adopted_cell
        with hybrid.jcf.db.transaction():
            with pytest.raises(CouplingError, match="transaction"):
                hybrid.recover()


class TestReservationSweep:
    def test_orphan_reservation_released(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        cell_version = project.cell(cell).latest_version()
        # bypass the workspace protocol: publish directly, leaving the
        # 'reserves' link dangling on a published version
        cell_version.publish()
        assert not hybrid.audit().clean
        report = hybrid.recover()
        assert report.released_reservations
        assert hybrid.audit().clean
        assert hybrid.recover().empty()


class TestStagingSweep:
    def test_crashed_staging_write_reclaimed(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        assert run_schematic(hybrid, project, library, cell).success
        # a crash in the staging.write window leaves the file on disk
        # but unrecorded
        hybrid.jcf.staging.clear()
        with inject(FaultPlan.crash("staging.write")):
            with pytest.raises(CrashFault):
                hybrid.run_simulation(
                    "alice", project, library, cell,
                    inverter_testbench_fn(),
                )
        orphans = hybrid.jcf.staging.orphan_files()
        assert orphans
        report = hybrid.recover()
        assert report.reclaimed_staging_files
        assert hybrid.jcf.staging.orphan_files() == []
        assert hybrid.audit().clean


class TestAuditDetection:
    def test_audit_names_each_category_of_wreckage(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with inject(FaultPlan.crash("checkout.after_checkin")):
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        categories = set(hybrid.audit().by_category())
        assert "dangling-ticket" in categories
        assert "leaked-session" in categories
        assert "stale-execution" in categories
        assert "pending-intent" in categories
        assert "orphan-version" in categories

    def test_audit_render_mentions_counts(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        assert hybrid.audit().render() == "audit: clean"
        with inject(FaultPlan.crash("checkout.after_checkin")):
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        text = hybrid.audit().render()
        assert "finding(s)" in text
        assert "dangling-ticket" in text

    def test_recovery_republishes_faithful_meta(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with inject(FaultPlan.crash("harvest.after_checkin")):
            with pytest.raises(CrashFault):
                run_schematic(hybrid, project, library, cell)
        hybrid.recover()
        # the dropped version is gone from .meta too — recovery reflushed
        assert library.verify_meta() == []
