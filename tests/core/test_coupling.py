"""Unit tests for the HybridFramework facade."""

import pytest

from repro.core.coupling import HybridFramework
from repro.errors import NonIsomorphicHierarchyError


class TestConstruction:
    def test_shared_clock(self, hybrid):
        assert hybrid.jcf.clock is hybrid.clock
        assert hybrid.fmcad.clock is hybrid.clock

    def test_itc_interceptor_installed(self, hybrid):
        assert hybrid.fmcad.bus._interceptors

    def test_strict_mode_default(self, hybrid):
        assert hybrid.hierarchy.jcf3_strict

    def test_future_mode_flag(self, tmp_path):
        future = HybridFramework(tmp_path / "f", jcf3_strict=False)
        assert not future.hierarchy.jcf3_strict

    def test_procedural_interface_flag(self, tmp_path):
        ablated = HybridFramework(
            tmp_path / "a", enable_procedural_interface=True
        )
        ablated.jcf.db.procedural_interface()  # must not raise


class TestAdoptLibrary:
    def test_adopt_maps_and_submits(self, hybrid):
        library = hybrid.fmcad.create_library("lib")
        library.create_cell("c1")
        project = hybrid.adopt_library("alice", library, "proj")
        assert project.name == "proj"
        assert project.cell("c1")

    def test_adopt_without_hierarchy_submission(self, hybrid):
        library = hybrid.fmcad.create_library("lib")
        library.create_cell("c1")
        project = hybrid.adopt_library(
            "alice", library, submit_hierarchy=False
        )
        assert hybrid.jcf.desktop.declared_hierarchy(project) == []


class TestPrepareCell:
    def make_adopted(self, hybrid):
        library = hybrid.fmcad.create_library("lib")
        library.create_cell("c1")
        project = hybrid.adopt_library("alice", library)
        hybrid.jcf.resources.assign_team_to_project(
            "admin", "team1", project.oid
        )
        return project

    def test_prepare_attaches_and_reserves(self, hybrid):
        project = self.make_adopted(hybrid)
        cell_version = hybrid.prepare_cell(
            "alice", project, "c1", team_name="team1"
        )
        assert cell_version.attached_flow().get("name") == "jcf_fmcad_flow"
        assert cell_version.attached_team().get("name") == "team1"
        assert hybrid.jcf.workspaces.can_write("alice", cell_version)

    def test_prepare_published_cell_creates_new_version(self, hybrid):
        project = self.make_adopted(hybrid)
        first = hybrid.prepare_cell("alice", project, "c1",
                                    team_name="team1")
        hybrid.jcf.workspaces.publish("alice", first)
        second = hybrid.prepare_cell("alice", project, "c1",
                                     team_name="team1")
        assert second.number == first.number + 1

    def test_prepare_cell_without_versions_creates_one(self, hybrid):
        project = self.make_adopted(hybrid)
        extra = project.create_cell("freshcell")
        assert extra.latest_version() is None
        cell_version = hybrid.prepare_cell(
            "alice", project, "freshcell", team_name="team1"
        )
        assert cell_version.number == 1


class TestStats:
    def test_stats_shape(self, hybrid):
        stats = hybrid.stats()
        assert "clock_ms" in stats
        assert "mapping_coverage" in stats
        assert stats["hierarchy_rejections"] == 0
