"""Unit tests for the design consultant."""

import pytest

from repro.core.consultant import DesignConsultant
from repro.workloads.scripts import (
    inverter_chain_bench,
    inverter_chain_editor,
    labelled_strap_layout,
)


@pytest.fixture
def consultant_env(adopted_cell):
    hybrid, project, library, cell = adopted_cell
    consultant = DesignConsultant(hybrid.jcf, guard=hybrid.guard)
    return hybrid, project, library, cell, consultant


class TestFlowAdvice:
    def test_fresh_cell_suggests_next_activity(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        advice = consultant.advise(project, library)
        flow_hints = [a for a in advice if a.topic == "flow"]
        assert any("schematic_entry" in a.message for a in flow_hints)

    def test_failed_activity_is_a_blocker(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        hybrid.run_schematic_entry(
            "alice", project, library, cell, inverter_chain_editor(2)
        )

        def wrong_bench(tb):
            tb.drive(0, "a", "0")
            tb.expect(40, "y", "1")  # wrong for a buffer

        hybrid.run_simulation("alice", project, library, cell, wrong_bench)
        advice = consultant.advise(project, library)
        blockers = [a for a in advice if a.severity == "blocker"]
        assert any("digital_simulation" in a.message for a in blockers)
        # blockers come first
        assert advice[0].severity == "blocker"

    def test_cell_without_version_gets_hint(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        project.create_cell("unstarted")
        advice = consultant.advise(project, library)
        assert any(
            a.cell == "unstarted" and "no cell version" in a.message
            for a in advice
        )


class TestQualityAdvice:
    def test_erc_violations_surface(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env

        def shorted(editor):
            editor.add_port("a", "in")
            editor.add_port("y", "out")
            for name in ("g1", "g2"):
                editor.place_gate(name, "NOT", 1)
                editor.wire("a", name, "in0")
                editor.wire("y", name, "out")  # two drivers on y

        hybrid.run_schematic_entry("alice", project, library, cell,
                                   shorted)
        advice = consultant.advise(project, library)
        assert any(
            a.topic == "erc" and "multiple_drivers" in a.message
            for a in advice
        )

    def test_timing_hint_reports_critical_path(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        hybrid.run_schematic_entry(
            "alice", project, library, cell, inverter_chain_editor(3)
        )
        advice = consultant.advise(project, library)
        timing = [a for a in advice if a.topic == "timing"]
        assert len(timing) == 1
        assert "critical delay 3" in timing[0].message  # 3 NOTs x 1

    def test_consistency_findings_included(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        hybrid.run_schematic_entry(
            "alice", project, library, cell, inverter_chain_editor(2)
        )
        version = library.cellview(cell, "schematic").version(1)
        version.path.write_bytes(b"corrupted")
        advice = consultant.advise(project, library)
        assert any(a.topic == "consistency" for a in advice)


class TestRendering:
    def test_render_empty(self):
        assert "nothing to report" in DesignConsultant.render([])

    def test_render_lists_items(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        text = DesignConsultant.render(consultant.advise(project, library))
        assert text.startswith("design consultant report:")
        assert "[hint]" in text


class TestScripts:
    """The shared scenario scripts are themselves correct."""

    def test_chain_editor_and_bench_agree(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        for stages in (1, 2, 3):
            cell_name = f"chain{stages}"
            library.create_cell(cell_name)
            new_cell = project.create_cell(cell_name)
            hybrid.prepare_cell("alice", project, cell_name,
                                team_name="team1")
            assert hybrid.run_schematic_entry(
                "alice", project, library, cell_name,
                inverter_chain_editor(stages),
            ).success
            assert hybrid.run_simulation(
                "alice", project, library, cell_name,
                inverter_chain_bench(stages),
            ).success, stages

    def test_strap_layout_is_drc_clean(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        hybrid.run_schematic_entry(
            "alice", project, library, cell, inverter_chain_editor(2)
        )
        hybrid.run_simulation(
            "alice", project, library, cell, inverter_chain_bench(2)
        )
        result = hybrid.run_layout_entry(
            "alice", project, library, cell,
            labelled_strap_layout(["a", "y"]),
        )
        assert result.success
        assert "waived" not in result.details

    def test_script_validation(self):
        from repro.workloads.scripts import (
            subcell_wrapper_editor,
        )

        with pytest.raises(ValueError):
            inverter_chain_editor(0)
        with pytest.raises(ValueError):
            labelled_strap_layout([])
        with pytest.raises(ValueError):
            subcell_wrapper_editor([])


class TestFaultCoverageAdvice:
    def test_ungraded_simulation_gets_hint(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        hybrid.run_schematic_entry(
            "alice", project, library, cell, inverter_chain_editor(2)
        )
        hybrid.run_simulation(
            "alice", project, library, cell, inverter_chain_bench(2)
        )
        advice = consultant.advise(project, library)
        assert any(
            a.topic == "simulation" and "not graded" in a.message
            for a in advice
        )

    def test_graded_full_coverage_is_silent(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        hybrid.run_schematic_entry(
            "alice", project, library, cell, inverter_chain_editor(2)
        )
        result = hybrid.run_simulation(
            "alice", project, library, cell, inverter_chain_bench(2),
            grade_coverage=True,
        )
        assert "fault coverage" in result.details
        advice = consultant.advise(project, library)
        assert not any(a.topic == "simulation" for a in advice)

    def test_weak_patterns_draw_a_warning(self, consultant_env):
        hybrid, project, library, cell, consultant = consultant_env
        hybrid.run_schematic_entry(
            "alice", project, library, cell, inverter_chain_editor(2)
        )

        def single_phase(tb):
            tb.drive(0, "a", "0")
            tb.expect(40, "y", "0")

        hybrid.run_simulation(
            "alice", project, library, cell, single_phase,
            grade_coverage=True,
        )
        advice = consultant.advise(project, library)
        warnings = [a for a in advice if a.topic == "simulation"]
        assert warnings and "fault coverage only" in warnings[0].message
