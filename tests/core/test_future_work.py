"""Unit tests for the paper's future-work extensions.

Each Section 3.x ends with a limitation and an outlook; the reproduction
implements both sides.  These tests cover the extension flags:

* cross-project data sharing (Section 3.1 outlook);
* the procedural hierarchy interface (Section 3.3 outlook);
* (the OMS procedural interface and non-isomorphic hierarchies are
  covered in test_database.py / test_hierarchy.py.)
"""

import pytest

from repro.core import HybridFramework
from repro.errors import CrossProjectSharingError, HierarchyError
from repro.jcf.framework import JCFFramework
from tests.conftest import build_inverter_editor_fn


class TestCrossProjectSharing:
    def make_two_projects(self, jcf):
        project_a = jcf.desktop.create_project("alice", "chipA")
        project_b = jcf.desktop.create_project("alice", "chipB")
        top = project_a.create_cell("top")
        shared = project_b.create_cell("shared_ip")
        return top, shared

    def test_default_jcf_forbids_sharing(self, tmp_path):
        jcf = JCFFramework(tmp_path / "jcf")
        jcf.resources.define_user("admin", "alice")
        top, shared = self.make_two_projects(jcf)
        with pytest.raises(CrossProjectSharingError):
            top.add_component(shared)

    def test_extension_allows_read_only_reference(self, tmp_path):
        jcf = JCFFramework(
            tmp_path / "jcf", allow_cross_project_sharing=True
        )
        jcf.resources.define_user("admin", "alice")
        top, shared = self.make_two_projects(jcf)
        top.add_component(shared)
        assert [c.name for c in top.components()] == ["shared_ip"]
        # the foreign cell keeps its owning project
        assert shared.project_oid != top.project_oid

    def test_hybrid_exposes_the_flag(self, tmp_path):
        hybrid = HybridFramework(
            tmp_path / "h", allow_cross_project_sharing=True
        )
        assert hybrid.jcf.db.policy["cross_project_sharing"] is True


@pytest.fixture
def procedural_hybrid(tmp_path):
    hybrid = HybridFramework(
        tmp_path / "proc", enable_hierarchy_procedural_interface=True
    )
    hybrid.jcf.resources.define_user("admin", "alice")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "alice", "team")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("lib")
    library.create_cell("leaf")
    library.create_cell("parent")
    project = hybrid.adopt_library("alice", library, "proj")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)
    hybrid.prepare_cell("alice", project, "leaf", team_name="team")
    hybrid.prepare_cell("alice", project, "parent", team_name="team")
    return hybrid, project, library


class TestProceduralHierarchyInterface:
    def test_disabled_by_default(self, hybrid):
        project = hybrid.jcf.desktop.create_project("alice", "p")
        with pytest.raises(HierarchyError, match="3.0"):
            hybrid.hierarchy.submit_procedurally(project, [("a", "b")])

    def test_tools_pass_hierarchy_automatically(self, procedural_hybrid):
        hybrid, project, library = procedural_hybrid
        hybrid.run_schematic_entry(
            "alice", project, library, "leaf", build_inverter_editor_fn()
        )

        def parent_edit(editor):
            editor.add_port("x", "in")
            editor.add_port("z", "out")
            editor.place_cell("u1", "leaf")
            editor.wire("x", "u1", "a")
            editor.wire("z", "u1", "y")

        interactions_before = hybrid.jcf.desktop.total_interactions()
        hybrid.run_schematic_entry(
            "alice", project, library, "parent", parent_edit
        )
        # the CompOf edge appeared without any extra desktop dialog
        assert hybrid.jcf.desktop.declared_hierarchy(project) == [
            ("parent", "leaf")
        ]
        assert (
            hybrid.jcf.desktop.total_interactions() == interactions_before
        )
        assert hybrid.hierarchy.procedural_edges == 1

    def test_no_drift_under_procedural_interface(self, procedural_hybrid):
        """With tools feeding JCF, metadata never drifts from the files."""
        hybrid, project, library = procedural_hybrid
        hybrid.run_schematic_entry(
            "alice", project, library, "leaf", build_inverter_editor_fn()
        )

        def parent_edit(editor):
            editor.add_port("x", "in")
            editor.add_port("z", "out")
            editor.place_cell("u1", "leaf")
            editor.wire("x", "u1", "a")
            editor.wire("z", "u1", "y")

        hybrid.run_schematic_entry(
            "alice", project, library, "parent", parent_edit
        )
        assert hybrid.hierarchy.verify_against_library(
            project, library
        ) == []

    def test_procedural_submission_idempotent(self, procedural_hybrid):
        hybrid, project, library = procedural_hybrid
        declared = hybrid.hierarchy.submit_procedurally(
            project, [("parent", "leaf")]
        )
        assert declared == 1
        declared_again = hybrid.hierarchy.submit_procedurally(
            project, [("parent", "leaf")]
        )
        assert declared_again == 0
        assert hybrid.hierarchy.procedural_edges == 1

    def test_unknown_cells_skipped(self, procedural_hybrid):
        hybrid, project, library = procedural_hybrid
        declared = hybrid.hierarchy.submit_procedurally(
            project, [("parent", "not_mapped_yet")]
        )
        assert declared == 0
