"""Unit tests for hierarchy extraction, isomorphism, and submission."""

import pytest

from repro.core.hierarchy import (
    HierarchyManager,
    extract_functional_hierarchy,
    extract_physical_hierarchy,
    hierarchies_isomorphic,
)
from repro.errors import HierarchyError, NonIsomorphicHierarchyError
from repro.workloads.designs import (
    DesignSpec,
    generate_design,
    generate_layout_for,
    populate_library,
)


@pytest.fixture
def design():
    return generate_design(
        DesignSpec(name="top", depth=2, fanout=2, leaf_inputs=2, seed=3)
    )


@pytest.fixture
def library(hybrid, design):
    return populate_library(hybrid.fmcad, "genlib", design)


class TestExtraction:
    def test_functional_matches_generator(self, library, design):
        assert extract_functional_hierarchy(library) == design.hierarchy

    def test_physical_matches_functional_when_isomorphic(
        self, library, design
    ):
        functional = extract_functional_hierarchy(library)
        physical = extract_physical_hierarchy(library)
        assert functional == physical
        assert hierarchies_isomorphic(functional, physical)

    def test_cells_without_views_contribute_nothing(self, hybrid):
        library = hybrid.fmcad.create_library("empty")
        library.create_cell("bare")
        assert extract_functional_hierarchy(library) == []
        assert extract_physical_hierarchy(library) == []


class TestIsomorphism:
    def test_disjoint_parents_never_conflict(self):
        functional = [("a", "b")]
        physical = [("c", "d")]
        assert hierarchies_isomorphic(functional, physical)

    def test_same_parent_different_children_conflicts(self):
        functional = [("top", "alu")]
        physical = [("top", "alu_left"), ("top", "alu_right")]
        assert not hierarchies_isomorphic(functional, physical)

    def test_equal_hierarchies_isomorphic(self):
        edges = [("a", "b"), ("b", "c")]
        assert hierarchies_isomorphic(edges, list(edges))


class TestSubmission:
    def test_submission_pays_one_interaction_per_edge(
        self, hybrid, library, design
    ):
        project = hybrid.mapper.import_library(library, "alice")
        submission = hybrid.hierarchy.submit_from_library(
            "alice", project, library
        )
        assert submission.accepted
        assert submission.desktop_interactions == len(design.hierarchy)
        assert (
            hybrid.jcf.desktop.declared_hierarchy(project)
            == design.hierarchy
        )

    def test_submission_requires_mapped_cells(self, hybrid, library):
        project = hybrid.jcf.desktop.create_project("alice", "fresh")
        with pytest.raises(HierarchyError):
            hybrid.hierarchy.submit_from_library("alice", project, library)

    def test_non_isomorphic_rejected_in_jcf3_mode(self, hybrid, design):
        # regenerate the top layout flattening one child away
        design.layouts[design.top_cell] = generate_layout_for(
            design.schematics[design.top_cell], isomorphic=False
        )
        library = populate_library(hybrid.fmcad, "noniso", design)
        project = hybrid.mapper.import_library(library, "alice")
        with pytest.raises(NonIsomorphicHierarchyError):
            hybrid.hierarchy.submit_from_library("alice", project, library)
        assert hybrid.hierarchy.rejections == 1

    def test_future_mode_accepts_non_isomorphic(self, hybrid, design):
        design.layouts[design.top_cell] = generate_layout_for(
            design.schematics[design.top_cell], isomorphic=False
        )
        library = populate_library(hybrid.fmcad, "noniso", design)
        project = hybrid.mapper.import_library(library, "alice")
        future = HierarchyManager(hybrid.jcf.desktop, jcf3_strict=False)
        submission = future.submit_from_library("alice", project, library)
        assert submission.accepted
        assert submission.conflicts  # recorded, not fatal


class TestDriftDetection:
    def test_clean_after_submission(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        hybrid.hierarchy.submit_from_library("alice", project, library)
        assert (
            hybrid.hierarchy.verify_against_library(project, library) == []
        )

    def test_new_instance_without_resubmission_detected(
        self, hybrid, library, design
    ):
        project = hybrid.mapper.import_library(library, "alice")
        hybrid.hierarchy.submit_from_library("alice", project, library)
        # a designer adds an instance behind JCF's back
        from repro.tools.schematic.model import Component, Schematic

        top_view = library.cellview("top", "schematic")
        schematic = Schematic.from_bytes(library.read_version(top_view))
        schematic.add_component(
            Component("sneaky", "CELL", cellref="top_0_0")
        )
        library.write_version(top_view, schematic.to_bytes(), "mallory")
        problems = hybrid.hierarchy.verify_against_library(project, library)
        assert any("top->top_0_0" in p for p in problems)

    def test_stale_declared_edge_detected(self, hybrid, library):
        project = hybrid.mapper.import_library(library, "alice")
        hybrid.hierarchy.submit_from_library("alice", project, library)
        # declare an edge that no design file contains
        hybrid.jcf.desktop.submit_hierarchy(
            "alice", project, [("top_0_0", "top_1_1")]
        )
        problems = hybrid.hierarchy.verify_against_library(project, library)
        assert any("declared in JCF but absent" in p for p in problems)
