"""Unit tests for black-box integration and the FPGA flow."""

import pytest

from repro.core import HybridFramework
from repro.core.integration import (
    BlackBoxToolWrapper,
    IntegrationLevel,
)
from repro.errors import EncapsulationError, FlowOrderError
from repro.jcf.flows import fpga_flow
from tests.conftest import build_inverter_editor_fn


@pytest.fixture
def fpga_env(tmp_path):
    hybrid = HybridFramework(tmp_path / "fpga")
    hybrid.jcf.resources.define_user("admin", "alice")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "alice", "team")
    hybrid.register_flow(fpga_flow())
    library = hybrid.fmcad.create_library("fpgalib")
    library.create_cell("ctrl")
    project = hybrid.adopt_library("alice", library, "fpga_proj")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)
    hybrid.prepare_cell("alice", project, "ctrl", flow_name="fpga_flow",
                        team_name="team")
    return hybrid, project, library


def synthesis_tool(inputs):
    schematic = inputs["schematic"]
    return True, b"NETLIST from " + schematic[:20], "synthesised"


def par_tool(inputs):
    return True, b"PLACED " + inputs["netlist"][:10], "placed and routed"


def bitstream_tool(inputs):
    return True, b"BITS " + inputs["placement"][:10], "bitstream ready"


def wrappers_for(hybrid):
    make = lambda activity, tool, viewtype, fn: BlackBoxToolWrapper(
        hybrid.jcf, hybrid.fmcad, hybrid.mapper, hybrid.guard,
        activity_name=activity, tool_name=tool,
        output_viewtype=viewtype, tool_fn=fn,
    )
    return (
        make("synthesis", "synthesis_tool", "netlist", synthesis_tool),
        make("place_and_route", "place_route_tool", "placement", par_tool),
        make("bitstream_generation", "bitstream_tool", "bitstream",
             bitstream_tool),
    )


class TestFpgaFlowDefinition:
    def test_flow_is_valid_dag(self):
        flow = fpga_flow()
        order = flow.topological_order()
        assert order == [
            "schematic_entry", "synthesis", "place_and_route",
            "bitstream_generation",
        ]

    def test_black_box_level_flags(self):
        assert BlackBoxToolWrapper.INTEGRATION is IntegrationLevel.BLACK_BOX
        assert BlackBoxToolWrapper.GUARD_MENUS is False


class TestBlackBoxRuns:
    def run_whole_flow(self, fpga_env):
        hybrid, project, library = fpga_env
        hybrid.run_schematic_entry(
            "alice", project, library, "ctrl", build_inverter_editor_fn()
        )
        results = []
        for wrapper in wrappers_for(hybrid):
            results.append(
                wrapper.run("alice", project, library, "ctrl")
            )
        return hybrid, project, library, results

    def test_full_fpga_flow_succeeds(self, fpga_env):
        hybrid, project, library, results = self.run_whole_flow(fpga_env)
        assert all(r.success for r in results)
        cell = library.cell("ctrl")
        for view in ("netlist", "placement", "bitstream"):
            assert cell.has_cellview(view)
            assert cell.cellview(view).default_version is not None

    def test_derivation_chain_through_black_boxes(self, fpga_env):
        hybrid, project, library, results = self.run_whole_flow(fpga_env)
        from repro.jcf.project import JCFDesignObjectVersion

        bitstream = JCFDesignObjectVersion(
            hybrid.jcf.db, hybrid.jcf.db.get(results[-1].jcf_version_oid)
        )
        chain = hybrid.jcf.engine.derivation_chain(bitstream)
        viewtypes = {v.design_object.viewtype_name for v in chain}
        assert {"schematic", "netlist", "placement"} <= viewtypes

    def test_flow_order_enforced_for_black_boxes(self, fpga_env):
        hybrid, project, library = fpga_env
        synthesis, par, bits = wrappers_for(hybrid)
        with pytest.raises(FlowOrderError):
            par.run("alice", project, library, "ctrl")

    def test_black_box_session_has_no_guarded_menus(self, fpga_env):
        hybrid, project, library = fpga_env
        hybrid.run_schematic_entry(
            "alice", project, library, "ctrl", build_inverter_editor_fn()
        )
        seen = {}
        original_open = hybrid.fmcad.open_session

        def spy(tool_name, user):
            session = original_open(tool_name, user)
            seen["session"] = session
            return session

        hybrid.fmcad.open_session = spy
        synthesis, *_ = wrappers_for(hybrid)
        synthesis.run("alice", project, library, "ctrl")
        hybrid.fmcad.open_session = original_open
        session = seen["session"]
        assert all(
            not session.menu(name).locked
            for name in session.menu_names()
        )

    def test_crashing_black_box_fails_activity(self, fpga_env):
        hybrid, project, library = fpga_env
        hybrid.run_schematic_entry(
            "alice", project, library, "ctrl", build_inverter_editor_fn()
        )

        def broken(inputs):
            raise RuntimeError("license server down")

        wrapper = BlackBoxToolWrapper(
            hybrid.jcf, hybrid.fmcad, hybrid.mapper, hybrid.guard,
            activity_name="synthesis", tool_name="synthesis_tool",
            output_viewtype="netlist", tool_fn=broken,
        )
        with pytest.raises(EncapsulationError, match="crashed"):
            wrapper.run("alice", project, library, "ctrl")
        # the flow records the failure and allows a retry
        synthesis, *_ = wrappers_for(hybrid)
        assert synthesis.run("alice", project, library, "ctrl").success

    def test_unsuccessful_tool_blocks_successor(self, fpga_env):
        hybrid, project, library = fpga_env
        hybrid.run_schematic_entry(
            "alice", project, library, "ctrl", build_inverter_editor_fn()
        )

        def failing(inputs):
            return False, None, "timing not met"

        wrapper = BlackBoxToolWrapper(
            hybrid.jcf, hybrid.fmcad, hybrid.mapper, hybrid.guard,
            activity_name="synthesis", tool_name="synthesis_tool",
            output_viewtype="netlist", tool_fn=failing,
        )
        result = wrapper.run("alice", project, library, "ctrl")
        assert not result.success
        _, par, _ = wrappers_for(hybrid)
        with pytest.raises(FlowOrderError):
            par.run("alice", project, library, "ctrl")
