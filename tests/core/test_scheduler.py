"""The parallel coupled-run scheduler: waves, determinism, fault paths."""

from __future__ import annotations

import pytest

from tests.conftest import (
    build_inverter_editor_fn,
    inverter_testbench_fn,
    simple_layout_fn,
)
from repro.core.scheduler import (
    RUN_BLOCKED,
    RUN_CRASHED,
    RUN_DEFERRED,
    RUN_OK,
    BatchScheduler,
    RunRequest,
)
from repro.errors import EncapsulationError
from repro.faults import FaultPlan, inject


@pytest.fixture
def adopted_cells(hybrid):
    """Four independent cells adopted and reserved by alice.

    Returns (hybrid, project, library, cell_names).
    """
    library = hybrid.fmcad.create_library("chiplib")
    cells = [f"cell{i}" for i in range(4)]
    for cell in cells:
        library.create_cell(cell)
    project = hybrid.adopt_library("alice", library, "chipA")
    hybrid.jcf.resources.assign_team_to_project(
        "admin", "team1", project.oid
    )
    for cell in cells:
        hybrid.prepare_cell("alice", project, cell, team_name="team1")
    return hybrid, project, library, cells


def full_flow_batch(project, library, cells):
    """schematic + simulation + layout per cell, interleaved by activity."""
    requests = []
    for cell in cells:
        requests.append(RunRequest(
            "alice", project, library, cell, "schematic_entry",
            kwargs={"edit_fn": build_inverter_editor_fn(2)},
        ))
        requests.append(RunRequest(
            "alice", project, library, cell, "digital_simulation",
            kwargs={"testbench_fn": inverter_testbench_fn(2)},
        ))
        requests.append(RunRequest(
            "alice", project, library, cell, "layout_entry",
            kwargs={"edit_fn": simple_layout_fn()},
        ))
    return requests


class _FakeLibrary:
    def __init__(self, name):
        self.name = name


def request_stub(library, cell, activity="schematic_entry", reads=()):
    return RunRequest(
        "alice", None, _FakeLibrary(library), cell, activity, reads=reads
    )


class TestGraph:
    def test_unknown_activity_rejected(self):
        with pytest.raises(EncapsulationError):
            request_stub("lib", "a", activity="place_and_route")

    def test_independent_runs_share_one_wave(self):
        requests = [request_stub("lib", f"c{i}") for i in range(5)]
        waves = BatchScheduler.build_waves(requests)
        assert waves == [[0, 1, 2, 3, 4]]

    def test_same_cell_chains_in_batch_order(self):
        requests = [
            request_stub("lib", "c0", "schematic_entry"),
            request_stub("lib", "c0", "digital_simulation"),
            request_stub("lib", "c0", "layout_entry"),
        ]
        waves = BatchScheduler.build_waves(requests)
        assert waves == [[0], [1], [2]]

    def test_same_cell_name_in_other_library_is_independent(self):
        requests = [
            request_stub("libA", "c0"),
            request_stub("libB", "c0"),
        ]
        assert BatchScheduler.build_waves(requests) == [[0, 1]]

    def test_declared_read_serialises_against_writer(self):
        requests = [
            request_stub("lib", "sub"),  # writes sub
            request_stub(
                "lib", "top", "digital_simulation",
                reads=(("lib", "sub"),),  # netlists through sub
            ),
        ]
        assert BatchScheduler.build_waves(requests) == [[0], [1]]

    def test_writer_after_reader_also_serialises(self):
        requests = [
            request_stub("lib", "top", reads=(("lib", "sub"),)),
            request_stub("lib", "sub"),
        ]
        assert BatchScheduler.build_waves(requests) == [[0], [1]]

    def test_levels_are_longest_path(self):
        requests = [
            request_stub("lib", "a"),                  # wave 0
            request_stub("lib", "a"),                  # wave 1 (same cell)
            request_stub("lib", "b"),                  # wave 0
            request_stub("lib", "c", reads=(("lib", "a"),)),  # wave 2
        ]
        assert BatchScheduler.build_waves(requests) == [[0, 2], [1], [3]]


class TestExecution:
    def test_full_flow_batch_runs_clean(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        requests = full_flow_batch(project, library, cells)
        result = hybrid.run_many(requests, workers=4, seed=1)
        assert [o.status for o in result.outcomes] == [RUN_OK] * len(requests)
        # three waves: the flow chain of each cell
        assert len(result.waves) == 3
        assert hybrid.audit().clean
        assert result.lock_stats["contentions"] == 0

    def test_parallel_matches_sequential_snapshot(self, tmp_path):
        """workers=4 and workers=1 commit byte-identical OMS state."""
        from repro.core.coupling import HybridFramework

        def arm(workers):
            import shutil

            root = tmp_path / "arm"  # same path: snapshots embed it
            if root.exists():
                shutil.rmtree(root)
            hy = HybridFramework(root)
            hy.jcf.resources.define_user("admin", "alice")
            hy.jcf.resources.define_team("admin", "team1")
            hy.jcf.resources.add_member("admin", "alice", "team1")
            hy.setup_standard_flow()
            library = hy.fmcad.create_library("chiplib")
            cells = [f"cell{i}" for i in range(3)]
            for cell in cells:
                library.create_cell(cell)
            project = hy.adopt_library("alice", library, "chipA")
            hy.jcf.resources.assign_team_to_project(
                "admin", "team1", project.oid
            )
            for cell in cells:
                hy.prepare_cell("alice", project, cell, team_name="team1")
            result = hy.run_many(
                full_flow_batch(project, library, cells),
                workers=workers, seed=3,
            )
            assert all(o.ok for o in result.outcomes)
            return hy.jcf.save_snapshot()

        assert arm(1) == arm(4)

    def test_makespan_below_summed_time(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        result = hybrid.run_many(
            full_flow_batch(project, library, cells), workers=4
        )
        assert 0 < result.makespan_ms < result.summed_ms

    def test_group_commit_coalesces(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        result = hybrid.run_many(
            full_flow_batch(project, library, cells), workers=4
        )
        stats = result.commit_stats
        assert stats["coalesced_commits"] > 0
        assert stats["flush_count"] < stats["commit_count"]

    def test_empty_batch(self, hybrid):
        result = hybrid.run_many([])
        assert result.outcomes == [] and result.waves == []

    def test_workers_must_be_positive(self, hybrid):
        with pytest.raises(ValueError):
            hybrid.run_many([], workers=0)

    def test_seed_changes_turn_order_not_state(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        requests = full_flow_batch(project, library, cells)
        r1 = hybrid.run_many(requests[:4:3], workers=2, seed=0)
        assert all(o.ok for o in r1.outcomes)


class TestFaultPaths:
    def test_crash_blocks_flow_successors_only(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        requests = full_flow_batch(project, library, cells)
        # on_hit=2 crashes the wave-0 run with turn index 1: one
        # schematic entry dies, its cell's simulation+layout are blocked
        with inject(FaultPlan.crash("run.before_finish", on_hit=2)):
            result = hybrid.run_many(requests, workers=4, seed=7)
        crashed = result.by_status(RUN_CRASHED)
        blocked = result.by_status(RUN_BLOCKED)
        assert len(crashed) == 1
        assert len(blocked) == 2
        crashed_cell = crashed[0].request.cell_name
        assert all(o.request.cell_name == crashed_cell for o in blocked)
        # every other cell's full flow completed
        assert len(result.by_status(RUN_OK)) == len(requests) - 3

    def test_crash_then_recover_restores_clean_audit(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        requests = full_flow_batch(project, library, cells)
        with inject(FaultPlan.crash("run.before_finish", on_hit=2)):
            hybrid.run_many(requests, workers=4, seed=7)
        assert not hybrid.audit().clean
        hybrid.recover()
        assert hybrid.audit().clean
        # recovery is a fixpoint: a second pass repairs nothing
        assert hybrid.recover().empty()

    def test_crash_outcome_is_schedule_deterministic(self, tmp_path):
        """The same seed crashes the same run for any worker count."""
        from repro.core.coupling import HybridFramework

        def arm(workers):
            import shutil

            root = tmp_path / "arm"
            if root.exists():
                shutil.rmtree(root)
            hy = HybridFramework(root)
            hy.jcf.resources.define_user("admin", "alice")
            hy.jcf.resources.define_team("admin", "team1")
            hy.jcf.resources.add_member("admin", "alice", "team1")
            hy.setup_standard_flow()
            library = hy.fmcad.create_library("chiplib")
            cells = [f"cell{i}" for i in range(4)]
            for cell in cells:
                library.create_cell(cell)
            project = hy.adopt_library("alice", library, "chipA")
            hy.jcf.resources.assign_team_to_project(
                "admin", "team1", project.oid
            )
            for cell in cells:
                hy.prepare_cell("alice", project, cell, team_name="team1")
            requests = full_flow_batch(project, library, cells)
            with inject(FaultPlan.crash("run.before_finish", on_hit=3)):
                result = hy.run_many(requests, workers=workers, seed=11)
            return [o.status for o in result.outcomes]

        assert arm(1) == arm(4)

    def test_externally_held_lock_defers_run(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        requests = full_flow_batch(project, library, cells[:2])
        key = requests[0].write_key
        with hybrid.jcf.db.locks.acquiring(write=(key,)):
            result = hybrid.run_many(requests, workers=2, seed=0)
        deferred = result.by_status(RUN_DEFERRED)
        blocked = result.by_status(RUN_BLOCKED)
        assert len(deferred) == 1
        assert deferred[0].request.write_key == key
        # the deferred cell's flow successors were skipped, the other
        # cell's flow ran to completion
        assert len(blocked) == 2
        assert len(result.by_status(RUN_OK)) == 3
        # nothing half-ran: the audit is still clean
        assert hybrid.audit().clean

    def test_crashed_run_leaves_sandbox_for_recovery(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        # schematic entry first so the simulation crash has staged needs
        hybrid.run_schematic_entry(
            "alice", project, library, cells[0],
            build_inverter_editor_fn(2),
        )
        requests = [RunRequest(
            "alice", project, library, cells[0], "digital_simulation",
            kwargs={"testbench_fn": inverter_testbench_fn(2)},
        )]
        with inject(FaultPlan.crash("run.before_finish")):
            result = hybrid.run_many(requests, workers=1)
        assert result.outcomes[0].status == RUN_CRASHED
        staging_root = hybrid.jcf.staging.root
        leavings = [p for p in staging_root.iterdir() if p.is_dir()]
        assert leavings, "crashed run should leave its sandbox on disk"
        assert any(
            f.category == "staging-orphan" and "/" in f.detail
            for f in hybrid.audit().findings
        )
        report = hybrid.recover()
        assert any(
            "/" in name for name in report.reclaimed_staging_files
        ), "recovery should reclaim sandbox files"
        assert not any(p.is_dir() for p in staging_root.iterdir())
        assert hybrid.audit().clean

    def test_clean_batch_leaves_no_sandboxes(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        result = hybrid.run_many(
            full_flow_batch(project, library, cells), workers=4
        )
        assert all(o.ok for o in result.outcomes)
        staging_root = hybrid.jcf.staging.root
        assert not any(p.is_dir() for p in staging_root.iterdir())


class TestInLaneBatches:
    """run_many driven from inside a clock lane (the serving path)."""

    def test_batch_inside_lane_reports_makespan(self, adopted_cells):
        """Regression: in-lane batches used to report makespan 0.0 and
        leak their wave ends into the master clock."""
        hybrid, project, library, cells = adopted_cells
        requests = [
            RunRequest(
                "alice", project, library, cell, "schematic_entry",
                kwargs={"edit_fn": build_inverter_editor_fn(2)},
            )
            for cell in cells[:2]
        ]
        master_before = hybrid.clock._now_ms
        lane = hybrid.clock.open_lane("shard0")
        with hybrid.clock.use_lane(lane):
            result = hybrid.run_many(requests, workers=2)
        assert all(o.ok for o in result.outcomes)
        assert result.makespan_ms > 0.0
        assert lane.now_ms == pytest.approx(lane.start_ms + result.makespan_ms)
        # the master clock is only advanced by an explicit outer fold
        assert hybrid.clock._now_ms == master_before

    def test_consecutive_batches_account_independently(self, adopted_cells):
        hybrid, project, library, cells = adopted_cells
        lane = hybrid.clock.open_lane("shard0")
        makespans = []
        for cell in cells[:2]:
            request = RunRequest(
                "alice", project, library, cell, "schematic_entry",
                kwargs={"edit_fn": build_inverter_editor_fn(2)},
            )
            with hybrid.clock.use_lane(lane):
                result = hybrid.run_many([request], workers=1)
            assert result.outcomes[0].ok
            makespans.append(result.makespan_ms)
        # each batch reports its own critical path, and the lane holds
        # their serial sum — nothing leaked between the two batches
        assert all(m > 0.0 for m in makespans)
        assert lane.elapsed_ms == pytest.approx(sum(makespans))


class TestConcurrentBatches:
    """Two schedulers with distinct commit scopes running at once."""

    def test_scoped_batches_run_concurrently(self, hybrid):
        import threading

        resources = hybrid.jcf.resources
        setups = []
        for t in range(2):
            library = hybrid.fmcad.create_library(f"par{t}")
            cells = [f"p{t}c{i}" for i in range(3)]
            for cell in cells:
                library.create_cell(cell)
            project = hybrid.adopt_library("alice", library, f"parproj{t}")
            resources.assign_team_to_project("admin", "team1", project.oid)
            for cell in cells:
                hybrid.prepare_cell("alice", project, cell, team_name="team1")
            setups.append((project, library, cells))

        results = {}
        def run_batch(index):
            project, library, cells = setups[index]
            requests = [
                RunRequest(
                    "alice", project, library, cell, "schematic_entry",
                    kwargs={"edit_fn": build_inverter_editor_fn(2)},
                )
                for cell in cells
            ]
            scheduler = BatchScheduler(
                hybrid, workers=2,
                commit_scope=f"scope{index}",
                sandbox_prefix=f"t{index}_",
            )
            results[index] = scheduler.run(requests)

        threads = [
            threading.Thread(target=run_batch, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(2):
            assert all(o.ok for o in results[index].outcomes), (
                [str(o.error) for o in results[index].outcomes]
            )
        # both scopes coalesced their own commits
        assert hybrid.jcf.db.coalesced_commits > 0
        assert hybrid.audit().clean

    def test_same_scope_concurrent_groups_still_refused(self, hybrid):
        from repro.errors import TransactionError

        db = hybrid.jcf.db
        with db.group_commit("shared"):
            with pytest.raises(TransactionError):
                with db.group_commit("shared"):
                    pass
