"""Unit tests for the encapsulated tool wrappers (Section 2.4)."""

import pytest

from repro.errors import (
    EncapsulationError,
    FlowOrderError,
    MenuLockedError,
)
from tests.conftest import (
    build_inverter_editor_fn,
    inverter_testbench_fn,
    simple_layout_fn,
)


class TestWorkspaceGate:
    def test_unreserved_cell_rejected(self, hybrid):
        library = hybrid.fmcad.create_library("lib")
        library.create_cell("c1")
        project = hybrid.adopt_library("alice", library)
        # no prepare_cell/reserve
        cell_version = project.cell("c1").latest_version()
        cell_version.attach_flow(
            hybrid.jcf.flows.flow_object("jcf_fmcad_flow")
        )
        with pytest.raises(EncapsulationError, match="reserve"):
            hybrid.run_schematic_entry(
                "alice", project, library, "c1",
                build_inverter_editor_fn(),
            )

    def test_other_user_cannot_run_tools(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with pytest.raises(EncapsulationError):
            hybrid.run_schematic_entry(
                "bob", project, library, cell, build_inverter_editor_fn()
            )


class TestSchematicEntry:
    def test_successful_run_produces_both_versions(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        result = hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        assert result.success
        assert result.fmcad_version == 1
        assert hybrid.jcf.db.exists(result.jcf_version_oid)
        # both sides hold identical bytes
        fmcad_data = library.read_version(
            library.cellview(cell, "schematic")
        )
        jcf_data = hybrid.jcf.db.get(result.jcf_version_oid).payload
        assert fmcad_data == jcf_data

    def test_invalid_schematic_fails_activity(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell

        def bad_edit(editor):
            editor.place_gate("floating", "AND")  # dangling pins

        result = hybrid.run_schematic_entry(
            "alice", project, library, cell, bad_edit
        )
        assert not result.success
        assert "check failed" in result.details
        # nothing was checked in — the cellview was never even created
        assert not library.cell(cell).has_cellview("schematic")

    def test_second_run_opens_previous_version(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        seen = {}

        def incremental_edit(editor):
            seen["ports"] = [p.name for p in editor.schematic.ports()]

        result = hybrid.run_schematic_entry(
            "alice", project, library, cell, incremental_edit
        )
        assert seen["ports"] == ["a", "y"]  # opened v1, not a blank sheet
        assert result.fmcad_version == 2

    def test_guarded_menus_locked_during_run(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        captured = {}

        def probing_edit(editor):
            session = hybrid.fmcad.sessions()[0]
            captured["locked"] = session.menu("checkin").locked
            editor.add_port("a", "in")
            editor.add_port("y", "out")
            editor.place_gate("g", "NOT", 1)
            editor.wire("a", "g", "in0")
            editor.wire("y", "g", "out")

        hybrid.run_schematic_entry(
            "alice", project, library, cell, probing_edit
        )
        assert captured["locked"] is True


class TestFlowIntegration:
    def test_out_of_order_run_rejected(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with pytest.raises(FlowOrderError):
            hybrid.run_layout_entry(
                "alice", project, library, cell, simple_layout_fn()
            )
        assert hybrid.jcf.engine.rejected_starts == 1

    def test_forced_early_run_shows_consistency_window(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        # layout before simulation, supervised
        result = hybrid.run_layout_entry(
            "alice", project, library, cell, simple_layout_fn(),
            force_early=True,
        )
        assert result.success and result.forced_early
        assert hybrid.jcf.engine.forced_starts == 1

    def test_simulation_needs_schematic(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        with pytest.raises(FlowOrderError):
            hybrid.run_simulation(
                "alice", project, library, cell, inverter_testbench_fn()
            )

    def test_full_flow_records_derivations(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        r1 = hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn(2)
        )
        r2 = hybrid.run_simulation(
            "alice", project, library, cell, inverter_testbench_fn(2)
        )
        r3 = hybrid.run_layout_entry(
            "alice", project, library, cell, simple_layout_fn()
        )
        assert r1.success and r2.success and r3.success
        schematic_version = hybrid.jcf.db.get(r1.jcf_version_oid)
        from repro.jcf.project import JCFDesignObjectVersion

        sv = JCFDesignObjectVersion(hybrid.jcf.db, schematic_version)
        derived_oids = {v.oid for v in sv.derived_versions()}
        assert {r2.jcf_version_oid, r3.jcf_version_oid} <= derived_oids

    def test_failing_simulation_blocks_layout(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn(2)
        )

        def wrong_bench(tb):
            tb.drive(0, "a", "0")
            tb.expect(30, "y", "1")  # wrong: 2 inverters = buffer

        result = hybrid.run_simulation(
            "alice", project, library, cell, wrong_bench
        )
        assert not result.success
        with pytest.raises(FlowOrderError):
            hybrid.run_layout_entry(
                "alice", project, library, cell, simple_layout_fn()
            )


class TestLayoutEntry:
    def run_upto_layout(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn(2)
        )
        hybrid.run_simulation(
            "alice", project, library, cell, inverter_testbench_fn(2)
        )
        return hybrid, project, library, cell

    def test_drc_gate_blocks_dirty_layout(self, adopted_cell):
        hybrid, project, library, cell = self.run_upto_layout(adopted_cell)

        def thin_layout(editor):
            editor.draw_rect("metal1", 0, 0, 10, 1)  # width violation

        result = hybrid.run_layout_entry(
            "alice", project, library, cell, thin_layout
        )
        assert not result.success
        assert "DRC failed" in result.details

    def test_drc_gate_can_be_waived(self, adopted_cell):
        hybrid, project, library, cell = self.run_upto_layout(adopted_cell)

        def thin_layout(editor):
            editor.draw_rect("metal1", 0, 0, 10, 1)

        result = hybrid.run_layout_entry(
            "alice", project, library, cell, thin_layout, drc_gate=False
        )
        assert result.success
        assert "waived" in result.details


class TestSimulatorDynamicBinding:
    def test_subcells_resolved_from_default_versions(self, hybrid):
        """The simulator netlists through FMCAD's dynamic binding."""
        library = hybrid.fmcad.create_library("hier")
        for cell_name in ("leaf", "parent"):
            library.create_cell(cell_name)
        project = hybrid.adopt_library("alice", library)
        hybrid.jcf.resources.assign_team_to_project(
            "admin", "team1", project.oid
        )
        hybrid.prepare_cell("alice", project, "leaf", team_name="team1")
        hybrid.prepare_cell("alice", project, "parent", team_name="team1")
        hybrid.run_schematic_entry(
            "alice", project, library, "leaf", build_inverter_editor_fn(1)
        )

        def parent_edit(editor):
            editor.add_port("x", "in")
            editor.add_port("z", "out")
            editor.place_cell("u1", "leaf")
            editor.wire("x", "u1", "a")
            editor.wire("z", "u1", "y")

        hybrid.run_schematic_entry(
            "alice", project, library, "parent", parent_edit
        )

        def bench(tb):
            tb.drive(0, "x", "0")
            tb.expect(30, "z", "1")  # one inverter in the leaf

        result = hybrid.run_simulation(
            "alice", project, library, "parent", bench
        )
        assert result.success, result.details


class TestSymbolEmission:
    def test_schematic_entry_emits_symbol_view(self, adopted_cell):
        """The 'Symbol in Sch.V' half of Figure 2: saving a schematic
        auto-generates the symbol view in both frameworks."""
        from repro.tools.schematic.symbols import Symbol

        hybrid, project, library, cell = adopted_cell
        result = hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        assert "symbol" in result.details
        fmcad_cell = library.cell(cell)
        assert fmcad_cell.has_cellview("symbol")
        symbol = Symbol.from_bytes(
            library.read_version(fmcad_cell.cellview("symbol"))
        )
        assert symbol.pins == (("a", "in"), ("y", "out"))

    def test_symbol_recorded_as_jcf_design_object(self, adopted_cell):
        from repro.core.mapping import WORKING_VARIANT

        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        variant = (
            project.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        symbol_dobj = variant.find_design_object("symbol")
        assert symbol_dobj is not None
        assert symbol_dobj.latest_version() is not None

    def test_symbol_emission_can_be_disabled(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        result = hybrid.schematic_entry.run(
            "alice", project, library, cell,
            edit_fn=build_inverter_editor_fn(), emit_symbol=False,
        )
        assert result.success
        assert not library.cell(cell).has_cellview("symbol")

    def test_symbol_in_derivation_record(self, adopted_cell):
        from repro.core.mapping import WORKING_VARIANT

        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        variant = (
            project.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        record = hybrid.jcf.engine.what_belongs_to_what(variant)
        entry = next(iter(record.values()))
        assert len(entry["creates"]) == 2  # schematic + symbol
