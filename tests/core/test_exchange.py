"""Unit tests for inter-framework design-data exchange archives."""

import pytest

from repro.core.exchange import (
    ExchangeError,
    export_archive,
    import_archive,
    read_manifest,
)
from repro.core.mapping import WORKING_VARIANT
from tests.conftest import build_inverter_editor_fn


@pytest.fixture
def populated(adopted_cell):
    hybrid, project, library, cell = adopted_cell
    hybrid.run_schematic_entry(
        "alice", project, library, cell, build_inverter_editor_fn()
    )
    # also declare a hierarchy edge to carry along
    extra = project.create_cell("subblock")
    hybrid.jcf.desktop.submit_hierarchy(
        "alice", project, [(cell, "subblock")]
    )
    return hybrid, project, library, cell


class TestExport:
    def test_archive_created_with_manifest(self, populated, tmp_path):
        hybrid, project, library, cell = populated
        path = export_archive(hybrid.jcf, project, tmp_path / "p.tar")
        manifest = read_manifest(path)
        assert manifest["project"] == "chipA"
        assert [c["name"] for c in manifest["cells"]] == [cell, "subblock"]
        assert manifest["hierarchy"] == [[cell, "subblock"]]

    def test_export_charges_copies(self, populated, tmp_path):
        hybrid, project, library, cell = populated
        before = hybrid.clock.elapsed_by_category().get("copy", 0.0)
        export_archive(hybrid.jcf, project, tmp_path / "p.tar")
        assert hybrid.clock.elapsed_by_category()["copy"] > before

    def test_manifest_lists_all_versions(self, populated, tmp_path):
        hybrid, project, library, cell = populated
        # create a second schematic version through the flow
        hybrid.run_schematic_entry(
            "alice", project, library, cell,
            lambda editor: None,  # re-save the opened previous version
        )
        path = export_archive(hybrid.jcf, project, tmp_path / "p.tar")
        manifest = read_manifest(path)
        schematic = next(
            obj
            for c in manifest["cells"] if c["name"] == cell
            for obj in c["objects"]
            if obj["viewtype"] == "schematic"
        )
        assert [entry["number"] for entry in schematic["versions"]] == [1, 2]
        # both versions have identical content (a re-save), so format 2
        # records the same digest twice and ships the payload once
        digests = {entry["digest"] for entry in schematic["versions"]}
        assert len(digests) == 1
        import tarfile

        with tarfile.open(path) as archive:
            blob_members = [
                name for name in archive.getnames()
                if name.startswith("data/blobs/")
            ]
        assert len(blob_members) == len(set(blob_members))


class TestImport:
    def test_round_trip_preserves_everything(self, populated, tmp_path):
        hybrid, project, library, cell = populated
        path = export_archive(hybrid.jcf, project, tmp_path / "p.tar")
        imported = import_archive(
            hybrid.jcf, path, "alice", project_name="chipA_copy"
        )
        assert {c.name for c in imported.cells()} == {cell, "subblock"}
        original_variant = (
            project.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        copied_variant = (
            imported.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        for dobj in original_variant.design_objects():
            twin = copied_variant.design_object(dobj.name)
            assert twin.viewtype_name == dobj.viewtype_name
            for version in dobj.versions():
                original_payload = hybrid.jcf.db.get(version.oid).payload
                copied_payload = hybrid.jcf.db.get(
                    twin.version(version.number).oid
                ).payload
                assert copied_payload == original_payload

    def test_hierarchy_metadata_survives(self, populated, tmp_path):
        hybrid, project, library, cell = populated
        path = export_archive(hybrid.jcf, project, tmp_path / "p.tar")
        imported = import_archive(
            hybrid.jcf, path, "alice", project_name="copy"
        )
        assert hybrid.jcf.desktop.declared_hierarchy(imported) == [
            (cell, "subblock")
        ]

    def test_import_into_existing_name_rejected(self, populated, tmp_path):
        hybrid, project, library, cell = populated
        path = export_archive(hybrid.jcf, project, tmp_path / "p.tar")
        with pytest.raises(ExchangeError):
            import_archive(hybrid.jcf, path, "alice")  # chipA exists

    def test_import_to_second_framework(self, populated, tmp_path):
        """The whole point: a different installation receives the design."""
        from repro.jcf.framework import JCFFramework

        hybrid, project, library, cell = populated
        path = export_archive(hybrid.jcf, project, tmp_path / "p.tar")
        other = JCFFramework(tmp_path / "other_site")
        other.resources.define_user("admin", "remote_user")
        imported = import_archive(other, path, "remote_user")
        assert imported.name == "chipA"
        assert imported.cell(cell)


class TestRobustness:
    def test_garbage_archive_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.tar"
        bogus.write_bytes(b"this is not a tar archive")
        with pytest.raises(ExchangeError):
            read_manifest(bogus)

    def test_wrong_format_rejected(self, tmp_path):
        import io
        import json
        import tarfile

        path = tmp_path / "wrong.tar"
        with tarfile.open(path, "w") as archive:
            blob = json.dumps({"format": "other"}).encode()
            info = tarfile.TarInfo("manifest.json")
            info.size = len(blob)
            archive.addfile(info, io.BytesIO(blob))
        with pytest.raises(ExchangeError):
            read_manifest(path)
