"""Unit tests for the consistency guard (Section 2.4 / 3.2)."""

import pytest

from repro.core.consistency import GUARDED_MENUS, ConsistencyGuard
from repro.errors import MenuLockedError
from tests.conftest import build_inverter_editor_fn


@pytest.fixture
def populated(adopted_cell):
    """A hybrid environment with one successful schematic run."""
    hybrid, project, library, cell = adopted_cell
    hybrid.run_schematic_entry(
        "alice", project, library, cell, build_inverter_editor_fn()
    )
    return hybrid, project, library, cell


class TestMenuGuard:
    def test_guard_session_locks_all_guarded_menus(self, hybrid):
        session = hybrid.fmcad.open_session("schematic_editor", "alice")
        hybrid.guard.guard_session(session)
        for name in GUARDED_MENUS:
            assert session.menu(name).locked
            with pytest.raises(MenuLockedError):
                session.invoke_menu(name)

    def test_guard_respects_existing_registrations(self, hybrid):
        session = hybrid.fmcad.open_session("schematic_editor", "alice")
        session.register_menu("checkin", lambda: "raw checkin")
        hybrid.guard.guard_session(session)
        with pytest.raises(MenuLockedError):
            session.invoke_menu("checkin")

    def test_guard_written_in_extension_language(self, hybrid):
        """The guard procedures exist inside the interpreter."""
        assert hybrid.fmcad.interpreter.globals.lookup("guard-session")
        assert hybrid.fmcad.interpreter.globals.lookup("guard-menu")


class TestITCInterception:
    def test_probe_into_reserved_cell_vetoed(self, populated):
        hybrid, project, library, cell = populated
        # the cell version is reserved by alice; a probe by bob is vetoed
        received = []
        hybrid.fmcad.bus.subscribe("peer", "crossprobe", received.append)
        result = hybrid.fmcad.bus.publish(
            "bob_session", "crossprobe",
            {"cell": cell, "user": "bob", "object": "net1"},
        )
        assert result is None
        assert received == []
        assert len(hybrid.fmcad.bus.vetoed) == 1

    def test_probe_by_holder_passes(self, populated):
        hybrid, project, library, cell = populated
        received = []
        hybrid.fmcad.bus.subscribe("peer", "crossprobe", received.append)
        result = hybrid.fmcad.bus.publish(
            "alice_session", "crossprobe",
            {"cell": cell, "user": "alice", "object": "net1"},
        )
        assert result is not None
        assert len(received) == 1

    def test_probe_without_cell_reference_passes(self, populated):
        hybrid, *_ = populated
        result = hybrid.fmcad.bus.publish(
            "any", "crossprobe", {"object": "net1"}
        )
        assert result is not None

    def test_interceptor_installed_once(self, hybrid):
        hybrid.guard.install_itc_interceptor()
        hybrid.guard.install_itc_interceptor()
        assert len(hybrid.fmcad.bus._interceptors) == 1


class TestScan:
    def test_clean_environment_scans_clean(self, populated):
        hybrid, project, library, _ = populated
        assert hybrid.guard.scan(project, library) == []

    def test_detects_fmcad_file_corruption(self, populated):
        """A version file edited behind OMS's back differs from the blob."""
        hybrid, project, library, cell = populated
        version = library.cellview(cell, "schematic").version(1)
        version.path.write_bytes(b"corrupted outside the coupling")
        findings = hybrid.guard.scan(project, library)
        assert any(f.kind == "payload" and "differ" in f.detail
                   for f in findings)

    def test_detects_deleted_version_file(self, populated):
        hybrid, project, library, cell = populated
        version = library.cellview(cell, "schematic").version(1)
        version.path.unlink()
        findings = hybrid.guard.scan(project, library)
        assert any("deleted on disk" in f.detail for f in findings)

    def test_detects_uncoupled_checkin(self, populated):
        """A version created outside the coupling has no jcf_oid tag."""
        hybrid, project, library, cell = populated
        cellview = library.cellview(cell, "schematic")
        library.write_version(cellview, b"rogue edit", "mallory")
        findings = hybrid.guard.scan(project, library)
        assert any("no JCF counterpart" in f.detail for f in findings)

    def test_detects_stale_meta(self, populated):
        hybrid, project, library, cell = populated
        cellview = library.cellview(cell, "schematic")
        # a rogue version also leaves .meta stale (no flush)
        library.write_version(cellview, b"rogue", "mallory")
        findings = hybrid.guard.scan(project, library)
        assert any(f.kind == "meta" for f in findings)

    def test_detects_hierarchy_drift(self, populated):
        hybrid, project, library, cell = populated
        from repro.tools.schematic.model import Component, Schematic

        library.create_cell("orphan")
        orphan_view = library.create_cellview("orphan", "schematic")
        child = Schematic("orphan")
        child.add_port("a", "in")
        child.add_port("y", "out")
        child.add_component(Component("g", "NOT", ninputs=1))
        child.connect("a", "g", "in0")
        child.connect("y", "g", "out")
        library.write_version(orphan_view, child.to_bytes(), "x")
        top_view = library.cellview(cell, "schematic")
        schematic = Schematic.from_bytes(library.read_version(top_view))
        schematic.add_component(Component("u9", "CELL", cellref="orphan"))
        library.write_version(top_view, schematic.to_bytes(), "x")
        findings = hybrid.guard.scan(project, library)
        assert any(f.kind == "hierarchy" for f in findings)

    def test_fmcad_baseline_detects_nothing(self, populated):
        """Section 3.2/E32: bare FMCAD notices none of it."""
        hybrid, project, library, cell = populated
        version = library.cellview(cell, "schematic").version(1)
        version.path.write_bytes(b"corrupted")
        assert ConsistencyGuard.fmcad_baseline_scan(library) == []
