"""Unit tests for the FMCAD framework facade."""

import pytest

from repro.errors import LibraryError
from repro.fmcad.framework import FMCADFramework


class TestLibraries:
    def test_create_and_lookup(self, fmcad):
        fmcad.create_library("lib1")
        assert fmcad.library("lib1").name == "lib1"

    def test_duplicate_library_rejected(self, fmcad):
        fmcad.create_library("lib1")
        with pytest.raises(LibraryError):
            fmcad.create_library("lib1")

    def test_unknown_library_raises(self, fmcad):
        with pytest.raises(LibraryError):
            fmcad.library("ghost")

    def test_libraries_share_the_framework_clock(self, fmcad):
        library = fmcad.create_library("lib1")
        assert library.clock is fmcad.clock


class TestSessions:
    def test_open_session_allocates_ids(self, fmcad):
        s1 = fmcad.open_session("schematic_editor", "alice")
        s2 = fmcad.open_session("layout_editor", "bob")
        assert s1.session_id != s2.session_id
        assert fmcad.session(s1.session_id) is s1

    def test_close_session(self, fmcad):
        session = fmcad.open_session("schematic_editor", "alice")
        fmcad.close_session(session.session_id)
        assert session.closed
        with pytest.raises(LibraryError):
            fmcad.session(session.session_id)

    def test_extension_can_lock_session_menus(self, fmcad):
        session = fmcad.open_session("schematic_editor", "alice")
        session.register_menu("save", lambda: None)
        fmcad.interpreter.run(
            f'(lock-menu "{session.session_id}" "save" "guarded")'
        )
        assert session.menu("save").locked
        assert fmcad.interpreter.run(
            f'(menu-locked "{session.session_id}" "save")'
        ) is True
        fmcad.interpreter.run(
            f'(unlock-menu "{session.session_id}" "save")'
        )
        assert not session.menu("save").locked


class TestConfigurations:
    def test_create_configuration(self, fmcad):
        fmcad.create_library("lib1")
        config = fmcad.create_configuration("golden", "lib1")
        assert fmcad.configuration("golden") is config

    def test_duplicate_configuration_rejected(self, fmcad):
        fmcad.create_library("lib1")
        fmcad.create_configuration("golden", "lib1")
        with pytest.raises(LibraryError):
            fmcad.create_configuration("golden", "lib1")


class TestInvocationLog:
    def test_log_is_flat_and_relationless(self, fmcad):
        fmcad.log_invocation("schematic_editor", "alice", "alu", "schematic")
        fmcad.log_invocation("layout_editor", "alice", "alu", "layout")
        assert len(fmcad.invocation_log) == 2
        assert fmcad.invocation_log[0].sequence == 1
        # the Section 3.5 claim: no derivation info whatsoever
        assert fmcad.derivation_relations() == []

    def test_stats_shape(self, fmcad):
        fmcad.create_library("lib1")
        stats = fmcad.stats()
        assert "lib1" in stats["libraries"]
        assert stats["invocations"] == 0
