"""Unit tests for FMCAD design objects and properties."""

import pathlib

import pytest

from repro.errors import FMCADError, PropertyError, ViewTypeError
from repro.fmcad.objects import (
    Cell,
    CellView,
    CellViewVersion,
    View,
    VIEWTYPE_LAYOUT,
    VIEWTYPE_SCHEMATIC,
    resolve_viewtype,
)
from repro.fmcad.properties import PropertyBag


class TestViewTypes:
    def test_resolve_known(self):
        assert resolve_viewtype("schematic").tool_name == "schematic_editor"
        assert resolve_viewtype("layout").tool_name == "layout_editor"

    def test_resolve_unknown_raises(self):
        with pytest.raises(ViewTypeError):
            resolve_viewtype("hologram")

    def test_symbol_shares_schematic_tool(self):
        """Viewtypes can be switched with the same tool (Section 2.2)."""
        assert (
            resolve_viewtype("symbol").tool_name
            == resolve_viewtype("schematic").tool_name
        )


class TestCellView:
    def make_cellview(self):
        return CellView("alu", View("schematic", VIEWTYPE_SCHEMATIC))

    def test_name_combines_cell_and_view(self):
        assert self.make_cellview().name == "alu/schematic"

    def test_default_version_is_newest(self, tmp_path):
        cellview = self.make_cellview()
        for n in (1, 2):
            path = tmp_path / f"v{n}.dat"
            path.write_bytes(b"x")
            cellview.add_version(CellViewVersion(n, path, n, "a"))
        assert cellview.default_version.number == 2

    def test_version_numbers_must_advance(self, tmp_path):
        cellview = self.make_cellview()
        path = tmp_path / "v.dat"
        path.write_bytes(b"x")
        cellview.add_version(CellViewVersion(2, path, 1, "a"))
        with pytest.raises(FMCADError):
            cellview.add_version(CellViewVersion(1, path, 2, "a"))

    def test_missing_version_raises(self):
        with pytest.raises(FMCADError):
            self.make_cellview().version(3)

    def test_next_version_number(self, tmp_path):
        cellview = self.make_cellview()
        assert cellview.next_version_number() == 1
        path = tmp_path / "v.dat"
        path.write_bytes(b"x")
        cellview.add_version(CellViewVersion(1, path, 1, "a"))
        assert cellview.next_version_number() == 2

    def test_version_read_missing_file_raises(self):
        version = CellViewVersion(1, pathlib.Path("/nonexistent/v.dat"), 1, "a")
        with pytest.raises(FMCADError):
            version.read_data()


class TestCell:
    def test_add_and_get_cellview(self):
        cell = Cell("alu")
        cellview = CellView("alu", View("layout", VIEWTYPE_LAYOUT))
        cell.add_cellview(cellview)
        assert cell.cellview("layout") is cellview
        assert cell.has_cellview("layout")

    def test_duplicate_view_rejected(self):
        cell = Cell("alu")
        cell.add_cellview(CellView("alu", View("layout", VIEWTYPE_LAYOUT)))
        with pytest.raises(FMCADError):
            cell.add_cellview(
                CellView("alu", View("layout", VIEWTYPE_LAYOUT))
            )

    def test_unknown_view_raises(self):
        with pytest.raises(FMCADError):
            Cell("alu").cellview("ghost")

    def test_cellviews_sorted_by_view(self):
        cell = Cell("alu")
        cell.add_cellview(CellView("alu", View("schematic", VIEWTYPE_SCHEMATIC)))
        cell.add_cellview(CellView("alu", View("layout", VIEWTYPE_LAYOUT)))
        assert [cv.view.name for cv in cell.cellviews()] == [
            "layout",
            "schematic",
        ]


class TestPropertyBag:
    def test_set_get(self):
        bag = PropertyBag()
        bag.set("width", 4)
        assert bag.get("width") == 4

    def test_get_default(self):
        assert PropertyBag().get("missing", "d") == "d"

    def test_require_missing_raises(self):
        with pytest.raises(PropertyError):
            PropertyBag().require("missing")

    def test_unsupported_type_rejected(self):
        with pytest.raises(PropertyError):
            PropertyBag().set("x", [1, 2])

    def test_invalid_name_rejected(self):
        with pytest.raises(PropertyError):
            PropertyBag().set("", 1)

    def test_delete(self):
        bag = PropertyBag()
        bag.set("x", 1)
        bag.delete("x")
        assert "x" not in bag

    def test_delete_missing_raises(self):
        with pytest.raises(PropertyError):
            PropertyBag().delete("x")

    def test_items_sorted(self):
        bag = PropertyBag()
        bag.set("z", 1)
        bag.set("a", 2)
        assert [k for k, _ in bag.items()] == ["a", "z"]

    def test_copy_from_merges(self):
        a, b = PropertyBag(), PropertyBag()
        a.set("x", 1)
        b.set("x", 2)
        b.set("y", 3)
        a.copy_from(b)
        assert a.get("x") == 2 and a.get("y") == 3
