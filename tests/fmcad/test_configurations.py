"""Unit tests for FMCAD configurations."""

import pytest

from repro.errors import FMCADError
from repro.fmcad.configurations import FMCADConfiguration
from repro.fmcad.library import Library


@pytest.fixture
def library(tmp_path, clock):
    lib = Library("lib", tmp_path, clock=clock)
    for cell in ("alu", "fpu"):
        lib.create_cell(cell)
        cellview = lib.create_cellview(cell, "schematic")
        lib.write_version(cellview, b"v1", "a")
        lib.write_version(cellview, b"v2", "a")
    return lib


@pytest.fixture
def config(library):
    return FMCADConfiguration("golden", library)


class TestPinning:
    def test_add_and_resolve(self, config):
        config.add("alu", "schematic", 1)
        config.add("fpu", "schematic", 2)
        resolved = config.resolve()
        assert [v.number for v in resolved] == [1, 2]

    def test_at_most_one_version_per_cellview(self, config):
        config.add("alu", "schematic", 1)
        with pytest.raises(FMCADError):
            config.add("alu", "schematic", 2)

    def test_add_unknown_version_raises(self, config):
        with pytest.raises(FMCADError):
            config.add("alu", "schematic", 99)

    def test_replace_repins(self, config):
        config.add("alu", "schematic", 1)
        config.replace("alu", "schematic", 2)
        assert config.version_of("alu", "schematic") == 2

    def test_replace_unpinned_raises(self, config):
        with pytest.raises(FMCADError):
            config.replace("alu", "schematic", 1)

    def test_remove(self, config):
        config.add("alu", "schematic", 1)
        config.remove("alu", "schematic")
        assert config.version_of("alu", "schematic") is None
        assert len(config) == 0

    def test_remove_unpinned_raises(self, config):
        with pytest.raises(FMCADError):
            config.remove("alu", "schematic")


class TestValidation:
    def test_clean_configuration(self, config):
        config.add("alu", "schematic", 1)
        assert config.validate() == []

    def test_detects_deleted_version_file(self, config, library):
        config.add("alu", "schematic", 2)
        version = library.cellview("alu", "schematic").version(2)
        version.path.unlink()
        problems = config.validate()
        assert problems and "file missing" in problems[0]
