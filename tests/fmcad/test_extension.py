"""Unit tests for the extension-language interpreter."""

import pytest

from repro.errors import ExtensionLanguageError
from repro.fmcad.extension import ExtensionInterpreter, parse, tokenize


@pytest.fixture
def interp():
    return ExtensionInterpreter()


class TestReader:
    def test_tokenize_basic(self):
        assert tokenize("(+ 1 2)") == ["(", "+", "1", "2", ")"]

    def test_tokenize_strings_with_spaces(self):
        tokens = tokenize('(print "hello world")')
        assert '"hello world"' in tokens

    def test_tokenize_comments_ignored(self):
        assert tokenize("; comment\n(f)") == ["(", "f", ")"]

    def test_unterminated_string_raises(self):
        with pytest.raises(ExtensionLanguageError):
            tokenize('"oops')

    def test_parse_nested(self):
        forms = parse("(a (b c) d)")
        assert len(forms) == 1
        assert forms[0][1] == ["b", "c"]

    def test_parse_quote_sugar(self):
        forms = parse("'(1 2)")
        assert forms[0][0] == "quote"

    def test_missing_paren_raises(self):
        with pytest.raises(ExtensionLanguageError):
            parse("(a (b)")

    def test_stray_paren_raises(self):
        with pytest.raises(ExtensionLanguageError):
            parse(")")


class TestEvaluation:
    def test_arithmetic(self, interp):
        assert interp.run("(+ 1 2 3)") == 6
        assert interp.run("(- 10 3 2)") == 5
        assert interp.run("(* 2 3 4)") == 24
        assert interp.run("(/ 10 4)") == 2.5

    def test_division_by_zero(self, interp):
        with pytest.raises(ExtensionLanguageError):
            interp.run("(/ 1 0)")

    def test_comparisons(self, interp):
        assert interp.run("(< 1 2)") is True
        assert interp.run("(>= 2 2)") is True
        assert interp.run("(= 1 1)") is True
        assert interp.run('(equal "a" "a")') is True

    def test_string_literal_strips_quotes(self, interp):
        assert interp.run('"session:000001"') == "session:000001"

    def test_if_branches(self, interp):
        assert interp.run("(if (< 1 2) 10 20)") == 10
        assert interp.run("(if (> 1 2) 10 20)") == 20
        assert interp.run("(if nil 1)") is None

    def test_cond(self, interp):
        program = "(cond ((= 1 2) 10) ((= 1 1) 20) (t 30))"
        assert interp.run(program) == 20

    def test_define_value_and_setq(self, interp):
        interp.run("(define x 5) (setq x (+ x 1))")
        assert interp.run("x") == 6

    def test_setq_unbound_raises(self, interp):
        with pytest.raises(ExtensionLanguageError):
            interp.run("(setq ghost 1)")

    def test_define_procedure_and_call(self, interp):
        interp.run("(define (double n) (* n 2))")
        assert interp.run("(double 21)") == 42
        assert interp.call("double", [5]) == 10

    def test_procedure_skill_spelling(self, interp):
        interp.run("(procedure (inc n) (+ n 1))")
        assert interp.call("inc", [1]) == 2

    def test_wrong_arity_raises(self, interp):
        interp.run("(define (f a b) a)")
        with pytest.raises(ExtensionLanguageError):
            interp.call("f", [1])

    def test_lambda_and_closure(self, interp):
        interp.run(
            "(define (adder n) (lambda (x) (+ x n)))"
            "(define add5 (adder 5))"
        )
        assert interp.run("(add5 3)") == 8

    def test_let_scoping(self, interp):
        interp.run("(define x 1)")
        assert interp.run("(let ((x 10) (y 2)) (+ x y))") == 12
        assert interp.run("x") == 1

    def test_while_loop(self, interp):
        interp.run(
            "(define i 0) (define total 0)"
            "(while (< i 5) (setq total (+ total i)) (setq i (+ i 1)))"
        )
        assert interp.run("total") == 10

    def test_while_iteration_limit(self, interp):
        interp.MAX_ITERATIONS = 100
        with pytest.raises(ExtensionLanguageError):
            interp.run("(while t 1)")

    def test_and_or_short_circuit(self, interp):
        assert interp.run("(and 1 2 3)") == 3
        assert interp.run("(and 1 nil 3)") is None
        assert interp.run("(or nil 2 3)") == 2

    def test_when_unless(self, interp):
        assert interp.run("(when (< 1 2) 1 2 3)") == 3
        assert interp.run("(unless (< 1 2) 99)") is None

    def test_list_operations(self, interp):
        assert interp.run("(car (list 1 2 3))") == 1
        assert interp.run("(cdr (list 1 2 3))") == [2, 3]
        assert interp.run("(cons 0 (list 1))") == [0, 1]
        assert interp.run("(length (append (list 1) (list 2 3)))") == 3
        assert interp.run("(nth 1 (list 10 20 30))") == 20
        assert interp.run("(member 2 (list 1 2))") is True

    def test_strcat(self, interp):
        assert interp.run('(strcat "a" "b" 1)') == "ab1"

    def test_print_collects_output(self, interp):
        interp.run('(print "hello" 42)')
        assert interp.output == ["hello 42"]

    def test_unbound_symbol_raises(self, interp):
        with pytest.raises(ExtensionLanguageError):
            interp.run("ghost")

    def test_calling_non_callable_raises(self, interp):
        interp.run("(define x 5)")
        with pytest.raises(ExtensionLanguageError):
            interp.run("(x 1)")


class TestHostIntegration:
    def test_register_builtin(self, interp):
        seen = []
        interp.register_builtin("host-log", lambda msg: seen.append(msg))
        interp.run('(host-log "from-script")')
        assert seen == ["from-script"]

    def test_builtin_exception_wrapped(self, interp):
        def boom():
            raise ValueError("no")

        interp.register_builtin("boom", boom)
        with pytest.raises(ExtensionLanguageError):
            interp.run("(boom)")


class TestTriggers:
    def test_trigger_fires_procedures(self, interp):
        interp.run("(define hits 0) (define (on-save) (setq hits (+ hits 1)))")
        interp.add_trigger("save", "on-save")
        interp.fire_trigger("save")
        interp.fire_trigger("save")
        assert interp.run("hits") == 2

    def test_trigger_receives_arguments(self, interp):
        interp.run("(define last nil) (define (on-open name) (setq last name))")
        interp.add_trigger("open", "on-open")
        interp.fire_trigger("open", "alu")
        assert interp.run("last") == "alu"

    def test_trigger_on_unknown_procedure_raises(self, interp):
        with pytest.raises(ExtensionLanguageError):
            interp.add_trigger("save", "ghost-proc")

    def test_unattached_event_is_noop(self, interp):
        assert interp.fire_trigger("nothing") == []

    def test_triggers_for_lists_names(self, interp):
        interp.run("(define (p) 1)")
        interp.add_trigger("e", "p")
        assert interp.triggers_for("e") == ["p"]
