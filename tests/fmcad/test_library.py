"""Unit tests for FMCAD libraries."""

import pytest

from repro.errors import LibraryError
from repro.fmcad.library import Library


@pytest.fixture
def library(tmp_path, clock):
    return Library("mylib", tmp_path, clock=clock)


class TestStructure:
    def test_library_creates_directory(self, library):
        assert library.directory.is_dir()

    def test_invalid_library_name(self, tmp_path):
        with pytest.raises(LibraryError):
            Library("bad/name", tmp_path)

    def test_create_cell_makes_directory(self, library):
        library.create_cell("alu")
        assert (library.directory / "alu").is_dir()

    def test_duplicate_cell_rejected(self, library):
        library.create_cell("alu")
        with pytest.raises(LibraryError):
            library.create_cell("alu")

    def test_hidden_cell_name_rejected(self, library):
        with pytest.raises(LibraryError):
            library.create_cell(".meta")

    def test_cellview_requires_cell(self, library):
        with pytest.raises(LibraryError):
            library.create_cellview("ghost", "schematic")

    def test_cellview_viewtype_defaults_to_view_name(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "layout")
        assert cellview.viewtype.name == "layout"

    def test_cells_sorted(self, library):
        library.create_cell("zz")
        library.create_cell("aa")
        assert [c.name for c in library.cells()] == ["aa", "zz"]


class TestVersionData:
    def test_write_version_creates_file(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        version = library.write_version(cellview, b"data1", "alice")
        assert version.number == 1
        assert version.path.read_bytes() == b"data1"

    def test_versions_advance(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"v1", "alice")
        v2 = library.write_version(cellview, b"v2", "bob")
        assert v2.number == 2
        assert cellview.default_version.number == 2

    def test_read_default_version(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"v1", "alice")
        library.write_version(cellview, b"v2", "alice")
        assert library.read_version(cellview) == b"v2"

    def test_read_specific_version(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"v1", "alice")
        library.write_version(cellview, b"v2", "alice")
        assert library.read_version(cellview, 1) == b"v1"

    def test_read_empty_cellview_raises(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        with pytest.raises(LibraryError):
            library.read_version(cellview)

    def test_io_charges_native_cost(self, library, clock):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"x" * 100, "alice")
        assert clock.elapsed_by_category()["native_io"] > 0


class TestMetaMaintenance:
    def test_flush_and_snapshot(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"v1", "alice")
        assert library.flush_meta("alice")
        snapshot = library.snapshot("bob")
        assert snapshot.versions_of("alu", "schematic") == [1]
        assert not snapshot.is_stale(library)

    def test_snapshot_goes_stale_without_flush(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"v1", "alice")
        library.flush_meta("alice")
        snapshot = library.snapshot("bob")
        library.write_version(cellview, b"v2", "carol")  # no flush!
        assert snapshot.is_stale(library)
        # bob's picture still shows only version 1
        assert snapshot.versions_of("alu", "schematic") == [1]

    def test_flush_denied_while_lock_held(self, library):
        library.create_cell("alu")
        library.metafile.acquire("someone_else")
        assert not library.flush_meta("alice")

    def test_verify_meta_detects_unflushed_state(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"v1", "alice")
        problems = library.verify_meta()
        assert any("missing from .meta" in p for p in problems)

    def test_verify_meta_clean_after_flush(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"v1", "alice")
        library.flush_meta("alice")
        assert library.verify_meta() == []

    def test_verify_meta_detects_dangling_records(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"v1", "alice")
        library.flush_meta("alice")
        # simulate a lost version file record mismatch by rewriting .meta
        # with an extra phantom version
        from repro.fmcad.metafile import MetaRecord

        records, tick = library.metafile.read()
        records.append(
            MetaRecord("alu", "schematic", "schematic", 99,
                       "v0099.dat", "ghost", 99)
        )
        library.metafile.acquire("x")
        library.metafile.write(records, tick, "x")
        library.metafile.release("x")
        problems = library.verify_meta()
        assert any("dangling" in p for p in problems)


class TestStats:
    def test_stats_shape(self, library):
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"12345", "alice")
        stats = library.stats()
        assert stats["cells"] == 1
        assert stats["cellviews"] == 1
        assert stats["versions"] == 1
        assert stats["bytes"] == 5


class TestReopenFromDisk:
    def make_flushed_library(self, tmp_path, clock):
        library = Library("persist", tmp_path / "libs", clock=clock)
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        version = library.write_version(cellview, b"v1 data", "alice")
        version.properties.set("jcf_oid", "DesignObjectVersion:000001")
        library.write_version(cellview, b"v2 data", "alice")
        library.flush_meta("alice")
        return library

    def test_open_recovers_structure(self, tmp_path, clock):
        self.make_flushed_library(tmp_path, clock)
        reopened = Library.open("persist", tmp_path / "libs", clock=clock)
        cellview = reopened.cellview("alu", "schematic")
        assert [v.number for v in cellview.versions] == [1, 2]
        assert reopened.read_version(cellview) == b"v2 data"
        assert reopened.read_version(cellview, 1) == b"v1 data"

    def test_open_recovers_property_sidecars(self, tmp_path, clock):
        self.make_flushed_library(tmp_path, clock)
        reopened = Library.open("persist", tmp_path / "libs", clock=clock)
        version = reopened.cellview("alu", "schematic").version(1)
        assert version.properties.get("jcf_oid") == \
            "DesignObjectVersion:000001"

    def test_open_preserves_tick(self, tmp_path, clock):
        original = self.make_flushed_library(tmp_path, clock)
        reopened = Library.open("persist", tmp_path / "libs", clock=clock)
        assert reopened.tick == original.metafile.tick()
        assert reopened.verify_meta() == []

    def test_unflushed_versions_become_orphans(self, tmp_path, clock):
        library = self.make_flushed_library(tmp_path, clock)
        cellview = library.cellview("alu", "schematic")
        library.write_version(cellview, b"never flushed", "bob")
        reopened = Library.open("persist", tmp_path / "libs", clock=clock)
        assert len(reopened.cellview("alu", "schematic").versions) == 2
        orphans = reopened.orphaned_files()
        assert len(orphans) == 1
        assert orphans[0].read_bytes() == b"never flushed"

    def test_open_empty_directory(self, tmp_path, clock):
        Library("fresh", tmp_path / "libs", clock=clock)
        reopened = Library.open("fresh", tmp_path / "libs", clock=clock)
        assert reopened.cells() == []
