"""Unit tests for the checkout/checkin concurrency model (Section 2.2)."""

import pytest

from repro.errors import CheckoutError, LockedError
from repro.fmcad.checkout import CheckoutManager
from repro.fmcad.library import Library


@pytest.fixture
def library(tmp_path, clock):
    lib = Library("lib", tmp_path / "libs", clock=clock)
    lib.create_cell("alu")
    cellview = lib.create_cellview("alu", "schematic")
    lib.write_version(cellview, b"base version", "setup")
    return lib


@pytest.fixture
def manager(tmp_path):
    return CheckoutManager(tmp_path / "work")


class TestCheckout:
    def test_checkout_copies_base_version(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        assert ticket.working_path.read_bytes() == b"base version"
        assert ticket.base_version == 1

    def test_checkout_sets_locked_flag(self, manager, library):
        manager.checkout("alice", library, "alu", "schematic")
        assert library.cellview("alu", "schematic").locked_by == "alice"

    def test_second_checkout_denied(self, manager, library):
        manager.checkout("alice", library, "alu", "schematic")
        with pytest.raises(LockedError):
            manager.checkout("bob", library, "alu", "schematic")
        assert manager.denied_checkouts == 1

    def test_even_same_user_cannot_double_checkout(self, manager, library):
        """Only one version of a cellview can be checked out at a time."""
        manager.checkout("alice", library, "alu", "schematic")
        with pytest.raises(LockedError):
            manager.checkout("alice", library, "alu", "schematic")

    def test_checkout_of_empty_cellview(self, manager, library):
        library.create_cellview("alu", "layout")
        ticket = manager.checkout("alice", library, "alu", "layout")
        assert ticket.base_version is None
        assert ticket.working_path.read_bytes() == b""

    def test_denied_checkout_charges_lock_wait(self, manager, library, clock):
        manager.checkout("alice", library, "alu", "schematic")
        with pytest.raises(LockedError):
            manager.checkout("bob", library, "alu", "schematic")
        assert clock.elapsed_by_category()["lock_wait"] > 0


class TestCheckin:
    def test_checkin_creates_new_version(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        version = manager.checkin(ticket, library, b"edited")
        assert version.number == 2
        assert library.read_version(
            library.cellview("alu", "schematic")
        ) == b"edited"

    def test_checkin_uses_working_file_by_default(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        ticket.working_path.write_bytes(b"worked on")
        version = manager.checkin(ticket, library)
        assert version.read_data() == b"worked on"

    def test_checkin_unlocks(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        manager.checkin(ticket, library, b"x")
        assert library.cellview("alu", "schematic").locked_by is None
        # now bob can check out
        manager.checkout("bob", library, "alu", "schematic")

    def test_double_checkin_raises(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        manager.checkin(ticket, library, b"x")
        with pytest.raises(CheckoutError):
            manager.checkin(ticket, library, b"y")

    def test_checkin_removes_working_file(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        manager.checkin(ticket, library, b"x")
        assert not ticket.working_path.exists()


class TestCancel:
    def test_cancel_unlocks_without_version(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        manager.cancel(ticket, library)
        cellview = library.cellview("alu", "schematic")
        assert cellview.locked_by is None
        assert len(cellview.versions) == 1  # no new version

    def test_cancel_then_checkin_raises(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        manager.cancel(ticket, library)
        with pytest.raises(CheckoutError):
            manager.checkin(ticket, library, b"x")


class TestAccounting:
    def test_stats(self, manager, library):
        ticket = manager.checkout("alice", library, "alu", "schematic")
        with pytest.raises(LockedError):
            manager.checkout("bob", library, "alu", "schematic")
        stats = manager.stats()
        assert stats == {
            "active": 1,
            "granted": 1,
            "denied": 1,
            "validated_working_files": 0,
            "cloned_working_files": stats["cloned_working_files"],
        }
        # whether the working file was cloned in-kernel or copied depends
        # on what the filesystem under the workdir supports
        assert stats["cloned_working_files"] in (0, 1)
        manager.checkin(ticket, library, b"x")
        assert manager.stats()["active"] == 0

    def test_holder_of(self, manager, library):
        cellview = library.cellview("alu", "schematic")
        assert manager.holder_of(library, cellview) is None
        manager.checkout("alice", library, "alu", "schematic")
        assert manager.holder_of(library, cellview) == "alice"
