"""Unit tests for the library .meta file."""

import pytest

from repro.errors import MetaFileError
from repro.fmcad.metafile import MetaFile, MetaRecord


@pytest.fixture
def metafile(tmp_path):
    return MetaFile(tmp_path / ".meta")


def record(cell="alu", view="schematic", version=1):
    return MetaRecord(
        cell=cell,
        view=view,
        viewtype=view,
        version=version,
        filename=f"v{version:04d}.dat",
        author="alice",
        tick=version,
    )


class TestRecordFormat:
    def test_round_trip(self):
        original = record()
        assert MetaRecord.from_line(original.to_line()) == original

    def test_malformed_line_raises(self):
        with pytest.raises(MetaFileError):
            MetaRecord.from_line("too|few|fields")

    def test_non_numeric_version_raises(self):
        with pytest.raises(MetaFileError):
            MetaRecord.from_line("a|b|c|xx|f|u|1")


class TestIO:
    def test_missing_file_reads_empty(self, metafile):
        records, tick = metafile.read()
        assert records == [] and tick == 0

    def test_write_read_round_trip(self, metafile):
        assert metafile.acquire("alice")
        metafile.write([record(version=2), record(version=1)], tick=5,
                       user="alice")
        metafile.release("alice")
        records, tick = metafile.read()
        assert tick == 5
        assert [r.version for r in records] == [1, 2]  # sorted

    def test_write_without_lock_raises(self, metafile):
        with pytest.raises(MetaFileError):
            metafile.write([record()], tick=1, user="alice")

    def test_corrupt_header_raises(self, metafile):
        metafile.path.write_text("garbage\n")
        with pytest.raises(MetaFileError):
            metafile.read()

    def test_missing_tick_line_raises(self, metafile):
        metafile.path.write_text("#FMCAD-META 1\n")
        with pytest.raises(MetaFileError):
            metafile.read()

    def test_index_keys(self, metafile):
        metafile.acquire("a")
        metafile.write([record(version=1), record(version=2)], 2, "a")
        metafile.release("a")
        index = metafile.index()
        assert ("alu", "schematic", 2) in index


class TestWriterLock:
    def test_acquire_release(self, metafile):
        assert metafile.acquire("alice")
        assert metafile.writer == "alice"
        metafile.release("alice")
        assert metafile.writer is None

    def test_reacquire_by_same_user_ok(self, metafile):
        assert metafile.acquire("alice")
        assert metafile.acquire("alice")

    def test_contention_counted(self, metafile):
        metafile.acquire("alice")
        assert not metafile.acquire("bob")
        assert not metafile.acquire("carol")
        assert metafile.contended_acquires == 2
        assert metafile.total_acquires == 3

    def test_release_by_non_holder_raises(self, metafile):
        metafile.acquire("alice")
        with pytest.raises(MetaFileError):
            metafile.release("bob")
