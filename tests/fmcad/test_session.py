"""Unit tests for tool sessions and lockable menus."""

import pytest

from repro.errors import FMCADError, MenuLockedError
from repro.fmcad.session import ToolSession


@pytest.fixture
def session(clock):
    return ToolSession("session:1", "schematic_editor", "alice", clock)


class TestMenus:
    def test_invoke_runs_action(self, session):
        session.register_menu("save", lambda: "saved")
        assert session.invoke_menu("save") == "saved"
        assert session.menu("save").invocations == 1

    def test_invoke_passes_arguments(self, session):
        session.register_menu("add", lambda a, b: a + b)
        assert session.invoke_menu("add", 2, 3) == 5

    def test_duplicate_menu_rejected(self, session):
        session.register_menu("save", lambda: None)
        with pytest.raises(FMCADError):
            session.register_menu("save", lambda: None)

    def test_unknown_menu_raises(self, session):
        with pytest.raises(FMCADError):
            session.invoke_menu("ghost")

    def test_locked_menu_raises_with_reason(self, session):
        session.register_menu("checkin", lambda: None)
        session.lock_menu("checkin", "JCF owns versioning")
        with pytest.raises(MenuLockedError, match="JCF owns versioning"):
            session.invoke_menu("checkin")

    def test_locked_menu_does_not_run_action(self, session):
        calls = []
        session.register_menu("checkin", lambda: calls.append(1))
        session.lock_menu("checkin", "guard")
        with pytest.raises(MenuLockedError):
            session.invoke_menu("checkin")
        assert calls == []

    def test_unlock_restores(self, session):
        session.register_menu("checkin", lambda: "ok")
        session.lock_menu("checkin", "guard")
        session.unlock_menu("checkin")
        assert session.invoke_menu("checkin") == "ok"

    def test_menu_names_sorted(self, session):
        session.register_menu("zz", lambda: None)
        session.register_menu("aa", lambda: None)
        assert session.menu_names() == ["aa", "zz"]


class TestCosts:
    def test_startup_charged(self, clock):
        before = clock.now_ms
        ToolSession("s", "t", "u", clock)
        assert clock.elapsed_by_category()["tool"] > 0
        assert clock.now_ms > before

    def test_menu_invocation_charges_ui(self, session, clock):
        session.register_menu("save", lambda: None)
        ui_before = clock.elapsed_by_category().get("ui", 0.0)
        session.invoke_menu("save")
        assert clock.elapsed_by_category()["ui"] > ui_before

    def test_locked_invocation_still_costs_the_click(self, session, clock):
        session.register_menu("save", lambda: None)
        session.lock_menu("save", "guard")
        ui_before = clock.elapsed_by_category().get("ui", 0.0)
        with pytest.raises(MenuLockedError):
            session.invoke_menu("save")
        assert clock.elapsed_by_category()["ui"] > ui_before


class TestConsistencyWindows:
    def test_window_recorded_and_charged(self, session, clock):
        ui_before = clock.elapsed_by_category().get("ui", 0.0)
        session.show_consistency_window("predecessor not finished")
        assert session.consistency_windows == ["predecessor not finished"]
        assert clock.elapsed_by_category()["ui"] > ui_before


class TestLifecycle:
    def test_closed_session_rejects_operations(self, session):
        session.register_menu("save", lambda: None)
        session.close()
        with pytest.raises(FMCADError):
            session.invoke_menu("save")
        with pytest.raises(FMCADError):
            session.show_consistency_window("late")
