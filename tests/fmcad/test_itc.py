"""Unit tests for inter-tool communication and cross-probing."""

import pytest

from repro.errors import ITCError
from repro.fmcad.itc import CrossProbe, ITCBus


@pytest.fixture
def bus():
    return ITCBus()


class TestSubscriptions:
    def test_subscribe_and_publish(self, bus):
        received = []
        bus.subscribe("s1", "topic", received.append)
        bus.publish("s2", "topic", {"k": "v"})
        assert len(received) == 1
        assert received[0].payload == {"k": "v"}

    def test_sender_does_not_receive_own_message(self, bus):
        received = []
        bus.subscribe("s1", "topic", received.append)
        bus.publish("s1", "topic", {})
        assert received == []

    def test_double_subscribe_raises(self, bus):
        bus.subscribe("s1", "t", lambda m: None)
        with pytest.raises(ITCError):
            bus.subscribe("s1", "t", lambda m: None)

    def test_unsubscribe(self, bus):
        received = []
        bus.subscribe("s1", "t", received.append)
        bus.unsubscribe("s1", "t")
        bus.publish("s2", "t", {})
        assert received == []

    def test_unsubscribe_unknown_raises(self, bus):
        with pytest.raises(ITCError):
            bus.unsubscribe("ghost", "t")

    def test_subscribers_listing(self, bus):
        bus.subscribe("s1", "t", lambda m: None)
        bus.subscribe("s2", "t", lambda m: None)
        assert bus.subscribers("t") == ["s1", "s2"]

    def test_sequence_numbers_increase(self, bus):
        m1 = bus.publish("s", "t", {})
        m2 = bus.publish("s", "t", {})
        assert m2.sequence > m1.sequence


class TestInterceptors:
    def test_interceptor_can_veto(self, bus):
        received = []
        bus.subscribe("s1", "t", received.append)
        bus.add_interceptor(lambda m: None)
        result = bus.publish("s2", "t", {"x": 1})
        assert result is None
        assert received == []
        assert len(bus.vetoed) == 1

    def test_interceptor_can_rewrite(self, bus):
        import dataclasses

        received = []
        bus.subscribe("s1", "t", received.append)
        bus.add_interceptor(
            lambda m: dataclasses.replace(
                m, payload={**m.payload, "checked": True}
            )
        )
        bus.publish("s2", "t", {"x": 1})
        assert received[0].payload == {"x": 1, "checked": True}

    def test_interceptors_chain(self, bus):
        order = []

        def first(m):
            order.append("first")
            return m

        def second(m):
            order.append("second")
            return m

        bus.add_interceptor(first)
        bus.add_interceptor(second)
        bus.publish("s", "t", {})
        assert order == ["first", "second"]


class TestCrossProbe:
    def test_probe_highlights_in_peer(self, bus):
        schematic = CrossProbe(bus, "schematic_session")
        layout = CrossProbe(bus, "layout_session")
        schematic.probe("net_clk")
        assert layout.highlighted == ["net_clk"]
        assert schematic.highlighted == []  # not self

    def test_bidirectional_probing(self, bus):
        schematic = CrossProbe(bus, "s")
        layout = CrossProbe(bus, "l")
        layout.probe("net_a")
        schematic.probe("net_b")
        assert schematic.highlighted == ["net_a"]
        assert layout.highlighted == ["net_b"]
