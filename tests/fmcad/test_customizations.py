"""Unit tests for the standard extension-language customizations."""

import pytest

from repro.fmcad.customizations import (
    apply_standard_customizations,
    audit_counts,
    pending_reminders,
    watch_cell,
    watch_hits,
)


@pytest.fixture
def customized(fmcad):
    apply_standard_customizations(fmcad)
    return fmcad


class TestInvocationAudit:
    def test_counts_accumulate_per_tool(self, customized):
        for _ in range(3):
            customized.log_invocation("schematic_editor", "alice",
                                      "alu", "schematic")
        customized.log_invocation("layout_editor", "alice", "alu",
                                  "layout")
        counts = audit_counts(customized)
        assert counts == {"schematic_editor": 3, "layout_editor": 1}

    def test_counts_queryable_from_lisp(self, customized):
        customized.log_invocation("schematic_editor", "alice", "alu",
                                  "schematic")
        assert customized.interpreter.run(
            '(audit-count "schematic_editor")'
        ) == 1
        assert customized.interpreter.run(
            '(audit-count "never_run")'
        ) == 0

    def test_no_invocations_empty_audit(self, customized):
        assert audit_counts(customized) == {}


class TestSaveReminder:
    def test_reminder_after_threshold(self, customized):
        for _ in range(5):
            customized.log_invocation("schematic_editor", "bob", "alu",
                                      "schematic")
        reminders = pending_reminders(customized)
        assert reminders == ["save your work, bob"]

    def test_counter_resets_after_reminder(self, customized):
        for _ in range(10):
            customized.log_invocation("schematic_editor", "bob", "alu",
                                      "schematic")
        assert len(pending_reminders(customized)) == 2

    def test_below_threshold_no_reminder(self, customized):
        for _ in range(4):
            customized.log_invocation("schematic_editor", "bob", "alu",
                                      "schematic")
        assert pending_reminders(customized) == []


class TestWatchlist:
    def test_watched_cell_flagged(self, customized):
        watch_cell(customized, "top")
        customized.log_invocation("layout_editor", "carol", "top",
                                  "layout")
        customized.log_invocation("layout_editor", "carol", "other",
                                  "layout")
        hits = watch_hits(customized)
        assert hits == ["carol touched top/layout"]

    def test_unwatched_invocations_silent(self, customized):
        customized.log_invocation("layout_editor", "carol", "alu",
                                  "layout")
        assert watch_hits(customized) == []


class TestThroughTheCoupling:
    def test_coupled_runs_fire_the_customizations(self, adopted_cell):
        from tests.conftest import build_inverter_editor_fn

        hybrid, project, library, cell = adopted_cell
        apply_standard_customizations(hybrid.fmcad)
        watch_cell(hybrid.fmcad, cell)
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        counts = audit_counts(hybrid.fmcad)
        assert counts.get("schematic_editor") == 1
        assert watch_hits(hybrid.fmcad) == [
            f"alice touched {cell}/schematic"
        ]
