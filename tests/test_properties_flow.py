"""Property-based tests for flow-order enforcement and DRC invariance."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlowOrderError
from repro.jcf.flows import FlowRegistry, standard_encapsulation_flow
from repro.jcf.framework import JCFFramework
from repro.jcf.model import EXEC_DONE
from repro.tools.layout.drc import run_drc
from repro.tools.layout.editor import Layout
from repro.tools.layout.geometry import LAYERS, Rect

ACTIVITIES = ("schematic_entry", "digital_simulation", "layout_entry")
VALID_ORDER = {name: i for i, name in enumerate(ACTIVITIES)}


def fresh_variant(tmp_root):
    jcf = JCFFramework(tmp_root)
    jcf.register_flow(standard_encapsulation_flow())
    jcf.resources.define_user("admin", "u")
    project = jcf.desktop.create_project("u", "p")
    cell_version = project.create_cell("c").create_version()
    cell_version.attach_flow(jcf.flows.flow_object("jcf_fmcad_flow"))
    return jcf, cell_version.create_variant("v")


class TestFlowOrderProperties:
    @given(st.permutations(ACTIVITIES))
    @settings(max_examples=6, deadline=None)
    def test_any_invocation_order_ends_in_valid_history(self, order):
        """Whatever order a designer tries, the recorded execution
        history always respects the prescribed precedence."""
        import tempfile

        jcf, variant = fresh_variant(tempfile.mkdtemp())
        completed = []
        for activity in order:
            try:
                execution = jcf.engine.start_activity(variant, activity)
            except FlowOrderError:
                continue  # rejected: the designer is told to wait
            jcf.engine.finish_activity(execution)
            completed.append(activity)
        # whatever completed, it completed in prescribed order
        indices = [VALID_ORDER[name] for name in completed]
        assert indices == sorted(indices)
        # and the state machine agrees with the list we built
        state = jcf.engine.state_of(variant)
        done = {
            name
            for name, status in state.status_by_activity.items()
            if status == EXEC_DONE
        }
        assert done == set(completed)

    @given(st.permutations(ACTIVITIES), st.integers(0, 2**16))
    @settings(max_examples=6, deadline=None)
    def test_retrying_rejections_always_completes_the_flow(
        self, order, seed
    ):
        """A persistent designer who retries after each rejection always
        finishes — the fixed flow never deadlocks."""
        import tempfile

        jcf, variant = fresh_variant(tempfile.mkdtemp())
        pending = list(order)
        rng = random.Random(seed)
        safety = 0
        while pending:
            safety += 1
            assert safety < 50, "flow deadlocked"
            activity = rng.choice(pending)
            try:
                execution = jcf.engine.start_activity(variant, activity)
            except FlowOrderError:
                continue
            jcf.engine.finish_activity(execution)
            pending.remove(activity)
        assert jcf.engine.state_of(variant).complete


rect_strategy = st.builds(
    lambda layer, x, y, w, h: Rect(layer, x, y, x + w, y + h),
    st.sampled_from(LAYERS),
    st.integers(-200, 200),
    st.integers(-200, 200),
    st.integers(1, 50),
    st.integers(1, 50),
)


class TestDRCProperties:
    @given(
        st.lists(rect_strategy, min_size=1, max_size=10),
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_drc_is_translation_invariant(self, rects, dx, dy):
        """Moving the whole layout never changes its violation count."""
        layout = Layout("a")
        moved = Layout("b")
        for rect in rects:
            layout.add_rect(rect)
            moved.add_rect(rect.translated(dx, dy))
        assert len(run_drc(layout)) == len(run_drc(moved))

    @given(st.lists(rect_strategy, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_adding_geometry_never_fixes_violations(self, rects):
        """DRC violations are monotone: more shapes, never fewer errors
        of the kinds already present (width violations persist)."""
        layout = Layout("a")
        for rect in rects[:-1]:
            layout.add_rect(rect)
        width_before = sum(
            1 for v in run_drc(layout) if v.rule == "width"
        )
        layout.add_rect(rects[-1])
        width_after = sum(
            1 for v in run_drc(layout) if v.rule == "width"
        )
        assert width_after >= width_before
