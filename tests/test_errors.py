"""Unit tests for the exception hierarchy contract.

Callers catch by family (framework vs tool vs coupling); these tests pin
the inheritance relationships the public API documents.
"""

import pytest

from repro import errors


class TestFamilies:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.SchemaError,
            errors.AttributeTypeError,
            errors.UnknownObjectError,
            errors.RelationshipError,
            errors.TransactionError,
            errors.ClosedInterfaceError,
        ],
    )
    def test_oms_family(self, exception):
        assert issubclass(exception, errors.OMSError)
        assert issubclass(exception, errors.ReproError)

    @pytest.mark.parametrize(
        "exception",
        [
            errors.ResourceError,
            errors.AuthorizationError,
            errors.FlowError,
            errors.WorkspaceError,
            errors.VersioningError,
            errors.ConfigurationError,
            errors.ProjectError,
        ],
    )
    def test_jcf_family(self, exception):
        assert issubclass(exception, errors.JCFError)

    @pytest.mark.parametrize(
        "exception",
        [
            errors.LibraryError,
            errors.MetaFileError,
            errors.CheckoutError,
            errors.LockedError,
            errors.ViewTypeError,
            errors.PropertyError,
            errors.ExtensionLanguageError,
            errors.MenuLockedError,
            errors.ITCError,
        ],
    )
    def test_fmcad_family(self, exception):
        assert issubclass(exception, errors.FMCADError)

    @pytest.mark.parametrize(
        "exception",
        [
            errors.SchematicError,
            errors.LayoutError,
            errors.DRCError,
            errors.SimulationError,
        ],
    )
    def test_tool_family(self, exception):
        assert issubclass(exception, errors.ToolError)

    @pytest.mark.parametrize(
        "exception",
        [
            errors.MappingError,
            errors.HierarchyError,
            errors.NonIsomorphicHierarchyError,
            errors.ConsistencyError,
            errors.EncapsulationError,
        ],
    )
    def test_coupling_family(self, exception):
        assert issubclass(exception, errors.CouplingError)


class TestSpecifics:
    def test_locked_is_a_checkout_error(self):
        assert issubclass(errors.LockedError, errors.CheckoutError)

    def test_reservation_conflict_is_a_workspace_error(self):
        assert issubclass(
            errors.ReservationConflictError, errors.WorkspaceError
        )

    def test_flow_order_and_frozen_are_flow_errors(self):
        assert issubclass(errors.FlowOrderError, errors.FlowError)
        assert issubclass(errors.FlowFrozenError, errors.FlowError)

    def test_non_isomorphic_is_a_hierarchy_error(self):
        assert issubclass(
            errors.NonIsomorphicHierarchyError, errors.HierarchyError
        )

    def test_cross_project_sharing_is_a_project_error(self):
        assert issubclass(
            errors.CrossProjectSharingError, errors.ProjectError
        )

    def test_drc_is_a_layout_error(self):
        assert issubclass(errors.DRCError, errors.LayoutError)

    def test_families_are_disjoint(self):
        """A JCF error must never be caught by an FMCAD handler."""
        assert not issubclass(errors.JCFError, errors.FMCADError)
        assert not issubclass(errors.FMCADError, errors.JCFError)
        assert not issubclass(errors.ToolError, errors.CouplingError)
