"""The background scrubber end-to-end on a real coupled workspace.

Runs an actual coupled flow (schematic entry + simulation), damages
artifacts at rest, and asserts the scrubber's contract: detection with
classification, peer repair across the framework boundary in both
directions (OMS blob <-> FMCAD version file), quarantine of artifacts
with no surviving verified copy, and the wiring into
``CouplingRecovery.recover()`` / ``ConsistencyGuard.audit()``.
"""

import hashlib
import io
import random

import pytest

from repro.cli import main
from repro.errors import FMCADError, IntegrityError, QuarantinedError
from repro.faults import FaultPlan, MODE_ZERO, damage_bytes, inject
from repro.fmcad.framework import FMCADFramework
from repro.integrity import Scrubber
from tests.conftest import (
    build_inverter_editor_fn,
    inverter_testbench_fn,
    simple_layout_fn,
)


def run_flow(hybrid, project, library):
    results = [
        hybrid.run_schematic_entry(
            "alice", project, library, "inv2", build_inverter_editor_fn()
        ),
        hybrid.run_simulation(
            "alice", project, library, "inv2", inverter_testbench_fn()
        ),
    ]
    assert all(r.success for r in results)
    return results


def damaged_copy(data: bytes, seed: int = 0) -> bytes:
    return damage_bytes(data, MODE_ZERO, random.Random(seed))


class TestDetectAndRepair:
    def test_clean_workspace_scrubs_clean(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        report = Scrubber(hybrid.jcf, hybrid.fmcad).scrub()
        assert report.clean and report.ok

    def test_version_file_repaired_from_oms_blob(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        cellview = library.cell("inv2").cellview("schematic")
        path = cellview.default_version.path
        pristine = path.read_bytes()
        path.write_bytes(damaged_copy(pristine))

        scrubber = Scrubber(hybrid.jcf, hybrid.fmcad)
        report = scrubber.scrub()
        assert not report.ok
        assert any(
            f.area == "fmcad-version" and f.location == str(path)
            for f in report.findings
        )
        repaired = scrubber.scrub(repair=True)
        assert repaired.ok
        assert path.read_bytes() == pristine
        assert Scrubber(hybrid.jcf, hybrid.fmcad).scrub().ok

    def test_blob_repaired_from_fmcad_version_file(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        # corrupt the next OMS intern: the layout activity checks its
        # design file into FMCAD first, so the damaged blob has a
        # verified peer on the other side of the coupling
        plan = FaultPlan.corrupt("blobs.payload", mode=MODE_ZERO, seed=17)
        with inject(plan):
            try:
                hybrid.run_layout_entry(
                    "alice", project, library, "inv2", simple_layout_fn()
                )
            except IntegrityError:
                pass  # a verified read caught the damage mid-run: fine
        assert plan.corruption_fired

        damaged = hybrid.jcf.db.scrub_payloads()
        scrubber = Scrubber(hybrid.jcf, hybrid.fmcad)
        if not damaged:
            # the damaged intern never survived to rest (the run died
            # before recording it); nothing at rest may be corrupt then
            assert scrubber.scrub().ok
            return
        report = scrubber.scrub(repair=True)
        assert report.ok
        assert hybrid.jcf.db.scrub_payloads() == {}
        for digest in damaged:
            data = hybrid.jcf.db.materialize_payload(digest, verify=True)
            assert hashlib.sha256(data).hexdigest() == digest

    def test_staged_file_repaired_from_oms(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        staged = hybrid.jcf.staging.staged()
        assert staged
        target = staged[0]
        target.path.write_bytes(damaged_copy(target.path.read_bytes()))

        scrubber = Scrubber(hybrid.jcf, hybrid.fmcad)
        report = scrubber.scrub(repair=True)
        assert report.ok
        assert (
            hashlib.sha256(target.path.read_bytes()).hexdigest()
            == target.digest
        )

    def test_meta_file_reflushed_from_live_records(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        library.flush_meta("alice")
        meta_path = library.metafile.path
        meta_path.write_bytes(damaged_copy(meta_path.read_bytes()))

        scrubber = Scrubber(hybrid.jcf, hybrid.fmcad)
        report = scrubber.scrub(repair=True)
        assert report.ok
        assert library.metafile.verify() is None

    def test_snapshot_repaired_from_live_database(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        hybrid.save_state()
        snapshot = hybrid.root / hybrid.SNAPSHOT_NAME
        snapshot.write_bytes(damaged_copy(snapshot.read_bytes()))

        scrubber = Scrubber(hybrid.jcf, hybrid.fmcad)
        assert any(
            f.area == "snapshot" for f in scrubber.scrub().findings
        )
        report = scrubber.scrub(repair=True)
        assert report.ok
        from repro.oms.snapshot import verify_snapshot_bytes

        assert verify_snapshot_bytes(snapshot.read_bytes()) is None


class TestQuarantine:
    def test_version_file_with_no_peer_is_quarantined(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        # a version written outside the coupling: no OMS copy, no
        # staged copy — unrepairable once damaged
        library.create_cell("loner")
        cellview = library.create_cellview("loner", "schematic")
        version = library.write_version(cellview, b"only copy", "alice")
        version.path.write_bytes(b"rotted beyond recognition")

        scrubber = Scrubber(hybrid.jcf, hybrid.fmcad)
        report = scrubber.scrub(repair=True)
        assert report.ok
        quarantined = [
            f for f in report.findings if f.action == "quarantined"
        ]
        assert [f.location for f in quarantined] == [str(version.path)]
        # taken out of service: the bytes are gone from the library...
        assert not version.path.exists()
        # ...and preserved under quarantine for forensics
        assert scrubber.quarantine_dir.is_dir()
        moved = [
            p for p in scrubber.quarantine_dir.iterdir()
            if p.name != "MANIFEST"
        ]
        assert len(moved) == 1
        assert moved[0].read_bytes() == b"rotted beyond recognition"
        # the manifest makes it a known loss, so a fresh scrubber
        # converges instead of rediscovering the corpse
        fresh = Scrubber(hybrid.jcf, hybrid.fmcad)
        assert str(version.path) in fresh.quarantined()
        assert fresh.scrub().ok

    def test_blob_with_no_peer_is_quarantined_never_served(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        # corrupt the next intern of a payload nothing else mirrors:
        # the new digest has no FMCAD file and no staged copy, so the
        # damage is unrepairable by construction
        db = hybrid.jcf.db
        plan = FaultPlan.corrupt("blobs.payload", mode=MODE_ZERO, seed=23)
        staged = hybrid.jcf.staging.staged()
        with inject(plan):
            # re-intern a brand-new payload for a staged object; the
            # old blob stays clean, the new one is born corrupt
            target = staged[0]
            db.set_payload(target.oid, b"fresh bytes nobody mirrors")
        assert plan.corruption_fired
        damaged = db.scrub_payloads()
        assert damaged
        # its staged file still holds the OLD content, so there is no
        # verified peer for the new digest anywhere
        report = Scrubber(hybrid.jcf, hybrid.fmcad).scrub(repair=True)
        assert report.ok
        for digest in damaged:
            assert digest in db.quarantined_payloads()
            with pytest.raises(QuarantinedError):
                db.materialize_payload(digest)

    def test_quarantined_version_is_not_served_from_the_read_cache(
        self, adopted_cell
    ):
        """Cache coherence across the integrity machinery.

        A version's bytes enter the shared read cache on the first
        verified read; when the scrubber later quarantines that version
        the cached bytes must be dropped too — a read after quarantine
        fails instead of resurrecting the artifact from the cache.
        """
        hybrid, project, library, _ = adopted_cell
        assert hybrid.read_cache is not None
        library.create_cell("loner")
        cellview = library.create_cellview("loner", "schematic")
        version = library.write_version(cellview, b"only copy", "alice")
        digest = version.content_digest()
        # the verified read parks the bytes in the shared cache
        assert library.read_version(cellview) == b"only copy"
        assert digest in hybrid.read_cache
        assert library.read_version(cellview) == b"only copy"
        assert library.cache_reads == 1

        version.path.write_bytes(b"rotted beyond recognition")
        report = Scrubber(hybrid.jcf, hybrid.fmcad).scrub(repair=True)
        assert report.ok
        # quarantine evicted the cached bytes; the read cannot fall back
        # to them and fails like any read of a missing artifact
        assert digest not in hybrid.read_cache
        with pytest.raises(FMCADError):
            library.read_version(cellview)

    def test_closed_library_with_ruined_meta_is_quarantined(self, jcf, tmp_path):
        fmcad = FMCADFramework(tmp_path / "fmcad")
        library = fmcad.create_library("coldstore")
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, b"design", "alice")
        library.flush_meta("alice")
        meta_path = library.metafile.path
        meta_path.write_bytes(damaged_copy(meta_path.read_bytes(), seed=4))
        # a fresh framework over the same root has no in-memory records
        # to reflush from — the .meta is unrepairable
        reopened = FMCADFramework(tmp_path / "fmcad")
        scrubber = Scrubber(jcf, reopened)
        report = scrubber.scrub(repair=True)
        assert report.ok
        assert not meta_path.exists()
        assert str(meta_path) in scrubber.quarantined()


class TestRecoveryAndAuditWiring:
    def test_audit_reports_integrity_findings(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        cellview = library.cell("inv2").cellview("schematic")
        path = cellview.default_version.path
        path.write_bytes(damaged_copy(path.read_bytes()))
        report = hybrid.audit()
        assert not report.clean
        assert any(f.category == "integrity" for f in report.findings)

    def test_recover_leaves_a_verified_store(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        cellview = library.cell("inv2").cellview("schematic")
        path = cellview.default_version.path
        pristine = path.read_bytes()
        path.write_bytes(damaged_copy(pristine))

        report = hybrid.recover()
        assert str(path) in " ".join(report.repaired_payloads)
        assert path.read_bytes() == pristine
        assert hybrid.audit().clean
        assert Scrubber(hybrid.jcf, hybrid.fmcad).scrub().ok

    def test_recover_quarantines_the_unrepairable(self, adopted_cell):
        hybrid, project, library, _ = adopted_cell
        run_flow(hybrid, project, library)
        library.create_cell("loner")
        cellview = library.create_cellview("loner", "schematic")
        version = library.write_version(cellview, b"only copy", "alice")
        version.path.write_bytes(b"garbage")

        report = hybrid.recover()
        assert str(version.path) in " ".join(report.quarantined_payloads)
        # the loss is recorded, not silently served — no *integrity*
        # findings remain because it is now a known loss (the version
        # written outside the coupling still audits as an orphan, which
        # is a coupling-protocol matter, not a storage one)
        assert not any(
            f.category == "integrity" for f in hybrid.audit().findings
        )
        assert Scrubber(hybrid.jcf, hybrid.fmcad).scrub().ok


class TestScrubCLI:
    def _saved_workspace(self, tmp_path):
        out = io.StringIO()
        workspace = tmp_path / "ws"
        assert main(["demo", "--workspace", str(workspace)], out=out) == 0
        return workspace

    def test_exit_codes_detect_repair_clean(self, tmp_path):
        workspace = self._saved_workspace(tmp_path)
        victim = next(
            p for p in sorted((workspace / "fmcad" / "libs").rglob("*.dat"))
        )
        victim.write_bytes(damaged_copy(victim.read_bytes()))

        out = io.StringIO()
        assert main(["scrub", "--workspace", str(workspace)], out=out) == 1
        assert "bit-rot" in out.getvalue() or "torn-write" in out.getvalue()
        out = io.StringIO()
        assert (
            main(["scrub", "--workspace", str(workspace), "--repair"], out=out)
            == 0
        )
        out = io.StringIO()
        assert main(["scrub", "--workspace", str(workspace)], out=out) == 0
        assert "verify clean" in out.getvalue()

    def test_exit_code_2_for_unopenable_workspace(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["scrub", "--workspace", str(tmp_path / "nowhere")], out=out
        )
        assert code == 2
        assert "error:" in out.getvalue()

    def test_clean_default_environment_exits_zero(self):
        out = io.StringIO()
        assert main(["scrub"], out=out) == 0
