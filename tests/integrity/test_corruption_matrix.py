"""Corruption matrix: every corruption point x damage mode.

For each registered corruption point (``blobs.payload``,
``staging.file``, ``fmcad.version_file``, ``fmcad.meta``,
``oms.snapshot``) and each damage mode (flip / truncate / zero) the
matrix asserts the three-step contract of the integrity layer:

* **detect** — the damage is classified by the matching scrub sweep and
  every read of the damaged artifact raises a typed
  :class:`~repro.errors.IntegrityError` instead of serving garbage;
* **repair** — rewriting from a verified source restores the artifact
  byte-for-byte and the sweep comes back clean;
* **quarantine** — when no verified source exists, the artifact is taken
  out of service and is never served afterwards.
"""

import hashlib

import pytest

from repro.errors import (
    IntegrityError,
    MetaFileError,
    MetaIntegrityError,
    OMSError,
    QuarantinedError,
    SnapshotIntegrityError,
)
from repro.faults import (
    CORRUPTION_MODES,
    CORRUPTION_POINTS,
    CorruptionFault,
    FaultPlan,
    FaultRule,
    KIND_CORRUPT,
    MODE_TRUNCATE,
    damage_bytes,
    inject,
)
from repro.oms.snapshot import (
    dump_snapshot,
    restore_snapshot,
    verify_snapshot_bytes,
)
from repro.oms.storage import StagingArea

PAYLOAD = b"module inv(input a, output y); assign y = !a; endmodule\n" * 8


# -- the fault machinery itself -----------------------------------------------


class TestCorruptionMachinery:
    def test_damage_bytes_always_changes(self):
        import random

        for mode in CORRUPTION_MODES:
            for seed in range(20):
                data = bytes(range(256)) * 2
                damaged = damage_bytes(data, mode, random.Random(seed))
                assert damaged != data, (mode, seed)

    def test_damage_bytes_empty_payload_grows_poison_byte(self):
        import random

        for mode in CORRUPTION_MODES:
            assert damage_bytes(b"", mode, random.Random(0)) == b"\x00"

    def test_damage_is_deterministic_per_seed(self):
        plan_a = FaultPlan.corrupt("blobs.payload", seed=42)
        plan_b = FaultPlan.corrupt("blobs.payload", seed=42)
        assert (
            plan_a.hit_with_data("blobs.payload", PAYLOAD)
            == plan_b.hit_with_data("blobs.payload", PAYLOAD)
        )

    def test_random_corruption_plan_is_seeded(self):
        for seed in range(10):
            a = FaultPlan.random_corruption_plan(seed)
            b = FaultPlan.random_corruption_plan(seed)
            assert a.points == b.points
            assert a.points[0] in CORRUPTION_POINTS

    def test_corrupt_rule_rejected_at_non_corruption_point(self):
        with pytest.raises(ValueError):
            FaultRule("blobs.intern", KIND_CORRUPT)

    def test_corrupt_rule_at_dataless_traversal_fails_loudly(self):
        # a corruption point may also be traversed via plain hit() by
        # mistake; the plan must not silently never-corrupt
        plan = FaultPlan.corrupt("blobs.payload")
        with pytest.raises(CorruptionFault):
            plan.hit("blobs.payload")

    def test_no_active_plan_is_identity(self):
        from repro.faults import corruption_point

        assert corruption_point("blobs.payload", PAYLOAD) is PAYLOAD


# -- blobs.payload ------------------------------------------------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
class TestBlobPayloadPoint:
    def _corrupted_object(self, db, mode):
        with inject(FaultPlan.corrupt("blobs.payload", mode=mode, seed=3)) as plan:
            obj = db.create("Thing", {"name": "x"}, payload=PAYLOAD)
        assert plan.corruption_fired
        digest = db.payload_digest_of(obj.oid)
        assert digest == hashlib.sha256(PAYLOAD).hexdigest()
        return obj, digest

    def test_detected_and_never_served(self, db, mode):
        obj, digest = self._corrupted_object(db, mode)
        findings = db.scrub_payloads()
        assert list(findings) == [digest]
        assert findings[digest] in ("bit-rot", "truncation", "torn-write")
        with pytest.raises(IntegrityError) as exc_info:
            db.materialize_payload(digest, verify=True)
        assert exc_info.value.location == f"blob:{digest}"
        assert exc_info.value.classification == findings[digest]
        # the default object read path verifies too
        with pytest.raises(IntegrityError):
            obj.payload

    def test_repair_restores_bytes(self, db, mode):
        obj, digest = self._corrupted_object(db, mode)
        db.repair_payload(digest, PAYLOAD)
        assert obj.payload == PAYLOAD
        assert db.scrub_payloads() == {}

    def test_repair_rejects_wrong_bytes(self, db, mode):
        obj, digest = self._corrupted_object(db, mode)
        with pytest.raises(IntegrityError):
            db.repair_payload(digest, PAYLOAD + b"tampered")

    def test_quarantined_blob_is_never_served(self, db, mode):
        obj, digest = self._corrupted_object(db, mode)
        db.quarantine_payload(digest)
        assert digest in db.quarantined_payloads()
        with pytest.raises(QuarantinedError):
            obj.payload
        with pytest.raises(QuarantinedError):
            db.materialize_payload(digest, verify=True)
        # a known loss is not re-reported as fresh damage
        assert digest not in db.scrub_payloads()


# -- staging.file -------------------------------------------------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
class TestStagingFilePoint:
    def _corrupted_export(self, db, tmp_path, mode):
        staging = StagingArea(db, tmp_path / "stage")
        obj = db.create("Thing", {"name": "x"}, payload=PAYLOAD)
        with inject(FaultPlan.corrupt("staging.file", mode=mode, seed=5)) as plan:
            staged = staging.export_object(obj.oid)
        assert plan.corruption_fired
        return staging, obj, staged

    def test_detected(self, db, tmp_path, mode):
        staging, obj, staged = self._corrupted_export(db, tmp_path, mode)
        findings = staging.verify_staged()
        assert [(f[0], f[1]) for f in findings] == [(obj.oid, staged.path)]
        if mode == MODE_TRUNCATE:
            assert findings[0][2] == "truncation"

    def test_repaired_from_verified_oms_payload(self, db, tmp_path, mode):
        staging, obj, staged = self._corrupted_export(db, tmp_path, mode)
        assert staging.repair_staged(obj.oid)
        assert staging.verify_staged() == []
        assert staged.path.read_bytes() == PAYLOAD

    def test_missing_file_detected_and_record_dropped(self, db, tmp_path, mode):
        staging, obj, staged = self._corrupted_export(db, tmp_path, mode)
        staged.path.unlink()
        findings = staging.verify_staged()
        assert findings[0][2] == "missing"
        # repair rewrites the file from OMS
        assert staging.repair_staged(obj.oid)
        assert staged.path.read_bytes() == PAYLOAD


# -- blobs.mmap ---------------------------------------------------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
class TestBlobMmapPoint:
    """Damage landing in the spill file behind a mmap view.

    ``open_view`` verifies the mapping chunk-wise against the content
    address before handing out the first byte, so a damaged spill file
    raises a typed :class:`IntegrityError` — a view can never lend
    garbage.  When mmap is unavailable (the fallback-matrix CI job sets
    ``REPRO_DISABLE_MMAP=1``) the point is never traversed and the heap
    fallback serves pristine bytes instead.
    """

    def test_view_verification_catches_spill_damage(self, db, tmp_path, mode):
        caps = db.enable_payload_views(tmp_path / "views")
        obj = db.create("Thing", {"name": "x"}, payload=PAYLOAD)
        digest = db.payload_digest_of(obj.oid)
        with inject(FaultPlan.corrupt("blobs.mmap", mode=mode, seed=7)) as plan:
            if not caps.mmap:
                # degraded rung: no spill file, so nothing to corrupt —
                # the fallback must still serve pristine bytes
                assert bytes(db.open_payload_view(digest)) == PAYLOAD
                assert not plan.corruption_fired
                return
            with pytest.raises(IntegrityError) as exc_info:
                db.open_payload_view(digest)
        assert plan.corruption_fired
        assert exc_info.value.location == f"blob:{digest}"
        assert exc_info.value.classification in (
            "bit-rot", "truncation", "torn-write"
        )
        # the stored entry itself is undamaged: the verified heap read
        # still serves, and a fresh view maps cleanly
        assert db.materialize_payload(digest, verify=True) == PAYLOAD
        assert bytes(db.open_payload_view(digest)) == PAYLOAD

    def test_no_spill_file_survives_a_refused_view(self, db, tmp_path, mode):
        caps = db.enable_payload_views(tmp_path / "views")
        if not caps.mmap:
            pytest.skip("mmap unavailable: no spill files at all")
        obj = db.create("Thing", {"name": "x"}, payload=PAYLOAD)
        digest = db.payload_digest_of(obj.oid)
        with inject(FaultPlan.corrupt("blobs.mmap", mode=mode, seed=7)):
            with pytest.raises(IntegrityError):
                db.open_payload_view(digest)
        # the damaged spill file was discarded, not left for a later
        # reader to re-map
        assert list((tmp_path / "views").glob("*.view")) == []


# -- staging.reflink ----------------------------------------------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
class TestStagingReflinkPoint:
    """Damage landing on bytes staged via an in-kernel clone.

    A writable export that cloned a peer's bytes (reflink or
    ``copy_file_range``) is covered by the same verify/repair contract
    as a plainly written one: ``verify_staged`` classifies the damage
    and ``repair_staged`` restores the bytes from the verified OMS
    payload.  Without a cloning-capable filesystem the rung is never
    taken and the plain write path serves pristine bytes.
    """

    def _staging(self, db, tmp_path):
        staging = StagingArea(db, tmp_path / "stage")
        peer = db.create("Thing", {"name": "peer"}, payload=PAYLOAD)
        target = db.create("Thing", {"name": "target"}, payload=PAYLOAD)
        staging.export_object(peer.oid)  # seeds the digest index
        return staging, target

    def test_detected_and_repaired(self, db, tmp_path, mode):
        staging, target = self._staging(db, tmp_path)
        with inject(
            FaultPlan.corrupt("staging.reflink", mode=mode, seed=19)
        ) as plan:
            staged = staging.export_object(target.oid, writable=True)
        if staging.export_reflinks == 0:
            # no clone support under this root: the plain write rung ran
            assert not plan.corruption_fired
            assert staged.path.read_bytes() == PAYLOAD
            return
        assert plan.corruption_fired
        findings = staging.verify_staged()
        assert [(f[0], f[1]) for f in findings] == [(target.oid, staged.path)]
        if mode == MODE_TRUNCATE:
            assert findings[0][2] == "truncation"
        # the peer's staged file is a private inode — undamaged
        assert staging.read_staged(
            staging.staged()[0].oid
        ) == PAYLOAD
        assert staging.repair_staged(target.oid)
        assert staging.verify_staged() == []
        assert staged.path.read_bytes() == PAYLOAD

    def test_read_staged_never_serves_the_damage(self, db, tmp_path, mode):
        staging, target = self._staging(db, tmp_path)
        with inject(
            FaultPlan.corrupt("staging.reflink", mode=mode, seed=19)
        ) as plan:
            staging.export_object(target.oid, writable=True)
        if not plan.corruption_fired:
            assert staging.read_staged(target.oid) == PAYLOAD
            return
        with pytest.raises(IntegrityError):
            staging.read_staged(target.oid)


# -- fmcad.version_file -------------------------------------------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
class TestVersionFilePoint:
    def _corrupted_version(self, fmcad, mode):
        library = fmcad.create_library("chiplib")
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        with inject(
            FaultPlan.corrupt("fmcad.version_file", mode=mode, seed=9)
        ) as plan:
            version = library.write_version(cellview, PAYLOAD, "alice")
        assert plan.corruption_fired
        return library, cellview, version

    def test_read_raises_typed_error(self, fmcad, mode):
        library, cellview, version = self._corrupted_version(fmcad, mode)
        with pytest.raises(IntegrityError) as exc_info:
            library.read_version(cellview)
        assert exc_info.value.location == str(version.path)
        assert exc_info.value.classification in (
            "bit-rot", "truncation", "torn-write"
        )

    def test_scrub_versions_finds_it(self, fmcad, mode):
        library, cellview, version = self._corrupted_version(fmcad, mode)
        findings = library.scrub_versions()
        assert [v.path for v, _ in findings] == [version.path]
        # a damaged file is not a valid peer-repair source
        digest = hashlib.sha256(PAYLOAD).hexdigest()
        assert library.verified_version_bytes(digest) is None

    def test_repair_version_restores_bytes(self, fmcad, mode):
        library, cellview, version = self._corrupted_version(fmcad, mode)
        library.repair_version(version, PAYLOAD)
        assert library.read_version(cellview) == PAYLOAD
        assert library.scrub_versions() == []
        digest = hashlib.sha256(PAYLOAD).hexdigest()
        assert library.verified_version_bytes(digest) == PAYLOAD

    def test_repair_rejects_wrong_bytes(self, fmcad, mode):
        library, cellview, version = self._corrupted_version(fmcad, mode)
        with pytest.raises(IntegrityError):
            library.repair_version(version, b"not the original")

    def test_dedup_never_links_onto_rot(self, fmcad, mode):
        """A checkin of identical bytes must not hard-link a rotted file."""
        library, cellview, version = self._corrupted_version(fmcad, mode)
        clean = library.write_version(cellview, PAYLOAD, "alice")
        assert library.read_version(cellview, clean.number) == PAYLOAD


# -- fmcad.meta ---------------------------------------------------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
class TestMetaFilePoint:
    def _corrupted_meta(self, fmcad, mode):
        library = fmcad.create_library("chiplib")
        library.create_cell("alu")
        cellview = library.create_cellview("alu", "schematic")
        library.write_version(cellview, PAYLOAD, "alice")
        with inject(FaultPlan.corrupt("fmcad.meta", mode=mode, seed=11)) as plan:
            assert library.flush_meta("alice")
        assert plan.corruption_fired
        return library

    def test_detected_and_read_raises_typed_error(self, fmcad, mode):
        library = self._corrupted_meta(fmcad, mode)
        assert library.metafile.verify() is not None
        with pytest.raises(MetaIntegrityError) as exc_info:
            library.metafile.read()
        # the typed error keeps both contracts: it is the .meta parse
        # error existing handlers catch AND an integrity error
        assert isinstance(exc_info.value, MetaFileError)
        assert isinstance(exc_info.value, IntegrityError)

    def test_reflush_from_live_records_repairs(self, fmcad, mode):
        library = self._corrupted_meta(fmcad, mode)
        assert library.flush_meta("alice")
        assert library.metafile.verify() is None
        records, _tick = library.metafile.read()
        assert [r.cell for r in records] == ["alu"]
        # the v2 format carries the content digest per version record
        assert records[0].digest == hashlib.sha256(PAYLOAD).hexdigest()


# -- oms.snapshot -------------------------------------------------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
class TestSnapshotPoint:
    def _corrupted_dump(self, db, mode):
        db.create("Thing", {"name": "x"}, payload=PAYLOAD)
        with inject(FaultPlan.corrupt("oms.snapshot", mode=mode, seed=13)) as plan:
            data = dump_snapshot(db)
        assert plan.corruption_fired
        return data

    def test_verify_classifies_damage(self, db, mode):
        data = self._corrupted_dump(db, mode)
        assert verify_snapshot_bytes(data) in ("bit-rot", "torn-write")

    def test_restore_raises_typed_error(self, db, simple_schema, mode):
        data = self._corrupted_dump(db, mode)
        with pytest.raises(OMSError) as exc_info:
            restore_snapshot(simple_schema, data)
        assert isinstance(exc_info.value, SnapshotIntegrityError)
        assert isinstance(exc_info.value, IntegrityError)

    def test_clean_dump_verifies_and_round_trips(self, db, simple_schema, mode):
        obj = db.create("Thing", {"name": "x"}, payload=PAYLOAD)
        data = dump_snapshot(db)
        assert verify_snapshot_bytes(data) is None
        restored = restore_snapshot(simple_schema, data)
        assert restored.get(obj.oid).payload == PAYLOAD
