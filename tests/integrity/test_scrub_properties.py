"""Property suite (hypothesis) for the storage integrity layer.

Two invariants hold for every seeded corruption schedule:

* **fixpoint** — one ``scrub(repair=True)`` pass leaves the store in a
  state a fresh scrubber reports ``ok``: every injected corruption was
  repaired from a verified peer or quarantined as a known loss, never
  left to be rediscovered (or worse, served);
* **no collateral damage** — repairing never alters any artifact that
  still verified clean; every byte the scrubber touches had already
  failed its checksum.
"""

import hashlib
import pathlib
import random
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coupling import HybridFramework
from repro.errors import ReproError
from repro.faults import (
    CORRUPTION_MODES,
    CORRUPTION_POINTS,
    FaultPlan,
    damage_bytes,
    inject,
)
from repro.integrity import Scrubber
from tests.conftest import build_inverter_editor_fn, inverter_testbench_fn

RELAXED = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_workspace(root):
    hybrid = HybridFramework(pathlib.Path(root))
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    return hybrid, project, library


def run_workload(hybrid, project, library):
    hybrid.run_schematic_entry(
        "alice", project, library, "inv2", build_inverter_editor_fn()
    )
    hybrid.run_simulation(
        "alice", project, library, "inv2", inverter_testbench_fn()
    )


def checksummed_files(root: pathlib.Path):
    """Every at-rest artifact the integrity layer covers, by path."""
    root = pathlib.Path(root)
    candidates = []
    staging = root / "jcf" / "staging"
    if staging.is_dir():
        candidates.extend(p for p in staging.iterdir() if p.is_file())
    libs = root / "fmcad" / "libs"
    if libs.is_dir():
        candidates.extend(libs.rglob("*.dat"))
        candidates.extend(libs.rglob(".meta"))
    snapshot = root / "jcf_snapshot.json"
    if snapshot.exists():
        candidates.append(snapshot)
    return sorted(set(candidates))


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_injected_corruption_reaches_scrub_fixpoint(seed):
    """Any seeded in-flight corruption: repair converges, store verifies."""
    with tempfile.TemporaryDirectory(prefix="repro_scrub_") as root:
        hybrid, project, library = build_workspace(root)
        plan = FaultPlan.random_corruption_plan(
            seed, points=CORRUPTION_POINTS
        )
        with inject(plan):
            try:
                run_workload(hybrid, project, library)
                hybrid.save_state()  # covers the oms.snapshot point
            except ReproError:
                pass  # a verified read may kill the run mid-protocol

        report = Scrubber(hybrid.jcf, hybrid.fmcad).scrub(repair=True)
        assert report.ok
        # a *fresh* scrubber (manifest reloaded from disk) agrees
        assert Scrubber(hybrid.jcf, hybrid.fmcad).scrub().ok
        # and every blob the store still serves proves its digest
        assert hybrid.jcf.db.scrub_payloads() == {}


@given(
    file_pick=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(CORRUPTION_MODES),
    damage_seed=st.integers(min_value=0, max_value=10_000),
)
@RELAXED
def test_repair_never_alters_verified_good_artifacts(
    file_pick, mode, damage_seed
):
    """At-rest damage to one artifact: everything else stays byte-identical."""
    with tempfile.TemporaryDirectory(prefix="repro_scrub_") as root:
        hybrid, project, library = build_workspace(root)
        run_workload(hybrid, project, library)
        hybrid.save_state()

        files = checksummed_files(pathlib.Path(root))
        assert files
        victim = files[file_pick % len(files)]
        victim.write_bytes(
            damage_bytes(
                victim.read_bytes(), mode, random.Random(damage_seed)
            )
        )
        before = {
            path: path.read_bytes() for path in files if path != victim
        }
        blob_digests = {
            digest: hybrid.jcf.db.materialize_payload(digest, verify=False)
            for digest in hybrid.jcf.db.scrub_payloads() or {}
        }
        assert not blob_digests  # blobs were clean before the damage

        report = Scrubber(hybrid.jcf, hybrid.fmcad).scrub(repair=True)
        assert report.ok

        for path, pristine in before.items():
            assert path.read_bytes() == pristine, path
        # the victim itself is either restored to its exact content
        # (repair re-proves the digest) or quarantined away — never left
        # damaged in place
        if victim.exists():
            survivors = checksummed_files(pathlib.Path(root))
            assert victim in survivors
            if victim.name.endswith(".dat"):
                digest = hashlib.sha256(victim.read_bytes()).hexdigest()
                assert any(
                    lib.verified_version_bytes(digest) is not None
                    for lib in hybrid.fmcad.libraries()
                )
        assert Scrubber(hybrid.jcf, hybrid.fmcad).scrub().ok
