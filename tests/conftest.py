"""Shared fixtures: wired-up frameworks rooted in pytest tmp dirs."""

from __future__ import annotations

import pytest

from repro.clock import SimClock
from repro.core.coupling import HybridFramework
from repro.fmcad.framework import FMCADFramework
from repro.jcf.flows import standard_encapsulation_flow
from repro.jcf.framework import JCFFramework
from repro.oms import durable
from repro.oms.database import OMSDatabase
from repro.oms.schema import AttributeDef, Schema


@pytest.fixture(autouse=True, scope="session")
def _relaxed_durability():
    """Run the suite with fsyncs off.

    Every durability test exercises the identical write/rename sequence;
    only the physical flushes are skipped, which makes the suite
    dramatically faster on real disks.  Tests that specifically assert
    full-durability behaviour opt back in with
    ``durable.durability("full")``.
    """
    previous = durable.get_default_durability()
    durable.set_default_durability(durable.DURABILITY_RELAXED)
    yield
    durable.set_default_durability(previous)


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def simple_schema():
    """A small generic schema used by the OMS unit tests."""
    schema = Schema("test")
    schema.define_entity(
        "Thing",
        [
            AttributeDef("name", "str", required=True),
            AttributeDef("size", "int", default=0),
            AttributeDef("tags", "list"),
        ],
    )
    schema.define_entity(
        "Box", [AttributeDef("label", "str", required=True)]
    )
    schema.define_relationship("contains", "Box", "Thing", "1:N")
    schema.define_relationship("linked", "Thing", "Thing", "M:N")
    schema.define_relationship("lid_of", "Box", "Box", "1:1")
    return schema


@pytest.fixture
def db(simple_schema, clock):
    return OMSDatabase(simple_schema, clock=clock)


@pytest.fixture
def fmcad(tmp_path, clock):
    return FMCADFramework(tmp_path / "fmcad", clock=clock)


@pytest.fixture
def jcf(tmp_path, clock):
    framework = JCFFramework(tmp_path / "jcf", clock=clock)
    resources = framework.resources
    resources.define_user("admin", "alice")
    resources.define_user("admin", "bob")
    resources.define_user("admin", "carol")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    resources.add_member("admin", "bob", "team1")
    return framework


@pytest.fixture
def jcf_with_flow(jcf):
    jcf.register_flow(standard_encapsulation_flow())
    return jcf


@pytest.fixture
def hybrid(tmp_path):
    """A hybrid framework with users, a team and the standard flow."""
    hy = HybridFramework(tmp_path / "hybrid")
    resources = hy.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_user("admin", "bob")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    resources.add_member("admin", "bob", "team1")
    hy.setup_standard_flow()
    return hy


def build_inverter_editor_fn(n_stages: int = 2):
    """An edit_fn that enters an n-stage inverter chain schematic."""

    def edit(editor):
        editor.add_port("a", "in")
        editor.add_port("y", "out")
        previous = "a"
        for i in range(n_stages):
            editor.place_gate(f"i{i}", "NOT", 1)
            editor.wire(previous, f"i{i}", "in0")
            out_net = "y" if i == n_stages - 1 else f"n{i}"
            editor.wire(out_net, f"i{i}", "out")
            previous = out_net

    return edit


def inverter_testbench_fn(n_stages: int = 2):
    """Testbench for the inverter chain from build_inverter_editor_fn."""
    inverting = n_stages % 2 == 1

    def configure(tb):
        tb.drive(0, "a", "0")
        tb.expect(30, "y", "1" if inverting else "0")
        tb.drive(50, "a", "1")
        tb.expect(80, "y", "0" if inverting else "1")

    return configure


def simple_layout_fn():
    """An edit_fn drawing a minimal DRC-clean labelled layout."""

    def edit(editor):
        editor.draw_rect("metal1", 0, 0, 40, 4)
        editor.add_label("a", "metal1", 1, 1)
        editor.draw_rect("metal1", 0, 10, 40, 14)
        editor.add_label("y", "metal1", 1, 11)

    return edit


@pytest.fixture
def adopted_cell(hybrid):
    """A library with one cell adopted into JCF and reserved by alice.

    Returns (hybrid, project, library, cell_name).
    """
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    hybrid.jcf.resources.assign_team_to_project(
        "admin", "team1", project.oid
    )
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    return hybrid, project, library, "inv2"
