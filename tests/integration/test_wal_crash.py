"""Integration: crash the WAL at every append/checkpoint window, restart.

The WAL extension of the crash matrix: a coupled workload runs on a
``persistence="wal"`` environment with a deterministic crash scheduled
at the ``wal.append`` / ``wal.checkpoint`` fault points, the process is
"restarted" (``HybridFramework.reopen`` on the same root), recovery
runs, and the audit must come back clean.  Replay convergence is
asserted by reopening twice — the double-replay fixpoint.
"""

import pytest

from repro.core.coupling import HybridFramework
from repro.faults import CrashFault, FaultPlan, inject
from repro.oms.snapshot import dump_snapshot
from tests.conftest import build_inverter_editor_fn, inverter_testbench_fn


def build_environment(root):
    hybrid = HybridFramework(root, persistence="wal")
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    # flush .meta so a post-crash reopen can rediscover the library even
    # when the crash lands before the first harvest checkin flushes it
    library.flush_meta("setup")
    return hybrid


def idempotent_schematic_edit(editor):
    if not editor.schematic.ports():
        build_inverter_editor_fn()(editor)


def run_workload(hybrid):
    project = hybrid.jcf.project("chipA")
    library = hybrid.fmcad.library("chiplib")
    if not library.has_cell("inv2"):
        # a crash before the first checkin leaves the empty cell out of
        # .meta (versions never flushed are invisible after reopening —
        # faithfully); re-creating it is part of the idempotent setup
        library.create_cell("inv2")
    return [
        hybrid.run_schematic_entry(
            "alice", project, library, "inv2", idempotent_schematic_edit
        ),
        hybrid.run_simulation(
            "alice", project, library, "inv2", inverter_testbench_fn()
        ),
    ]


def restart_recover(root):
    """What an operator does after a crash: reopen, repair, re-audit."""
    hybrid = HybridFramework.reopen(root)
    hybrid.recover()
    return hybrid


class TestAppendCrashes:
    @pytest.mark.parametrize("on_hit", [1, 2, 4, 7])
    def test_crash_at_append_recovers_clean(self, tmp_path, on_hit):
        root = tmp_path / "env"
        hybrid = build_environment(root)
        plan = FaultPlan.crash("wal.append", on_hit=on_hit)
        with inject(plan):
            with pytest.raises(CrashFault):
                run_workload(hybrid)
        assert plan.crash_fired, "workload never reached that append"

        hybrid2 = restart_recover(root)
        audit = hybrid2.audit()
        assert audit.clean, audit.render()
        # the interrupted flow completes on the recovered environment
        results = run_workload(hybrid2)
        assert all(result.success for result in results)
        assert hybrid2.audit().clean

    def test_lost_commit_is_lost_whole(self, tmp_path):
        """A commit whose record never landed vanishes atomically."""
        root = tmp_path / "env"
        hybrid = build_environment(root)
        before = dump_snapshot(hybrid.jcf.db)
        plan = FaultPlan.crash("wal.append", on_hit=1)
        with inject(plan):
            with pytest.raises(CrashFault):
                hybrid.jcf.resources.define_user("admin", "ghost")
        hybrid2 = HybridFramework.reopen(root)
        assert dump_snapshot(hybrid2.jcf.db) == before


class TestCheckpointCrashes:
    @pytest.mark.parametrize("window", [1, 2, 3, 4])
    def test_crash_in_each_checkpoint_window(self, tmp_path, window):
        root = tmp_path / "env"
        hybrid = build_environment(root)
        results = run_workload(hybrid)
        assert all(result.success for result in results)
        committed = dump_snapshot(hybrid.jcf.db)

        plan = FaultPlan.crash("wal.checkpoint", on_hit=window)
        with inject(plan):
            with pytest.raises(CrashFault):
                hybrid.save_state()
        assert plan.crash_fired

        # restart: every committed change survives the torn checkpoint
        hybrid2 = restart_recover(root)
        assert dump_snapshot(hybrid2.jcf.db) == committed
        audit = hybrid2.audit()
        assert audit.clean, audit.render()
        # and the next checkpoint completes and compacts normally
        hybrid2.save_state()
        hybrid3 = HybridFramework.reopen(root)
        assert dump_snapshot(hybrid3.jcf.db) == committed
        assert hybrid3.jcf.wal_recovery.base == "checkpoint"

    def test_checkpoint_then_crash_then_more_commits(self, tmp_path):
        """Replay stacks post-checkpoint commits over the compacted base."""
        root = tmp_path / "env"
        hybrid = build_environment(root)
        hybrid.save_state()
        plan = FaultPlan.crash("wal.checkpoint", on_hit=3)
        with inject(plan):
            with pytest.raises(CrashFault):
                hybrid.save_state()
        hybrid2 = restart_recover(root)
        run_workload(hybrid2)
        committed = dump_snapshot(hybrid2.jcf.db)
        hybrid3 = HybridFramework.reopen(root)
        assert dump_snapshot(hybrid3.jcf.db) == committed


class TestReplayFixpoint:
    def test_double_reopen_is_identical(self, tmp_path):
        root = tmp_path / "env"
        hybrid = build_environment(root)
        run_workload(hybrid)
        first = dump_snapshot(HybridFramework.reopen(root).jcf.db)
        second = dump_snapshot(HybridFramework.reopen(root).jcf.db)
        assert first == second == dump_snapshot(hybrid.jcf.db)

    def test_wal_sweeps_are_wired_into_recovery_and_audit(self, tmp_path):
        root = tmp_path / "env"
        hybrid = build_environment(root)
        run_workload(hybrid)
        # tear the log tail behind the running framework's back
        with open(hybrid.jcf.wal.log_path, "ab") as handle:
            handle.write(b"half a record")
        audit = hybrid.audit()
        assert any(
            finding.category == "wal-integrity"
            for finding in audit.findings
        )
        report = hybrid.recover()
        assert any("torn tail" in note for note in report.wal_repairs)
        assert hybrid.audit().clean
