"""Integration: crash at every fault point, recover, carry on.

The crash matrix drives a two-activity coupled workload (schematic entry
then digital simulation) with a deterministic crash scheduled at each
registered fault point the workload traverses, then asserts the acceptance
criterion of the fault model: after ``CouplingRecovery.recover()`` the
cross-framework audit is clean and the workload completes when rerun.

A hypothesis suite does the same under seeded random schedules (crash or
transient, random point, random hit) over a three-activity workload.
"""

import pathlib
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coupling import HybridFramework
from repro.core.exchange import export_archive, import_archive
from repro.errors import ReproError
from repro.faults import (
    CrashFault,
    FaultError,
    FaultPlan,
    TransientFault,
    inject,
)
from tests.conftest import (
    build_inverter_editor_fn,
    inverter_testbench_fn,
    simple_layout_fn,
)

#: every registered fault point the schematic+simulation workload crosses
WORKLOAD_POINTS = [
    "run.after_start",
    "run.before_finish",
    "harvest.after_checkout",
    "harvest.after_checkin",
    "harvest.before_import",
    "harvest.after_import",
    "harvest.before_tag",
    "checkout.after_grant",
    "checkout.after_checkin",
    "staging.write",
    "blobs.intern",
]


def build_environment(root):
    hybrid = HybridFramework(pathlib.Path(root))
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    return hybrid, project, library


def idempotent_schematic_edit(editor):
    """Safe to rerun on a schematic that already has the design."""
    if not editor.schematic.ports():
        build_inverter_editor_fn()(editor)


def run_workload(hybrid, project, library, with_layout=False):
    results = [
        hybrid.run_schematic_entry(
            "alice", project, library, "inv2", idempotent_schematic_edit
        ),
        hybrid.run_simulation(
            "alice", project, library, "inv2", inverter_testbench_fn()
        ),
    ]
    if with_layout:
        results.append(
            hybrid.run_layout_entry(
                "alice", project, library, "inv2", simple_layout_fn()
            )
        )
    return results


class TestCrashMatrix:
    @pytest.mark.parametrize("point", WORKLOAD_POINTS)
    def test_crash_recover_rerun(self, tmp_path, point):
        hybrid, project, library = build_environment(tmp_path / "env")
        plan = FaultPlan.crash(point)
        with inject(plan):
            with pytest.raises(CrashFault):
                run_workload(hybrid, project, library)
        assert plan.crash_fired, f"workload never traversed {point}"

        report = hybrid.recover()
        audit = hybrid.audit()
        assert audit.clean, (
            f"audit dirty after recovering crash at {point}:\n"
            f"{audit.render()}\n{report.summary()}"
        )
        # the workload completes on a recovered environment
        results = run_workload(hybrid, project, library)
        assert all(result.success for result in results)
        assert hybrid.audit().clean
        # and nothing further to repair
        assert hybrid.recover().empty()

    @pytest.mark.parametrize("point", WORKLOAD_POINTS)
    def test_crash_on_second_traversal(self, tmp_path, point):
        """Crashing later in the run must be just as recoverable."""
        hybrid, project, library = build_environment(tmp_path / "env")
        plan = FaultPlan.crash(point, on_hit=2)
        with inject(plan):
            try:
                run_workload(hybrid, project, library, with_layout=True)
            except CrashFault:
                pass
        # some points are traversed once only — then the workload simply
        # succeeded and there is nothing to recover; both ends are valid
        hybrid.recover()
        assert hybrid.audit().clean
        assert all(
            r.success for r in run_workload(hybrid, project, library)
        )


class TestTransientFaults:
    @pytest.mark.parametrize(
        "point", ["staging.write", "blobs.intern", "harvest.after_checkout"]
    )
    def test_single_transient_is_survived_or_cleaned(self, tmp_path, point):
        """One glitch either retries to success or fails the run cleanly."""
        hybrid, project, library = build_environment(tmp_path / "env")
        with inject(FaultPlan.transient(point)):
            try:
                run_workload(hybrid, project, library)
            except TransientFault:
                pass
        assert hybrid.audit().clean
        assert all(
            r.success for r in run_workload(hybrid, project, library)
        )

    def test_retried_transient_charges_backoff(self, tmp_path):
        hybrid, project, library = build_environment(tmp_path / "env")
        # staging.write sits inside the _stage_needs retry boundary: the
        # simulation's export glitches once, retries, and succeeds
        with inject(FaultPlan.transient("staging.write")) as plan:
            results = run_workload(hybrid, project, library)
        assert all(r.success for r in results)
        assert plan.fired and not plan.crash_fired
        backoff = hybrid.clock.elapsed_by_category().get("retry_backoff", 0)
        assert backoff > 0


class TestExchangeFaults:
    def export_ready(self, root):
        hybrid, project, library = build_environment(root)
        assert all(r.success for r in run_workload(hybrid, project, library))
        return hybrid, project, library

    def test_export_crash_leaves_partial_not_archive(self, tmp_path):
        hybrid, project, _library = self.export_ready(tmp_path / "env")
        target = tmp_path / "design.tar"
        with inject(FaultPlan.crash("exchange.write")):
            with pytest.raises(CrashFault):
                export_archive(hybrid.jcf, project, target)
        assert not target.exists()
        partial = target.with_name(target.name + ".partial")
        assert partial.exists()  # the wreckage a real crash would leave
        # a later clean export replaces it
        export_archive(hybrid.jcf, project, target)
        assert target.exists() and not partial.exists()

    def test_export_transient_retries_to_success(self, tmp_path):
        hybrid, project, _library = self.export_ready(tmp_path / "env")
        target = tmp_path / "design.tar"
        with inject(FaultPlan.transient("exchange.write")):
            export_archive(hybrid.jcf, project, target)
        assert target.exists()
        assert not target.with_name(target.name + ".partial").exists()

    def test_import_crash_rolls_back_whole_project(self, tmp_path):
        hybrid, project, _library = self.export_ready(tmp_path / "env")
        target = tmp_path / "design.tar"
        export_archive(hybrid.jcf, project, target)
        with inject(FaultPlan.crash("blobs.intern")):
            with pytest.raises(CrashFault):
                import_archive(hybrid.jcf, target, "alice", "copyA")
        # the transaction aborted: no half-imported project
        assert hybrid.jcf.desktop.find_project("copyA") is None
        assert hybrid.audit().clean
        imported = import_archive(hybrid.jcf, target, "alice", "copyA")
        assert imported.name == "copyA"

    def test_import_crash_before_anything_changes_nothing(self, tmp_path):
        hybrid, project, _library = self.export_ready(tmp_path / "env")
        target = tmp_path / "design.tar"
        export_archive(hybrid.jcf, project, target)
        snapshot = hybrid.jcf.save_snapshot()
        with inject(FaultPlan.crash("exchange.before_import")):
            with pytest.raises(CrashFault):
                import_archive(hybrid.jcf, target, "alice", "copyA")
        assert hybrid.jcf.save_snapshot() == snapshot


class TestRandomFaultSchedules:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seeded_chaos_always_recoverable(self, seed):
        root = tempfile.mkdtemp(prefix="crash_hyp_")
        hybrid, project, library = build_environment(root)
        plan = FaultPlan.random_plan(
            seed,
            points=WORKLOAD_POINTS,
            max_hit=3,
            transient_probability=0.3,
        )
        with inject(plan):
            try:
                run_workload(hybrid, project, library, with_layout=True)
            except FaultError:
                pass
            except ReproError:
                pass  # a transient surfacing as an ordinary tool failure
        hybrid.recover()
        audit = hybrid.audit()
        assert audit.clean, (
            f"seed {seed} (plan {plan.points}) left a dirty audit:\n"
            f"{audit.render()}"
        )
        results = run_workload(hybrid, project, library, with_layout=True)
        assert all(result.success for result in results)
        assert hybrid.recover().empty()
