"""Integration: a hybrid environment survives a framework restart.

JCF state persists as an OMS snapshot, FMCAD state as the on-disk
library (version files, ``.meta``, property sidecars).  After
``HybridFramework.reopen`` the flow continues exactly where it stopped:
reservations hold, flow progress is remembered, derivation recording
resumes, and the consistency scan still cross-checks both sides.
"""

import pytest

from repro.core import HybridFramework
from repro.core.mapping import WORKING_VARIANT
from repro.errors import FlowOrderError
from repro.workloads.scripts import (
    inverter_chain_bench,
    inverter_chain_editor,
    labelled_strap_layout,
)


@pytest.fixture
def saved_environment(tmp_path):
    """Run half a flow, save state, return the root for reopening."""
    root = tmp_path / "site"
    hybrid = HybridFramework(root)
    hybrid.jcf.resources.define_user("admin", "alice")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "alice", "team")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("lib")
    library.create_cell("buf2")
    project = hybrid.adopt_library("alice", library, "proj")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)
    hybrid.prepare_cell("alice", project, "buf2", team_name="team")
    hybrid.run_schematic_entry(
        "alice", project, library, "buf2", inverter_chain_editor(2)
    )
    hybrid.run_simulation(
        "alice", project, library, "buf2", inverter_chain_bench(2)
    )
    hybrid.save_state()
    return root


class TestReopen:
    def test_reopen_requires_saved_state(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            HybridFramework.reopen(tmp_path / "never_saved")

    def test_metadata_survives(self, saved_environment):
        hybrid = HybridFramework.reopen(saved_environment)
        project = hybrid.jcf.project("proj")
        cell_version = project.cell("buf2").latest_version()
        assert cell_version is not None
        assert hybrid.jcf.workspaces.reserved_by(cell_version) == "alice"
        assert cell_version.attached_flow().get("name") == "jcf_fmcad_flow"

    def test_flow_progress_remembered(self, saved_environment):
        hybrid = HybridFramework.reopen(saved_environment)
        project = hybrid.jcf.project("proj")
        variant = (
            project.cell("buf2").latest_version().variant(WORKING_VARIANT)
        )
        state = hybrid.jcf.engine.state_of(variant)
        assert state.status_by_activity["schematic_entry"] == "done"
        assert state.status_by_activity["digital_simulation"] == "done"
        assert state.status_by_activity["layout_entry"] == "not_started"

    def test_fmcad_library_reopened_from_meta(self, saved_environment):
        hybrid = HybridFramework.reopen(saved_environment)
        library = hybrid.fmcad.library("lib")
        cell = library.cell("buf2")
        assert cell.has_cellview("schematic")
        assert cell.has_cellview("simulation")
        assert cell.cellview("schematic").default_version is not None

    def test_property_sidecars_restore_jcf_tags(self, saved_environment):
        hybrid = HybridFramework.reopen(saved_environment)
        library = hybrid.fmcad.library("lib")
        version = library.cellview("buf2", "schematic").version(1)
        oid = version.properties.get("jcf_oid")
        assert oid is not None
        assert hybrid.jcf.db.exists(oid)

    def test_design_payloads_match_after_restart(self, saved_environment):
        hybrid = HybridFramework.reopen(saved_environment)
        project = hybrid.jcf.project("proj")
        library = hybrid.fmcad.library("lib")
        assert hybrid.guard.scan(project, library) == []

    def test_flow_continues_after_restart(self, saved_environment):
        hybrid = HybridFramework.reopen(saved_environment)
        project = hybrid.jcf.project("proj")
        library = hybrid.fmcad.library("lib")
        result = hybrid.run_layout_entry(
            "alice", project, library, "buf2",
            labelled_strap_layout(["a", "y"]),
        )
        assert result.success
        variant = (
            project.cell("buf2").latest_version().variant(WORKING_VARIANT)
        )
        assert hybrid.jcf.engine.state_of(variant).complete

    def test_flow_order_still_enforced_after_restart(self, tmp_path):
        """A half-run flow cannot be skipped ahead post-restart."""
        root = tmp_path / "site2"
        hybrid = HybridFramework(root)
        hybrid.jcf.resources.define_user("admin", "alice")
        hybrid.jcf.resources.define_team("admin", "team")
        hybrid.jcf.resources.add_member("admin", "alice", "team")
        hybrid.setup_standard_flow()
        library = hybrid.fmcad.create_library("lib")
        library.create_cell("c")
        project = hybrid.adopt_library("alice", library, "p")
        hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                    project.oid)
        hybrid.prepare_cell("alice", project, "c", team_name="team")
        hybrid.run_schematic_entry(
            "alice", project, library, "c", inverter_chain_editor(2)
        )
        hybrid.save_state()

        reopened = HybridFramework.reopen(root)
        project = reopened.jcf.project("p")
        library = reopened.fmcad.library("lib")
        with pytest.raises(FlowOrderError):
            reopened.run_layout_entry(
                "alice", project, library, "c",
                labelled_strap_layout(["a", "y"]),
            )

    def test_unflushed_versions_lost_on_restart(self, saved_environment):
        """The faithful failure mode: no flush, no memory of the file."""
        hybrid = HybridFramework.reopen(saved_environment)
        library = hybrid.fmcad.library("lib")
        cellview = library.cellview("buf2", "schematic")
        library.write_version(cellview, b"rogue unflushed", "mallory")
        # NO flush_meta before the "crash"
        again = HybridFramework.reopen(saved_environment)
        library2 = again.fmcad.library("lib")
        assert len(library2.cellview("buf2", "schematic").versions) == 1
        assert library2.orphaned_files()  # the file is still on disk