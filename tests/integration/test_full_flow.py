"""Integration: the complete coupled design flow of Section 2.4.

Drives the hybrid framework through adopt -> prepare -> schematic ->
simulate -> layout for a hierarchical design, then checks every paper
claim about the resulting state: derivation relations, two-level
versioning, consistency, publication.
"""

import pytest

from repro.core.mapping import WORKING_VARIANT
from repro.jcf.project import JCFDesignObjectVersion
from tests.conftest import (
    build_inverter_editor_fn,
    inverter_testbench_fn,
    simple_layout_fn,
)


@pytest.fixture
def flowed(adopted_cell):
    hybrid, project, library, cell = adopted_cell
    results = [
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn(2)
        ),
        hybrid.run_simulation(
            "alice", project, library, cell, inverter_testbench_fn(2)
        ),
        hybrid.run_layout_entry(
            "alice", project, library, cell, simple_layout_fn()
        ),
    ]
    return hybrid, project, library, cell, results


class TestFullFlow:
    def test_all_activities_succeed(self, flowed):
        *_, results = flowed
        assert all(r.success for r in results)

    def test_flow_is_complete(self, flowed):
        hybrid, project, library, cell, _ = flowed
        variant = (
            project.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        assert hybrid.jcf.engine.state_of(variant).complete

    def test_fmcad_library_holds_all_three_views(self, flowed):
        _, project, library, cell, _ = flowed
        fmcad_cell = library.cell(cell)
        for view in ("schematic", "simulation", "layout"):
            assert fmcad_cell.has_cellview(view)
            assert fmcad_cell.cellview(view).default_version is not None

    def test_jcf_holds_matching_design_objects(self, flowed):
        hybrid, project, library, cell, _ = flowed
        variant = (
            project.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        viewtypes = {
            d.viewtype_name for d in variant.design_objects()
        }
        assert viewtypes == {"schematic", "symbol", "simulation", "layout"}

    def test_what_belongs_to_what_complete(self, flowed):
        """Every execution records its inputs and outputs (Section 3.5)."""
        hybrid, project, library, cell, _ = flowed
        variant = (
            project.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        report = hybrid.jcf.engine.what_belongs_to_what(variant)
        assert len(report) == 3
        for key, record in report.items():
            assert record["creates"], key  # every run produced something
        sim_entry = next(
            v for k, v in report.items() if "digital_simulation" in k
        )
        assert sim_entry["needs"]  # the simulation consumed the schematic

    def test_derivation_chain_reaches_schematic(self, flowed):
        hybrid, project, library, cell, results = flowed
        layout_version = JCFDesignObjectVersion(
            hybrid.jcf.db, hybrid.jcf.db.get(results[2].jcf_version_oid)
        )
        chain = hybrid.jcf.engine.derivation_chain(layout_version)
        assert results[0].jcf_version_oid in {v.oid for v in chain}

    def test_consistency_scan_clean(self, flowed):
        hybrid, project, library, cell, _ = flowed
        assert hybrid.guard.scan(project, library) == []

    def test_publication_freezes_the_cell(self, flowed):
        hybrid, project, library, cell, _ = flowed
        cell_version = project.cell(cell).latest_version()
        hybrid.jcf.desktop.publish_cell_version("alice", cell_version)
        assert cell_version.published
        from repro.errors import EncapsulationError

        with pytest.raises(EncapsulationError):
            hybrid.run_schematic_entry(
                "alice", project, library, cell,
                build_inverter_editor_fn(),
            )

    def test_configuration_pins_the_flow_outputs(self, flowed):
        hybrid, project, library, cell, results = flowed
        cell_version = project.cell(cell).latest_version()
        config = hybrid.jcf.configurations.create(cell_version, "tapeout")
        variant = cell_version.variant(WORKING_VARIANT)
        for dobj in variant.design_objects():
            hybrid.jcf.configurations.pin(config, dobj.latest_version())
        assert hybrid.jcf.configurations.validate(config) == []
        # schematic + symbol + simulation + layout
        assert len(config.pinned_versions()) == 4

    def test_clock_accounted_all_categories(self, flowed):
        hybrid, *_ = flowed
        categories = hybrid.clock.elapsed_by_category()
        for expected in ("metadata", "ui", "tool", "copy", "native_io"):
            assert categories.get(expected, 0) > 0, expected

    def test_export_round_trip_after_flow(self, flowed):
        hybrid, project, library, cell, _ = flowed
        exported = hybrid.mapper.export_project(project, "release")
        assert exported.cell(cell).has_cellview("layout")
        original = library.read_version(library.cellview(cell, "layout"))
        copied = exported.read_version(exported.cellview(cell, "layout"))
        assert original == copied
