"""Integration soak: randomized multi-user activity, global invariants.

A seeded monkey drives the hybrid framework through hundreds of random
public-API operations (reserve, run tools in random order with random
failures, publish, derive versions, corrupt nothing).  After every
burst, the global invariants the paper's architecture promises must
hold:

* recorded execution histories never violate the fixed flow order;
* reservation state is consistent (a cell version has at most one
  holder, and the holder can always write);
* the consistency scan stays clean (no corruption was injected, so any
  finding is a coupling bug);
* all FMCAD/OMS payload mirrors stay byte-identical.
"""

import random

import pytest

from repro.core import HybridFramework
from repro.core.mapping import WORKING_VARIANT
from repro.errors import FlowOrderError, ReproError
from repro.jcf.model import EXEC_DONE
from repro.workloads.scripts import (
    inverter_chain_bench,
    inverter_chain_editor,
    labelled_strap_layout,
)

USERS = ("u0", "u1", "u2")
CELLS = ("c0", "c1", "c2", "c3")
ORDER = ("schematic_entry", "digital_simulation", "layout_entry")


@pytest.fixture
def soak_env(tmp_path):
    hybrid = HybridFramework(tmp_path / "soak")
    for user in USERS:
        hybrid.jcf.resources.define_user("admin", user)
    hybrid.jcf.resources.define_team("admin", "team")
    for user in USERS:
        hybrid.jcf.resources.add_member("admin", user, "team")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("lib")
    for cell in CELLS:
        library.create_cell(cell)
    project = hybrid.adopt_library("u0", library, "proj")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)
    return hybrid, project, library


def random_action(hybrid, project, library, rng):
    """One random designer operation; exceptions are part of the game."""
    user = rng.choice(USERS)
    cell = rng.choice(CELLS)
    action = rng.choice(
        ("reserve", "schematic", "simulate", "layout", "publish",
         "release")
    )
    try:
        if action == "reserve":
            hybrid.prepare_cell(user, project, cell, team_name="team")
        elif action == "schematic":
            hybrid.run_schematic_entry(
                user, project, library, cell,
                inverter_chain_editor(rng.randint(1, 3)),
            )
        elif action == "simulate":
            # half the benches are wrong on purpose (wrong parity)
            stages = rng.randint(1, 3)
            bench_stages = stages if rng.random() < 0.5 else stages + 1
            hybrid.run_simulation(
                user, project, library, cell,
                inverter_chain_bench(bench_stages),
            )
        elif action == "layout":
            hybrid.run_layout_entry(
                user, project, library, cell,
                labelled_strap_layout(["a", "y"]),
            )
        elif action == "publish":
            cell_version = project.cell(cell).latest_version()
            if cell_version is not None:
                hybrid.jcf.workspaces.publish(user, cell_version)
        elif action == "release":
            cell_version = project.cell(cell).latest_version()
            if cell_version is not None:
                hybrid.jcf.workspaces.release(user, cell_version)
    except ReproError:
        pass  # rejections are the framework doing its job


def assert_invariants(hybrid, project, library):
    # 1. recorded histories respect the fixed order
    for cell_name in CELLS:
        for cell_version in project.cell(cell_name).versions():
            if cell_version.attached_flow() is None:
                continue  # never prepared for design work
            for variant in cell_version.variants():
                if variant.name != WORKING_VARIANT:
                    continue
                state = hybrid.jcf.engine.state_of(variant)
                done_indices = [
                    ORDER.index(name)
                    for name, status in state.status_by_activity.items()
                    if status == EXEC_DONE
                ]
                # done activities form a prefix of the prescribed order
                assert sorted(done_indices) == list(
                    range(len(done_indices))
                ), (cell_name, state.status_by_activity)
    # 2. reservation consistency
    for cell_name in CELLS:
        for cell_version in project.cell(cell_name).versions():
            holder = hybrid.jcf.workspaces.reserved_by(cell_version)
            if holder is not None:
                assert hybrid.jcf.workspaces.can_write(
                    holder, cell_version
                )
                assert not cell_version.published
    # 3. no corruption was injected, so the scan must be clean
    assert hybrid.guard.scan(project, library) == []


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_soak_invariants_hold(soak_env, seed):
    hybrid, project, library = soak_env
    rng = random.Random(seed)
    for burst in range(6):
        for _ in range(25):
            random_action(hybrid, project, library, rng)
        assert_invariants(hybrid, project, library)
    # the monkey must have achieved *something*
    stats = hybrid.jcf.db.stats()
    assert stats["by_type"].get("ActiveExecVersion", 0) > 0
    assert hybrid.fmcad.invocation_log
