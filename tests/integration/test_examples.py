"""Integration: every shipped example runs cleanly end to end.

Examples are user-facing documentation; a broken one is a broken
promise.  Each is executed as a real subprocess (fresh interpreter, no
test fixtures) and must exit 0 with the landmarks of its story present
in the output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: example file -> substrings its output must contain
EXPECTED_LANDMARKS = {
    "quickstart.py": [
        "Table 1 mapping coverage",
        "flow state",
        "consistency scan: 0 findings",
    ],
    "team_asic_project.py": [
        "designers",
        "parallel versions",
    ],
    "flow_managed_design.py": [
        "rejected:",
        "forced_early=True",
        "derivation ancestry",
    ],
    "hierarchy_limits.py": [
        "scenario 1",
        "rejected: JCF 3.0 does not support non-isomorphic",
        "future-release mode",
    ],
    "fpga_black_box_flow.py": [
        "black-box steps:",
        "bitstream generated",
        "derivation ancestry of the bitstream",
    ],
    "design_review.py": [
        "multiple_drivers",
        "initialization coverage: 0%",
        "NOT FOUND in layout",
        "tool-invocation audit",
    ],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}:\n{result.stderr[-2000:]}"
    )
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_LANDMARKS))
def test_example_runs_and_tells_its_story(name):
    output = run_example(name)
    for landmark in EXPECTED_LANDMARKS[name]:
        assert landmark in output, (
            f"{name}: expected {landmark!r} in output"
        )


def test_every_example_file_is_covered():
    """A new example must register its landmarks here."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_LANDMARKS)
