"""Network chaos matrix for the design server.

The acceptance bar for the hostile-network hardening, end to end:

* an acked checkin is never lost and a retried one never lands twice —
  version counts move by at most one per planned run, across every
  seeded fault schedule;
* a faulted-then-retried serving run leaves the store byte-identical
  to an unfaulted control run of the same scenario;
* a crash mid-batch is survivable: recovery reports clean, the retry
  commits once;
* the lease table never shows two live holders for one key, no matter
  how acquire/renew/expire interleave.

Faults ride the deterministic :mod:`repro.faults` points — the same
machinery the WAL crash matrix uses — so every scenario here replays
bit-for-bit.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import LeaseHeldError, ShardUnavailableError
from repro.faults import CrashFault, FaultPlan, FaultRule, inject
from repro.faults import KIND_TRANSIENT
from repro.server.design_server import DesignServer
from repro.server.engine import ServeEngine
from repro.server.protocol import ScriptCatalog
from repro.workloads.loadgen import (
    ScenarioSpec,
    build_scenario,
    replay_socket,
    snapshot_cell_versions,
)

SPEC = ScenarioSpec(teams=2, designers_per_team=2, runs_per_designer=1)
KWARGS = ScriptCatalog().resolve("schematic_entry", "idempotent_inverter", {})


def _design_bytes(hybrid, plans):
    """Every committed schematic version body across the scenario."""
    data = {}
    for plan in plans:
        library = hybrid.fmcad.library(plan.library)
        for cell in plan.cells:
            view = library.cellview(cell, "schematic")
            for index, version in enumerate(view.versions):
                data[(plan.library, cell, index)] = library.read_version(
                    view, version.number
                )
    return data


def _run_engine(hybrid, plans, *, fault_plan=None, retries=1):
    """Drive the scenario through a deterministic engine, retrying any
    shard-unavailable shedding the fault schedule produces."""
    engine = ServeEngine(hybrid, shards=2, max_batch=1, window_ms=50.0)
    sessions = [
        engine.open_session(p.user, p.team, p.library, p.project)
        for p in plans
    ]
    now = engine.epoch_ms
    outstanding = [
        (session, plan, cell)
        for session, plan in zip(sessions, plans)
        for cell in plan.cells
    ]

    def drive():
        nonlocal now
        attempt = 0
        work = list(outstanding)
        while work and attempt <= retries:
            next_round = []
            pendings = []
            for session, plan, cell in work:
                now += 10.0
                try:
                    pending = engine.submit(
                        session, cell, "schematic_entry",
                        kwargs=KWARGS, now_ms=now,
                        request_key=f"{plan.user}:{cell}:a{attempt}",
                    )
                    pendings.append((session, plan, cell, pending))
                except ShardUnavailableError:
                    next_round.append((session, plan, cell))
            now += 200.0
            engine.pump(now)
            for session, plan, cell, pending in pendings:
                if pending.outcome is not None and pending.outcome.ok:
                    continue
                next_round.append((session, plan, cell))
            work = next_round
            attempt += 1
        engine.drain(now)
        return work

    if fault_plan is not None:
        with inject(fault_plan):
            unfinished = drive()
    else:
        unfinished = drive()
    engine.close()
    return unfinished


class TestByteIdenticalRecovery:
    def test_transient_dispatch_fault_then_retry_matches_control(
        self, tmp_path
    ):
        control_hybrid, control_plans = build_scenario(
            tmp_path / "control", SPEC
        )
        assert _run_engine(control_hybrid, control_plans) == []
        control = _design_bytes(control_hybrid, control_plans)

        chaos_hybrid, chaos_plans = build_scenario(tmp_path / "chaos", SPEC)
        unfinished = _run_engine(
            chaos_hybrid, chaos_plans,
            fault_plan=FaultPlan.transient("server.dispatch", on_hit=1),
            retries=2,
        )
        assert unfinished == []
        assert chaos_hybrid.audit().clean
        assert _design_bytes(chaos_hybrid, chaos_plans) == control

    def test_crash_mid_batch_recovers_and_matches_control(self, tmp_path):
        control_hybrid, control_plans = build_scenario(
            tmp_path / "control", SPEC
        )
        assert _run_engine(control_hybrid, control_plans) == []
        control = _design_bytes(control_hybrid, control_plans)

        hybrid, plans = build_scenario(tmp_path / "chaos", SPEC)
        engine = ServeEngine(hybrid, shards=2, max_batch=1, window_ms=50.0)
        sessions = [
            engine.open_session(p.user, p.team, p.library, p.project)
            for p in plans
        ]
        now = engine.epoch_ms
        with inject(FaultPlan.crash("server.dispatch", on_hit=1)):
            for session, plan in zip(sessions, plans):
                now += 10.0
                engine.submit(
                    session, plan.cells[0], "schematic_entry",
                    kwargs=KWARGS, now_ms=now,
                )
            now += 200.0
            with pytest.raises(CrashFault):
                engine.drain(now)
        # the serving process is dead: abandon its engine, repair the
        # store, then a fresh engine retries everything not committed
        report = hybrid.recover()
        assert hybrid.audit().clean, report
        engine = ServeEngine(hybrid, shards=2, max_batch=1, window_ms=50.0)
        sessions = [
            engine.open_session(p.user, p.team, p.library, p.project)
            for p in plans
        ]
        now = engine.epoch_ms
        for session, plan in zip(sessions, plans):
            cell = plan.cells[0]
            committed = (
                hybrid.fmcad.library(plan.library)
                .cell(cell)
                .has_cellview("schematic")
            )
            if committed:
                continue
            now += 10.0
            engine.submit(
                session, cell, "schematic_entry", kwargs=KWARGS, now_ms=now,
            )
        engine.drain(now + 200.0)
        engine.close()
        assert hybrid.audit().clean
        assert _design_bytes(hybrid, plans) == control


class TestLeaseSingleHolder:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_never_two_live_holders_per_key(self, seed):
        """Seeded storm of acquire/renew/release/expiry over few keys."""
        from repro.server.leases import LeaseTable

        rng = random.Random(seed)
        table = LeaseTable(ttl_ms=100.0)
        sessions = [f"s{i}" for i in range(4)]
        cells = ["c0", "c1"]
        now = 0.0
        for _ in range(400):
            now += rng.uniform(0.0, 60.0)
            session = rng.choice(sessions)
            cell = rng.choice(cells)
            op = rng.random()
            try:
                if op < 0.5:
                    table.acquire(session, session, "lib", cell, now_ms=now)
                elif op < 0.7:
                    table.renew(session, now_ms=now)
                elif op < 0.9:
                    table.release(session, f"cell/lib/{cell}")
                else:
                    table.reclaim_due(now_ms=now)
            except LeaseHeldError:
                pass
            live = table.live_leases()
            keys = [lease.key for lease in live]
            assert len(keys) == len(set(keys)), "two live holders on a key"
        # expiry is lazy, but a sweep must leave nothing stale behind
        table.reclaim_due(now_ms=now)
        for lease in table.live_leases():
            assert not lease.expired(now)


class TestSocketChaosMatrix:
    """Real sockets, seeded fault schedules over the net.* points."""

    def _chaos_plan(self, seed: int) -> FaultPlan:
        rng = random.Random(seed)
        rules = []
        for point in ("net.read", "net.write"):
            rules.append(FaultRule(
                point, KIND_TRANSIENT,
                on_hit=rng.randint(2, 6), times=rng.randint(1, 2),
            ))
        rules.append(FaultRule(
            "server.dispatch", KIND_TRANSIENT,
            on_hit=rng.randint(1, 3), times=1,
        ))
        return FaultPlan(rules)

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_no_lost_acks_no_double_commits(self, tmp_path, seed):
        hybrid, plans = build_scenario(tmp_path / "env", SPEC)
        before = snapshot_cell_versions(hybrid, plans)

        async def exercise():
            server = DesignServer(
                hybrid, shards=2, max_batch=4, window_ms=10.0,
                breaker_threshold=3, breaker_cooldown_ms=50.0,
            )
            host, port = await server.start()
            try:
                with inject(self._chaos_plan(seed)):
                    return await replay_socket(
                        host, port, plans, SPEC,
                        retry_overload=5, seed=seed,
                        ack_timeout_ms=1_000.0,
                    )
            finally:
                await server.stop()

        report = asyncio.run(exercise())
        after = snapshot_cell_versions(hybrid, plans)
        double_commits = sum(
            max(0, after[key] - before.get(key, 0) - 1) for key in after
        )
        assert double_commits == 0
        # an acked ok run must have exactly its one version on disk
        committed = sum(
            after[key] - before.get(key, 0) for key in after
        )
        assert committed >= report.ok
        # chaos over, the store must be repairable and consistent
        hybrid.recover()
        assert hybrid.audit().clean
        # the harness made real progress despite the fault schedule
        assert report.ok > 0

    def test_refused_accepts_do_not_poison_the_listener(self, tmp_path):
        hybrid, plans = build_scenario(tmp_path / "env", SPEC)

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=10.0)
            host, port = await server.start()
            try:
                with inject(FaultPlan.transient("net.accept", on_hit=1)):
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                    # the refused connection just closes...
                    assert await reader.read() == b""
                    writer.close()
                # ...and the next one is served normally
                report = await replay_socket(
                    host, port, plans[:1], SPEC, seed=0
                )
                assert report.dropped_sessions == 0
                assert report.ok == len(plans[0].cells)
            finally:
                await server.stop()
            assert server.transport_stats()["refused_accepts"] == 1

        asyncio.run(exercise())
