"""Integration: failure injection across the coupling boundary.

Each test corrupts one layer of the hybrid environment and checks the
framework degrades the way the paper's architecture implies: the hybrid
scan sees what bare FMCAD cannot, failed activities block the flow, and
transactional metadata never half-commits.
"""

import pytest

from repro.core.consistency import ConsistencyGuard
from repro.errors import EncapsulationError, FlowOrderError
from tests.conftest import (
    build_inverter_editor_fn,
    inverter_testbench_fn,
)


class TestToolCrashMidRun:
    def test_crashing_edit_fn_fails_activity_and_cleans_up(
        self, adopted_cell
    ):
        hybrid, project, library, cell = adopted_cell

        def crashing_edit(editor):
            raise RuntimeError("tool segfaulted")

        with pytest.raises(Exception):
            hybrid.run_schematic_entry(
                "alice", project, library, cell, crashing_edit
            )
        # the execution is marked failed, not stuck running
        from repro.core.mapping import WORKING_VARIANT
        from repro.jcf.model import EXEC_FAILED

        variant = (
            project.cell(cell).latest_version().variant(WORKING_VARIANT)
        )
        state = hybrid.jcf.engine.state_of(variant)
        assert state.status_by_activity["schematic_entry"] == EXEC_FAILED
        # the session was closed despite the crash
        assert hybrid.fmcad.sessions() == []
        # and the flow can be retried
        result = hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        assert result.success

    def test_crash_does_not_leave_fmcad_checkout(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell

        def crashing_edit(editor):
            raise RuntimeError("boom")

        with pytest.raises(Exception):
            hybrid.run_schematic_entry(
                "alice", project, library, cell, crashing_edit
            )
        assert hybrid.fmcad.checkouts.active_tickets() == []


class TestCorruptionDetectionAsymmetry:
    def test_hybrid_sees_what_fmcad_misses(self, adopted_cell):
        """The E32 asymmetry on one concrete corruption."""
        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        version = library.cellview(cell, "schematic").version(1)
        version.path.write_bytes(b"bitrot")
        hybrid_findings = hybrid.guard.scan(project, library)
        fmcad_findings = ConsistencyGuard.fmcad_baseline_scan(library)
        assert len(hybrid_findings) > len(fmcad_findings) == 0


class TestFlowGateUnderFailure:
    def test_failed_simulation_blocks_until_fixed(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn(2)
        )

        def broken_bench(tb):
            tb.drive(0, "a", "0")
            tb.expect(30, "y", "1")  # wrong for a 2-stage buffer

        assert not hybrid.run_simulation(
            "alice", project, library, cell, broken_bench
        ).success
        with pytest.raises(FlowOrderError):
            hybrid.run_layout_entry(
                "alice", project, library, cell, lambda e: None
            )
        # fix the bench, rerun, layout unblocks
        assert hybrid.run_simulation(
            "alice", project, library, cell, inverter_testbench_fn(2)
        ).success
        from tests.conftest import simple_layout_fn

        assert hybrid.run_layout_entry(
            "alice", project, library, cell, simple_layout_fn()
        ).success


class TestTransactionalMetadata:
    def test_failed_import_leaves_no_partial_project(self, hybrid):
        """A mid-import crash must not leave half a project behind."""
        library = hybrid.fmcad.create_library("lib")
        library.create_cell("good")
        cellview = library.create_cellview("good", "schematic")
        library.write_version(cellview, b"data", "setup")
        # delete the version file so the import crashes mid-way
        cellview.versions[0].path.unlink()
        before = hybrid.jcf.db.count("DesignObjectVersion")
        with pytest.raises(Exception):
            hybrid.mapper.import_library(library, "alice")
        # design-object versions were not half-created
        assert hybrid.jcf.db.count("DesignObjectVersion") == before


class TestWorkspaceIsolationUnderConcurrency:
    def test_bob_cannot_interfere_with_alices_run(self, adopted_cell):
        hybrid, project, library, cell = adopted_cell
        hybrid.run_schematic_entry(
            "alice", project, library, cell, build_inverter_editor_fn()
        )
        with pytest.raises(EncapsulationError):
            hybrid.run_simulation(
                "bob", project, library, cell, inverter_testbench_fn()
            )
