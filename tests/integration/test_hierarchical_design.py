"""Integration: a generated 7-cell design through the full coupled flow.

Bottom-up (leaves first), every cell passes schematic entry, simulation
and layout under the fixed flow, with the parents' schematics placing
their children — exercising hierarchy extraction, dynamic binding in the
netlister, DRC over placed subcells, derivation recording and the final
consistency scan, all at once.
"""

import pytest

from repro.core import HybridFramework
from repro.core.mapping import WORKING_VARIANT
from repro.tools.schematic.model import Schematic
from repro.workloads.designs import (
    DesignSpec,
    generate_design,
    populate_library,
)


@pytest.fixture(scope="module")
def completed_design(tmp_path_factory):
    root = tmp_path_factory.mktemp("hier")
    hybrid = HybridFramework(root / "hybrid")
    hybrid.jcf.resources.define_user("admin", "alice")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "alice", "team")
    hybrid.setup_standard_flow()

    design = generate_design(
        DesignSpec(name="soc", depth=2, fanout=2, leaf_inputs=2, seed=4)
    )
    library = populate_library(hybrid.fmcad, "soclib", design)
    project = hybrid.adopt_library("alice", library, "soc")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)

    # children before parents so dynamic binding always resolves
    order = [name for name in design.cell_names()]
    order.sort(key=lambda n: -n.count("_"))  # deepest first

    from repro.tools.layout.editor import Layout

    for cell_name in order:
        hybrid.prepare_cell("alice", project, cell_name, team_name="team")
        source = design.schematics[cell_name]

        def re_enter(editor, source=source):
            # the designer re-enters the generated design in the tool
            editor.load(Schematic.from_bytes(source.to_bytes()))

        assert hybrid.run_schematic_entry(
            "alice", project, library, cell_name, re_enter
        ).success

        def smoke_bench(tb):
            # drive all primary inputs; no value checks — the activity
            # succeeds when the netlist elaborates and simulates
            for port in tb.netlist.inputs:
                tb.drive(0, port, "0")

        assert hybrid.run_simulation(
            "alice", project, library, cell_name, smoke_bench
        ).success

        layout_source = design.layouts[cell_name]

        def re_draw(editor, layout_source=layout_source):
            editor.load(Layout.from_bytes(layout_source.to_bytes()))

        assert hybrid.run_layout_entry(
            "alice", project, library, cell_name, re_draw
        ).success

    return hybrid, project, library, design


class TestHierarchicalFlow:
    def test_every_cell_completed_its_flow(self, completed_design):
        hybrid, project, library, design = completed_design
        for cell_name in design.cell_names():
            variant = (
                project.cell(cell_name).latest_version()
                .variant(WORKING_VARIANT)
            )
            assert hybrid.jcf.engine.state_of(variant).complete, cell_name

    def test_library_holds_three_views_per_cell(self, completed_design):
        hybrid, project, library, design = completed_design
        for cell_name in design.cell_names():
            cell = library.cell(cell_name)
            for view in ("schematic", "simulation", "layout"):
                assert cell.has_cellview(view), (cell_name, view)

    def test_hierarchy_metadata_matches_design(self, completed_design):
        hybrid, project, library, design = completed_design
        declared = hybrid.jcf.desktop.declared_hierarchy(project)
        assert declared == design.hierarchy

    def test_consistency_scan_clean_at_scale(self, completed_design):
        hybrid, project, library, design = completed_design
        assert hybrid.guard.scan(project, library) == []

    def test_derivations_per_cell(self, completed_design):
        hybrid, project, library, design = completed_design
        for cell_name in design.cell_names():
            variant = (
                project.cell(cell_name).latest_version()
                .variant(WORKING_VARIANT)
            )
            record = hybrid.jcf.engine.what_belongs_to_what(variant)
            assert len(record) == 3, cell_name

    def test_top_simulation_flattened_whole_tree(self, completed_design):
        """The top cell's netlist resolved every descendant through the
        library's default versions."""
        hybrid, project, library, design = completed_design
        from repro.tools.schematic.netlist import netlist_schematic

        def resolver(cellref):
            cellview = library.cellview(cellref, "schematic")
            return Schematic.from_bytes(library.read_version(cellview))

        top = resolver("soc")
        netlist = netlist_schematic(top, resolver)
        # leaf gates appear with hierarchical prefixes
        assert any("/" in gate.name for gate in netlist.gates())
        assert netlist.validate() == []

    def test_versioning_totals(self, completed_design):
        hybrid, project, library, design = completed_design
        stats = hybrid.jcf.db.stats()
        cells = len(design.cell_names())
        # per cell: imported schematic+layout (2 dobjs) merged with the
        # flow outputs -> at least 3 design objects with >=1 version each
        assert stats["by_type"]["DesignObject"] >= 3 * cells
        assert stats["by_type"]["ActiveExecVersion"] == 3 * cells
