"""Integration: crash a durable flow at every ``flow.*`` window, restart.

The flow extension of the crash matrix: the standard three-activity
flow runs as a persisted :class:`FlowInstance` with a deterministic
crash scheduled at the ``flow.persist`` / ``flow.resume`` /
``flow.trigger`` fault points (plus the pre-existing ``run.*`` and
``harvest.*`` points mid-activity), the process is "restarted"
(``HybridFramework.reopen`` on the same root), recovery adopts the
in-flight instance, and ``resume_pending()`` rolls it forward.  The
resumed run's design output must be byte-identical to an uncrashed
control run; a second ``recover()`` must change nothing (fixpoint).
"""

import pathlib
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coupling import HybridFramework
from repro.faults import CrashFault, FaultPlan, inject
from repro.jcf.model import FLOW_DONE, FLOW_QUEUED
from repro.oms.snapshot import dump_snapshot


def build_environment(root):
    hybrid = HybridFramework(root, persistence="wal")
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    # flush .meta so a post-crash reopen can rediscover the library even
    # when the crash lands before the first harvest checkin flushes it
    library.flush_meta("setup")
    return hybrid


def start_flow(hybrid):
    project = hybrid.jcf.project("chipA")
    return hybrid.flows_orchestrator.start(
        user="alice",
        project=project,
        cell_name="inv2",
        flow_name="jcf_fmcad_flow",
        script="inverter_flow",
        library_name="chiplib",
        team="team1",
    )


def run_flow(hybrid):
    """Start (or adopt) the standard flow instance and drive it home.

    Idempotent on purpose: after a crash + recovery the persisted
    instance is simply resumed, mirroring what an operator (or the
    ``flows resume`` CLI) does.
    """
    library = hybrid.fmcad.library("chiplib")
    if not library.has_cell("inv2"):
        # a crash before the first checkin leaves the empty cell out of
        # .meta (versions never flushed are invisible after reopening —
        # faithfully); re-creating it is part of the idempotent setup
        library.create_cell("inv2")
    orchestrator = hybrid.flows_orchestrator
    pending = [i for i in orchestrator.instances() if not i.terminal]
    if pending:
        return orchestrator.resume_pending()
    instance = start_flow(hybrid)
    return [(instance.oid, orchestrator.run(instance))]


def restart_recover(root):
    """What an operator does after a crash: reopen, repair, re-audit."""
    hybrid = HybridFramework.reopen(root)
    hybrid.recover()
    return hybrid


def design_bytes(hybrid):
    """Every checked-in view version of the cell, by viewtype."""
    library = hybrid.fmcad.library("chiplib")
    cell = library.cell("inv2")
    data = {}
    for viewtype in ("schematic", "symbol", "simulation", "layout"):
        if cell.has_cellview(viewtype):
            view = cell.cellview(viewtype)
            if view.default_version is not None:
                data[viewtype] = library.read_version(view)
    return data


def control_bytes(tmp_path):
    """The design bytes an uncrashed run of the same flow produces."""
    hybrid = build_environment(tmp_path / "control")
    results = run_flow(hybrid)
    assert [state for _, state in results] == [FLOW_DONE]
    return design_bytes(hybrid)


class TestFlowPersistCrashes:
    # a full run commits six flow.persist transitions: start, mark
    # running, one attempt record per activity, and the final mark
    @pytest.mark.parametrize("on_hit", [1, 2, 3, 4, 5, 6])
    def test_crash_at_each_persist_window(self, tmp_path, on_hit):
        control = control_bytes(tmp_path)
        root = tmp_path / "env"
        hybrid = build_environment(root)
        plan = FaultPlan.crash("flow.persist", on_hit=on_hit)
        with inject(plan):
            with pytest.raises(CrashFault):
                run_flow(hybrid)
        assert plan.crash_fired, "flow never reached that transition"

        hybrid2 = restart_recover(root)
        audit = hybrid2.audit()
        assert audit.clean, audit.render()
        results = run_flow(hybrid2)
        assert all(state == FLOW_DONE for _, state in results)
        assert design_bytes(hybrid2) == control
        assert hybrid2.audit().clean

    def test_lost_start_is_lost_whole(self, tmp_path):
        """An instance whose creating commit never landed vanishes."""
        root = tmp_path / "env"
        hybrid = build_environment(root)
        plan = FaultPlan.crash("flow.persist", on_hit=1)
        with inject(plan):
            with pytest.raises(CrashFault):
                start_flow(hybrid)
        hybrid2 = restart_recover(root)
        assert hybrid2.flows_orchestrator.instances() == []


class TestMidActivityCrashes:
    @pytest.mark.parametrize(
        "point,on_hit",
        [
            ("run.after_start", 1),
            ("run.after_start", 2),
            ("run.before_finish", 1),
            ("run.before_finish", 3),
            ("harvest.after_checkout", 1),
            ("harvest.after_checkout", 2),
            ("harvest.after_checkin", 1),
            ("harvest.after_checkin", 2),
            ("harvest.before_import", 1),
            ("harvest.after_import", 2),
            ("harvest.before_tag", 1),
            ("harvest.before_tag", 3),
        ],
    )
    def test_crash_inside_an_activity_resumes_identically(
        self, tmp_path, point, on_hit
    ):
        """Recovery adopts the running instance back to queued and the
        resumed flow re-runs the torn activity idempotently."""
        control = control_bytes(tmp_path)
        root = tmp_path / "env"
        hybrid = build_environment(root)
        plan = FaultPlan.crash(point, on_hit=on_hit)
        with inject(plan):
            with pytest.raises(CrashFault):
                run_flow(hybrid)
        assert plan.crash_fired, "flow never reached that window"

        hybrid2 = restart_recover(root)
        instances = hybrid2.flows_orchestrator.instances()
        assert [i.status for i in instances] == [FLOW_QUEUED]
        results = run_flow(hybrid2)
        assert all(state == FLOW_DONE for _, state in results)
        assert design_bytes(hybrid2) == control
        assert hybrid2.audit().clean


class TestResumeCrashes:
    def test_crash_during_resume_resumes_again(self, tmp_path):
        """flow.resume itself is a crash window: a second restart picks
        the instance up with nothing lost and nothing duplicated."""
        control = control_bytes(tmp_path)
        root = tmp_path / "env"
        hybrid = build_environment(root)
        plan = FaultPlan.crash("harvest.after_checkin", on_hit=2)
        with inject(plan):
            with pytest.raises(CrashFault):
                run_flow(hybrid)

        hybrid2 = restart_recover(root)
        plan2 = FaultPlan.crash("flow.resume", on_hit=1)
        with inject(plan2):
            with pytest.raises(CrashFault):
                hybrid2.flows_orchestrator.resume_pending()
        assert plan2.crash_fired

        hybrid3 = restart_recover(root)
        results = run_flow(hybrid3)
        assert all(state == FLOW_DONE for _, state in results)
        assert design_bytes(hybrid3) == control
        assert hybrid3.audit().clean


class TestTriggerCrashes:
    def define_trigger(self, hybrid):
        hybrid.triggers.define(
            name="resim_on_checkin",
            flow_name="jcf_fmcad_flow",
            user="alice",
            viewtype="schematic",
            script="inverter_flow",
            team="team1",
        )

    def test_crash_mid_dispatch_spawns_exactly_once(self, tmp_path):
        from tests.conftest import build_inverter_editor_fn

        root = tmp_path / "env"
        hybrid = build_environment(root)
        self.define_trigger(hybrid)
        project = hybrid.jcf.project("chipA")
        library = hybrid.fmcad.library("chiplib")
        result = hybrid.schematic_entry.run(
            "alice", project, library, "inv2",
            edit_fn=build_inverter_editor_fn(),
        )
        assert result.success
        assert len(hybrid.triggers.pending_events()) == 1

        plan = FaultPlan.crash("flow.trigger", on_hit=1)
        with inject(plan):
            with pytest.raises(CrashFault):
                hybrid.triggers.dispatch(hybrid.flows_orchestrator)
        assert plan.crash_fired

        # restart: the event is still pending (dispatch rolled back
        # whole) and no half-spawned instance exists
        hybrid2 = restart_recover(root)
        assert len(hybrid2.triggers.pending_events()) == 1
        assert hybrid2.flows_orchestrator.instances() == []
        spawned = hybrid2.triggers.dispatch(hybrid2.flows_orchestrator)
        assert len(spawned) == 1
        assert hybrid2.triggers.pending_events() == []
        report = hybrid2.flow_queue.drain(workers=2)
        assert spawned[0] in report.completed
        assert hybrid2.audit().clean


class TestRecoveryFixpoint:
    FLOW_POINTS = [
        "flow.persist",
        "run.after_start",
        "harvest.after_checkin",
        "harvest.before_tag",
    ]

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        point=st.sampled_from(FLOW_POINTS),
        on_hit=st.integers(min_value=1, max_value=4),
    )
    def test_double_recover_is_identical(self, point, on_hit):
        """recover() is idempotent over flow state: running it twice —
        or once more after another restart — changes nothing."""
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp) / "env"
            hybrid = build_environment(root)
            try:
                with inject(FaultPlan.crash(point, on_hit=on_hit)):
                    run_flow(hybrid)
            except CrashFault:
                pass
            else:
                return  # this schedule never reached the window

            hybrid2 = HybridFramework.reopen(root)
            hybrid2.recover()
            first = dump_snapshot(hybrid2.jcf.db)
            hybrid2.recover()
            assert dump_snapshot(hybrid2.jcf.db) == first
            hybrid3 = HybridFramework.reopen(root)
            hybrid3.recover()
            assert dump_snapshot(hybrid3.jcf.db) == first
