"""Additional property-based tests: netlister, extraction, exchange, VCD."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tools.layout.editor import Label, Layout
from repro.tools.layout.extract import extract_connectivity
from repro.tools.layout.geometry import Rect
from repro.tools.schematic.model import Component, Schematic
from repro.tools.schematic.netlist import netlist_schematic
from repro.tools.simulator.engine import LogicSimulator
from repro.tools.simulator.signals import Logic
from repro.tools.simulator.vcd import dump_vcd, parse_vcd_changes
from repro.workloads.designs import (
    DesignSpec,
    generate_design,
    make_combinational_cell,
)


class TestNetlisterProperties:
    @given(
        st.integers(2, 4),
        st.integers(1, 3),
        st.integers(0, 2**10),
    )
    @settings(max_examples=25, deadline=None)
    def test_flat_gate_count_sums_over_instances(
        self, n_instances, n_inputs_exp, seed
    ):
        """Flattening N instances of a leaf yields N x leaf gates."""
        n_inputs = n_inputs_exp + 1
        leaf = make_combinational_cell(
            "leaf", n_inputs, 1, random.Random(seed)
        )
        leaf_gates = len(netlist_schematic(leaf).gates())
        parent = Schematic("top")
        parent.add_port("x", "in")
        parent.add_port("z", "out")
        previous = "x"
        for index in range(n_instances):
            inst = f"u{index}"
            parent.add_component(Component(inst, "CELL", cellref="leaf"))
            for pin in range(n_inputs):
                parent.connect(previous, inst, f"in{pin}")
            out_net = "z" if index == n_instances - 1 else f"m{index}"
            parent.connect(out_net, inst, "out")
            previous = out_net
        flat = netlist_schematic(parent, lambda ref: leaf)
        assert len(flat.gates()) == n_instances * leaf_gates

    @given(st.integers(0, 2**12), st.integers(1, 2))
    @settings(max_examples=20, deadline=None)
    def test_generated_tree_netlists_deterministically(self, seed, depth):
        spec = DesignSpec(name="t", depth=depth, fanout=2, seed=seed)
        design_a = generate_design(spec)
        design_b = generate_design(spec)
        flat_a = netlist_schematic(
            design_a.schematics["t"], lambda r: design_a.schematics[r]
        )
        flat_b = netlist_schematic(
            design_b.schematics["t"], lambda r: design_b.schematics[r]
        )
        assert flat_a.to_bytes() == flat_b.to_bytes()


class TestExtractionProperties:
    @given(
        st.lists(
            st.builds(
                lambda x, y, w, h: Rect("metal1", x, y, x + w, y + h),
                st.integers(0, 300),
                st.integers(0, 300),
                st.integers(1, 40),
                st.integers(1, 40),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_net_count_bounded_by_rect_count(self, rects):
        layout = Layout("cell")
        for rect in rects:
            layout.add_rect(rect)
        nets = extract_connectivity(layout)
        assert 1 <= len(nets) <= len(rects)
        assert sum(len(net.rects) for net in nets) == len(rects)

    @given(
        st.lists(
            st.builds(
                lambda x, y: Rect("metal1", x, y, x + 10, y + 10),
                st.integers(0, 200),
                st.integers(0, 200),
            ),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_adding_a_bridging_rect_never_increases_nets(self, rects):
        layout = Layout("cell")
        for rect in rects:
            layout.add_rect(rect)
        before = len(extract_connectivity(layout))
        # a huge rect touching everything collapses the partition
        layout.add_rect(Rect("metal1", 0, 0, 300, 300))
        after = len(extract_connectivity(layout))
        assert after <= before


class TestVCDProperties:
    @given(st.integers(0, 2**10), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_vcd_round_trip_preserves_change_counts(self, seed, n_inputs):
        cell = make_combinational_cell(
            "cell", n_inputs, 1, random.Random(seed)
        )
        netlist = netlist_schematic(cell)
        stimuli = []
        rng = random.Random(seed)
        for time in range(0, 200, 40):
            for net in netlist.inputs:
                stimuli.append(
                    (time, net,
                     Logic.ONE if rng.random() < 0.5 else Logic.ZERO)
                )
        result = LogicSimulator(netlist).run(stimuli)
        changes = parse_vcd_changes(dump_vcd(result))
        for net, waveform in result.waveforms.items():
            assert len(changes[net]) == len(waveform)
