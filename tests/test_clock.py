"""Unit tests for the simulated clock and cost model."""

import pytest

from repro.clock import CostModel, SimClock


class TestCharging:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0.0

    def test_charge_advances_time(self):
        clock = SimClock()
        clock.charge("x", 10.0)
        clock.charge("y", 5.0)
        assert clock.now_ms == 15.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge("x", -1.0)

    def test_categories_accumulate_independently(self):
        clock = SimClock()
        clock.charge("a", 1.0)
        clock.charge("b", 2.0)
        clock.charge("a", 3.0)
        assert clock.elapsed_by_category() == {"a": 4.0, "b": 2.0}

    def test_events_are_chronological(self):
        clock = SimClock()
        clock.charge("a", 1.0)
        clock.charge("b", 2.0)
        times = [t for t, _, _ in clock.events]
        assert times == sorted(times)


class TestCostHelpers:
    def test_metadata_op_uses_model_rate(self):
        model = CostModel(metadata_op_ms=7.0)
        clock = SimClock(model)
        clock.charge_metadata_op(3)
        assert clock.now_ms == 21.0

    def test_copy_charges_per_byte_plus_per_file(self):
        model = CostModel(copy_byte_ms=1.0, copy_file_ms=10.0)
        clock = SimClock(model)
        clock.charge_copy(100, files=2)
        assert clock.now_ms == 120.0

    def test_copy_dominates_native_io_for_same_bytes(self):
        """The architectural point of Section 3.6: OMS staging is the
        expensive path compared to native library access."""
        clock = SimClock()
        clock.charge_copy(1_000_000)
        copy_cost = clock.elapsed_by_category()["copy"]
        clock.charge_native_io(1_000_000)
        native_cost = clock.elapsed_by_category()["native_io"]
        assert copy_cost > native_cost

    def test_ui_context_switch_costs_more_than_interaction(self):
        clock = SimClock()
        clock.charge_ui()
        clock.charge_ui_context_switch()
        by_cat = clock.elapsed_by_category()
        assert by_cat["ui_switch"] > by_cat["ui"]

    def test_lock_wait_poll_count(self):
        model = CostModel(lock_wait_poll_ms=100.0)
        clock = SimClock(model)
        clock.charge_lock_wait(polls=4)
        assert clock.elapsed_by_category()["lock_wait"] == 400.0


class TestReset:
    def test_reset_clears_everything(self):
        clock = SimClock()
        clock.charge_metadata_op()
        clock.charge_ui()
        clock.reset()
        assert clock.now_ms == 0.0
        assert clock.elapsed_by_category() == {}
        assert clock.events == []
