"""Unit tests for the simulated clock and cost model."""

import pytest

from repro.clock import CostModel, SimClock


class TestCharging:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0.0

    def test_charge_advances_time(self):
        clock = SimClock()
        clock.charge("x", 10.0)
        clock.charge("y", 5.0)
        assert clock.now_ms == 15.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge("x", -1.0)

    def test_categories_accumulate_independently(self):
        clock = SimClock()
        clock.charge("a", 1.0)
        clock.charge("b", 2.0)
        clock.charge("a", 3.0)
        assert clock.elapsed_by_category() == {"a": 4.0, "b": 2.0}

    def test_events_are_chronological(self):
        clock = SimClock()
        clock.charge("a", 1.0)
        clock.charge("b", 2.0)
        times = [t for t, _, _ in clock.events]
        assert times == sorted(times)


class TestCostHelpers:
    def test_metadata_op_uses_model_rate(self):
        model = CostModel(metadata_op_ms=7.0)
        clock = SimClock(model)
        clock.charge_metadata_op(3)
        assert clock.now_ms == 21.0

    def test_copy_charges_per_byte_plus_per_file(self):
        model = CostModel(copy_byte_ms=1.0, copy_file_ms=10.0)
        clock = SimClock(model)
        clock.charge_copy(100, files=2)
        assert clock.now_ms == 120.0

    def test_copy_dominates_native_io_for_same_bytes(self):
        """The architectural point of Section 3.6: OMS staging is the
        expensive path compared to native library access."""
        clock = SimClock()
        clock.charge_copy(1_000_000)
        copy_cost = clock.elapsed_by_category()["copy"]
        clock.charge_native_io(1_000_000)
        native_cost = clock.elapsed_by_category()["native_io"]
        assert copy_cost > native_cost

    def test_ui_context_switch_costs_more_than_interaction(self):
        clock = SimClock()
        clock.charge_ui()
        clock.charge_ui_context_switch()
        by_cat = clock.elapsed_by_category()
        assert by_cat["ui_switch"] > by_cat["ui"]

    def test_lock_wait_poll_count(self):
        model = CostModel(lock_wait_poll_ms=100.0)
        clock = SimClock(model)
        clock.charge_lock_wait(polls=4)
        assert clock.elapsed_by_category()["lock_wait"] == 400.0


class TestReset:
    def test_reset_clears_everything(self):
        clock = SimClock()
        clock.charge_metadata_op()
        clock.charge_ui()
        clock.reset()
        assert clock.now_ms == 0.0
        assert clock.elapsed_by_category() == {}
        assert clock.events == []

class TestBoundedEvents:
    def test_ring_buffer_truncates_but_totals_survive(self):
        clock = SimClock(max_events=10)
        for _ in range(25):
            clock.charge("a", 1.0)
        assert len(clock.events) == 10
        assert clock.events_recorded == 25
        assert clock.events_dropped == 15
        # accounting is unaffected by eviction
        assert clock.now_ms == 25.0
        assert clock.elapsed_by_category() == {"a": 25.0}

    def test_recording_can_be_disabled(self):
        clock = SimClock(record_events=False)
        clock.charge("a", 5.0)
        assert clock.events == []
        assert clock.events_recorded == 0
        assert clock.now_ms == 5.0

    def test_kept_events_are_the_most_recent(self):
        clock = SimClock(max_events=3)
        for i in range(6):
            clock.charge(f"c{i}", 1.0)
        assert [c for _, c, _ in clock.events] == ["c3", "c4", "c5"]

    def test_reset_zeroes_event_counters(self):
        clock = SimClock(max_events=4)
        for _ in range(9):
            clock.charge("a", 1.0)
        clock.reset()
        assert clock.events == []
        assert clock.events_recorded == 0
        assert clock.events_dropped == 0


class TestLanes:
    def test_lane_charges_do_not_advance_master(self):
        clock = SimClock()
        clock.charge("setup", 10.0)
        lane = clock.open_lane("run0")
        with clock.use_lane(lane):
            clock.charge("tool", 100.0)
        assert clock.now_ms == 10.0          # master untouched
        assert lane.now_ms == 110.0          # started at master now
        assert lane.elapsed_ms == 100.0
        # resource accounting still sums globally
        assert clock.elapsed_by_category()["tool"] == 100.0

    def test_explicit_start_ms(self):
        clock = SimClock()
        lane = clock.open_lane("run1", start_ms=50.0)
        assert lane.start_ms == 50.0 and lane.now_ms == 50.0

    def test_advance_to_merges_makespan(self):
        clock = SimClock()
        lanes = [clock.open_lane(f"r{i}") for i in range(3)]
        for i, lane in enumerate(lanes):
            with clock.use_lane(lane):
                clock.charge("tool", 10.0 * (i + 1))
        clock.advance_to(max(lane.now_ms for lane in lanes))
        assert clock.now_ms == 30.0          # critical path, not 60
        assert clock.elapsed_by_category()["tool"] == 60.0  # summed

    def test_advance_to_never_rewinds(self):
        clock = SimClock()
        clock.charge("a", 100.0)
        clock.advance_to(10.0)
        assert clock.now_ms == 100.0

    def test_lane_binding_is_per_thread(self):
        import threading

        clock = SimClock()
        lane = clock.open_lane("mine")
        seen = {}

        def other():
            seen["lane"] = clock.current_lane()

        with clock.use_lane(lane):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
            assert clock.current_lane() is lane
        assert seen["lane"] is None
        assert clock.current_lane() is None

    def test_nested_lanes_restore(self):
        clock = SimClock()
        outer = clock.open_lane("outer")
        inner = clock.open_lane("inner")
        with clock.use_lane(outer):
            with clock.use_lane(inner):
                assert clock.current_lane() is inner
            assert clock.current_lane() is outer


class TestCommitFlush:
    def test_default_model_flushes_free(self):
        clock = SimClock()
        clock.charge_commit_flush(5)
        assert clock.now_ms == 0.0

    def test_flush_cost_scales_with_commits(self):
        clock = SimClock(CostModel(commit_flush_ms=4.0))
        clock.charge_commit_flush(3)
        assert clock.elapsed_by_category()["commit_flush"] == 12.0


class TestLaneAwareAdvance:
    """advance_to folds into the bound lane, not over it into the master.

    Regression: a run_many batch driven from inside a lane (a shard
    executor, a flow step) used to fold its wave ends into the master
    clock while the caller's lane never advanced — consecutive batches
    then leaked accounting across each other and reported zero makespan.
    """

    def test_advance_to_unbound_moves_master(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now_ms == 100.0

    def test_advance_to_never_moves_backwards(self):
        clock = SimClock()
        clock.advance_to(100.0)
        clock.advance_to(40.0)
        assert clock.now_ms == 100.0

    def test_advance_to_inside_lane_moves_lane_only(self):
        clock = SimClock()
        clock.charge("x", 50.0)  # master at 50
        lane = clock.open_lane("shard0")
        with clock.use_lane(lane):
            clock.advance_to(400.0)
            assert clock.now_ms == 400.0
        assert lane.now_ms == 400.0
        # master untouched until the lane itself is folded back
        assert clock.now_ms == 50.0

    def test_open_lane_default_start_is_lane_aware(self):
        clock = SimClock()
        outer = clock.open_lane("outer")
        with clock.use_lane(outer):
            clock.charge("x", 30.0)
            inner = clock.open_lane("inner")
        assert inner.start_ms == 30.0

    def test_consecutive_in_lane_batches_do_not_leak(self):
        """Two wave-style merges inside one lane accumulate in the lane."""
        clock = SimClock()
        shard = clock.open_lane("shard")
        for batch_end in (1000.0, 2500.0):
            with clock.use_lane(shard):
                start = clock.now_ms
                worker = clock.open_lane("run", start_ms=start)
                with clock.use_lane(worker):
                    clock.charge("tool", batch_end - start)
                clock.advance_to(worker.now_ms)
        assert shard.now_ms == 2500.0
        assert clock.now_ms == 0.0  # master still untouched
        clock.advance_to(shard.now_ms)  # unbound fold: master catches up
        assert clock.now_ms == 2500.0
