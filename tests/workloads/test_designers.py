"""Unit tests for the scripted designer agents."""

import random

import pytest

from repro.fmcad.framework import FMCADFramework
from repro.jcf.framework import JCFFramework
from repro.workloads.designers import FMCADOnlyAgent, HybridAgent


@pytest.fixture
def fmcad_setup(tmp_path):
    fmcad = FMCADFramework(tmp_path / "f")
    library = fmcad.create_library("shared")
    library.create_cell("cell0")
    view = library.create_cellview("cell0", "schematic")
    library.write_version(view, b"base", "setup")
    library.flush_meta("setup")
    return fmcad, library


@pytest.fixture
def jcf_setup(tmp_path):
    jcf = JCFFramework(tmp_path / "j")
    for name in ("u1", "u2"):
        jcf.resources.define_user("admin", name)
    jcf.resources.define_team("admin", "team")
    for name in ("u1", "u2"):
        jcf.resources.add_member("admin", name, "team")
    project = jcf.desktop.create_project("u1", "p")
    jcf.resources.assign_team_to_project("admin", "team", project.oid)
    project.create_cell("cell0")
    return jcf, project


class TestFMCADOnlyAgent:
    def test_agent_completes_work_cycle(self, fmcad_setup):
        fmcad, library = fmcad_setup
        agent = FMCADOnlyAgent("u1", random.Random(0), fmcad, library,
                               flush_probability=1.0)
        for _ in range(10):
            agent.step(["cell0"])
        assert agent.stats.completed > 0
        assert agent.stats.blocked == 0  # alone, never blocked

    def test_agent_checkin_creates_versions(self, fmcad_setup):
        fmcad, library = fmcad_setup
        agent = FMCADOnlyAgent("u1", random.Random(0), fmcad, library,
                               flush_probability=1.0)
        for _ in range(10):
            agent.step(["cell0"])
        cellview = library.cellview("cell0", "schematic")
        assert len(cellview.versions) == 1 + agent.stats.completed

    def test_two_agents_contend(self, fmcad_setup):
        fmcad, library = fmcad_setup
        agents = [
            FMCADOnlyAgent(f"u{i}", random.Random(i), fmcad, library)
            for i in range(2)
        ]
        for _ in range(20):
            for agent in agents:
                agent.step(["cell0"])
        assert sum(a.stats.blocked for a in agents) > 0

    def test_unflushed_meta_produces_stale_reads(self, fmcad_setup):
        fmcad, library = fmcad_setup
        never_flushes = FMCADOnlyAgent(
            "u1", random.Random(0), fmcad, library, flush_probability=0.0
        )
        observer = FMCADOnlyAgent(
            "u2", random.Random(1), fmcad, library, flush_probability=0.0
        )
        for _ in range(20):
            never_flushes.step(["cell0"])
            observer.step(["cell0"])
        assert observer.stats.stale_reads > 0


class TestHybridAgent:
    def test_agent_publishes_work(self, jcf_setup):
        jcf, project = jcf_setup
        agent = HybridAgent("u1", random.Random(0), jcf, project)
        for _ in range(10):
            agent.step(["cell0"])
        assert agent.stats.completed > 0
        assert agent.stats.blocked == 0

    def test_conflict_becomes_parallel_version(self, jcf_setup):
        jcf, project = jcf_setup
        first = HybridAgent("u1", random.Random(0), jcf, project)
        second = HybridAgent("u2", random.Random(1), jcf, project)
        # force the conflict deterministically
        assert first._try_acquire("cell0")
        assert second._try_acquire("cell0")
        assert second.stats.parallel_versions == 1
        cell = project.cell("cell0")
        assert len(cell.versions()) == 2
        holders = {
            jcf.workspaces.reserved_by(cv) for cv in cell.versions()
        }
        assert holders == {"u1", "u2"}

    def test_completed_work_leaves_design_objects(self, jcf_setup):
        jcf, project = jcf_setup
        agent = HybridAgent("u1", random.Random(0), jcf, project)
        assert agent._try_acquire("cell0")
        agent._finish_work()
        cell = project.cell("cell0")
        variant_names = [
            v.name for cv in cell.versions() for v in cv.variants()
        ]
        assert variant_names == ["u1_work1"]
