"""Unit tests for multi-user simulation and metrics helpers."""

import pytest

from repro.workloads.metrics import (
    format_table,
    mean,
    median,
    ratio,
    stddev,
    summarize,
)
from repro.workloads.sessions import MultiUserSimulation


class TestMetricsHelpers:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5
        assert median([]) == 0.0

    def test_stddev(self):
        assert stddev([5, 5, 5]) == 0.0
        assert stddev([1]) == 0.0
        assert stddev([0, 4]) == 2.0

    def test_summarize_shape(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_ratio(self):
        assert ratio(4, 2) == 2.0
        assert ratio(0, 0) == 0.0
        assert ratio(1, 0) == float("inf")

    def test_format_table_aligns(self):
        table = format_table(["a", "bbbb"], [["xx", 1], ["y", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")


class TestMultiUserSimulation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MultiUserSimulation(designers=0, cells=1)
        with pytest.raises(ValueError):
            MultiUserSimulation(designers=1, cells=0)

    def test_fmcad_arm_produces_blocking(self, tmp_path):
        sim = MultiUserSimulation(designers=6, cells=2, rounds=25, seed=2)
        metrics = sim.run_fmcad_only(tmp_path / "f")
        assert metrics.mode == "fmcad_only"
        assert metrics.blocked > 0
        assert metrics.block_rate > 0
        assert metrics.completed > 0

    def test_hybrid_arm_never_blocks(self, tmp_path):
        sim = MultiUserSimulation(designers=6, cells=2, rounds=25, seed=2)
        metrics = sim.run_hybrid(tmp_path / "h")
        assert metrics.blocked == 0
        assert metrics.parallel_versions > 0

    def test_hybrid_beats_fmcad_on_throughput(self, tmp_path):
        """The E31 headline: hybrid completes more work under contention."""
        sim = MultiUserSimulation(designers=8, cells=2, rounds=30, seed=3)
        fmcad = sim.run_fmcad_only(tmp_path / "f")
        hybrid = sim.run_hybrid(tmp_path / "h")
        assert hybrid.completed > fmcad.completed
        assert hybrid.block_rate < fmcad.block_rate

    def test_fmcad_staleness_appears(self, tmp_path):
        sim = MultiUserSimulation(designers=8, cells=2, rounds=30, seed=3)
        metrics = sim.run_fmcad_only(tmp_path / "f")
        assert metrics.stale_reads > 0

    def test_deterministic_per_seed(self, tmp_path):
        sim = MultiUserSimulation(designers=4, cells=2, rounds=20, seed=9)
        a = sim.run_fmcad_only(tmp_path / "a")
        b = sim.run_fmcad_only(tmp_path / "b")
        assert (a.blocked, a.completed) == (b.blocked, b.completed)

    def test_single_designer_never_blocks(self, tmp_path):
        sim = MultiUserSimulation(designers=1, cells=3, rounds=20, seed=1)
        metrics = sim.run_fmcad_only(tmp_path / "f")
        assert metrics.blocked == 0
