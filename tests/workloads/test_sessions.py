"""Unit tests for multi-user simulation and metrics helpers."""

import pytest

from repro.workloads.metrics import (
    format_table,
    mean,
    median,
    percentile,
    percentiles,
    ratio,
    stddev,
    summarize,
)
from repro.workloads.sessions import MultiUserSimulation


class TestMetricsHelpers:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5
        assert median([]) == 0.0

    def test_stddev(self):
        assert stddev([5, 5, 5]) == 0.0
        assert stddev([1]) == 0.0
        assert stddev([0, 4]) == 2.0

    def test_summarize_shape(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_ratio(self):
        assert ratio(4, 2) == 2.0
        assert ratio(0, 0) == 0.0
        assert ratio(1, 0) == float("inf")

    def test_format_table_aligns(self):
        table = format_table(["a", "bbbb"], [["xx", 1], ["y", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")

    def test_percentile_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 100.0) == 40.0
        assert percentile(values, 50.0) == 25.0
        # linear interpolation between rank positions
        assert percentile(values, 25.0) == pytest.approx(17.5)

    def test_percentile_handles_unsorted_input(self):
        assert percentile([40.0, 10.0, 30.0, 20.0], 50.0) == 25.0

    def test_percentile_edge_cases(self):
        assert percentile([], 95.0) == 0.0
        assert percentile([7.0], 99.0) == 7.0
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_percentiles_default_tail(self):
        tail = percentiles([float(n) for n in range(1, 101)])
        assert set(tail) == {"p50", "p95", "p99"}
        assert tail["p50"] <= tail["p95"] <= tail["p99"]
        assert tail["p99"] == pytest.approx(99.01)

    def test_percentiles_custom_points(self):
        tail = percentiles([1.0, 2.0, 3.0], pcts=(0.0, 100.0))
        assert tail == {"p0": 1.0, "p100": 3.0}


class TestMultiUserSimulation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MultiUserSimulation(designers=0, cells=1)
        with pytest.raises(ValueError):
            MultiUserSimulation(designers=1, cells=0)

    def test_fmcad_arm_produces_blocking(self, tmp_path):
        sim = MultiUserSimulation(designers=6, cells=2, rounds=25, seed=2)
        metrics = sim.run_fmcad_only(tmp_path / "f")
        assert metrics.mode == "fmcad_only"
        assert metrics.blocked > 0
        assert metrics.block_rate > 0
        assert metrics.completed > 0

    def test_hybrid_arm_never_blocks(self, tmp_path):
        sim = MultiUserSimulation(designers=6, cells=2, rounds=25, seed=2)
        metrics = sim.run_hybrid(tmp_path / "h")
        assert metrics.blocked == 0
        assert metrics.parallel_versions > 0

    def test_hybrid_beats_fmcad_on_throughput(self, tmp_path):
        """The E31 headline: hybrid completes more work under contention."""
        sim = MultiUserSimulation(designers=8, cells=2, rounds=30, seed=3)
        fmcad = sim.run_fmcad_only(tmp_path / "f")
        hybrid = sim.run_hybrid(tmp_path / "h")
        assert hybrid.completed > fmcad.completed
        assert hybrid.block_rate < fmcad.block_rate

    def test_fmcad_staleness_appears(self, tmp_path):
        sim = MultiUserSimulation(designers=8, cells=2, rounds=30, seed=3)
        metrics = sim.run_fmcad_only(tmp_path / "f")
        assert metrics.stale_reads > 0

    def test_deterministic_per_seed(self, tmp_path):
        sim = MultiUserSimulation(designers=4, cells=2, rounds=20, seed=9)
        a = sim.run_fmcad_only(tmp_path / "a")
        b = sim.run_fmcad_only(tmp_path / "b")
        assert (a.blocked, a.completed) == (b.blocked, b.completed)

    def test_single_designer_never_blocks(self, tmp_path):
        sim = MultiUserSimulation(designers=1, cells=3, rounds=20, seed=1)
        metrics = sim.run_fmcad_only(tmp_path / "f")
        assert metrics.blocked == 0
