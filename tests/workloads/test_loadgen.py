"""Scenario builder and the multi-user load generator."""

from __future__ import annotations

import pytest

from repro.server.engine import ServeEngine
from repro.workloads.loadgen import (
    ReplayReport,
    ScenarioSpec,
    build_scenario,
    replay_engine,
)


class TestScenarioSpec:
    def test_counts(self):
        spec = ScenarioSpec(teams=3, designers_per_team=5, runs_per_designer=2)
        assert spec.sessions == 15
        assert spec.total_runs == 30

    def test_defaults_match_paper_scenario(self):
        spec = ScenarioSpec()
        assert spec.activity == "schematic_entry"
        assert spec.sessions == 16


class TestBuildScenario:
    SPEC = ScenarioSpec(teams=2, designers_per_team=2, runs_per_designer=2)

    def test_one_library_per_team(self, tmp_path):
        hybrid, plans = build_scenario(tmp_path / "env", self.SPEC)
        assert len(plans) == self.SPEC.sessions
        assert {p.library for p in plans} == {"lib000", "lib001"}
        assert {p.team for p in plans} == {"team000", "team001"}

    def test_every_designer_owns_disjoint_cells(self, tmp_path):
        hybrid, plans = build_scenario(tmp_path / "env", self.SPEC)
        all_cells = [cell for plan in plans for cell in plan.cells]
        assert len(all_cells) == self.SPEC.total_runs
        assert len(set(all_cells)) == len(all_cells)

    def test_cells_are_prepared_and_auditable(self, tmp_path):
        hybrid, plans = build_scenario(tmp_path / "env", self.SPEC)
        library = hybrid.fmcad.library(plans[0].library)
        assert library.has_cell(plans[0].cells[0])
        assert hybrid.audit().clean

    def test_membership_is_wired(self, tmp_path):
        hybrid, plans = build_scenario(tmp_path / "env", self.SPEC)
        resources = hybrid.jcf.resources
        for plan in plans:
            assert resources.is_member(plan.user, plan.team)


class TestReplayReport:
    def test_throughput_from_simulated_makespan(self):
        report = ReplayReport(ok=10, makespan_ms=2000.0)
        assert report.checkins_per_sim_s == 5.0
        assert ReplayReport(ok=5, makespan_ms=0.0).checkins_per_sim_s == 0.0

    def test_summary_is_plain_data(self):
        import json

        report = ReplayReport(
            sessions=2, ok=2, makespan_ms=100.0,
            latencies_ms=[1.0, 2.0], rejected={"throttled": 1},
        )
        summary = report.summary()
        json.dumps(summary)
        assert summary["rejected"] == {"throttled": 1}
        assert set(summary["latency_ms"]) == {"p50", "p95", "p99"}


class TestReplayEngine:
    SPEC = ScenarioSpec(teams=2, designers_per_team=2, runs_per_designer=2)

    def test_counts_reconcile(self, tmp_path):
        hybrid, plans = build_scenario(tmp_path / "env", self.SPEC)
        engine = ServeEngine(hybrid, shards=2, max_batch=4, window_ms=200.0)
        report = replay_engine(engine, plans, self.SPEC)
        assert report.submitted == self.SPEC.total_runs
        assert report.admitted == report.submitted  # no overload configured
        assert report.completed == report.admitted
        assert report.ok == report.completed
        assert len(report.latencies_ms) == report.completed
        assert report.makespan_ms > 0

    def test_rejections_are_counted_not_raised(self, tmp_path):
        hybrid, plans = build_scenario(tmp_path / "env", self.SPEC)
        engine = ServeEngine(
            hybrid, shards=1, max_batch=100, window_ms=1e9, queue_depth=2
        )
        report = replay_engine(engine, plans, self.SPEC, pump_every=10**9)
        assert report.rejected.get("queue-full", 0) > 0
        assert report.admitted + sum(report.rejected.values()) == (
            report.submitted
        )

    def test_reproducible_across_builds(self, tmp_path):
        summaries = []
        for arm in ("a", "b"):
            hybrid, plans = build_scenario(tmp_path / arm, self.SPEC)
            engine = ServeEngine(
                hybrid, shards=2, max_batch=4, window_ms=200.0
            )
            report = replay_engine(engine, plans, self.SPEC)
            summaries.append(report.summary())
        assert summaries[0] == summaries[1]


class TestLoadgenCli:
    def test_smoke_run_exits_clean(self, tmp_path, capsys):
        import json

        from repro.workloads.loadgen import main

        code = main([
            "--teams", "2", "--designers", "2", "--runs", "1",
            "--shards", "2", "--window-ms", "10", "--root",
            str(tmp_path / "env"),
        ])
        printed = json.loads(capsys.readouterr().out)
        assert code == 0
        assert printed["dropped_sessions"] == 0
        assert printed["audit_clean"] is True
        assert printed["ok"] == 4
