"""Unit tests for synthetic design generation."""

import random

import pytest

from repro.tools.layout.drc import run_drc
from repro.tools.schematic.netlist import netlist_schematic
from repro.workloads.designs import (
    DesignSpec,
    generate_design,
    generate_layout_for,
    make_combinational_cell,
    make_parent_cell,
    populate_library,
)


class TestLeafGeneration:
    def test_leaf_is_structurally_valid(self):
        rng = random.Random(0)
        cell = make_combinational_cell("leaf", 4, 3, rng)
        assert cell.validate() == []

    def test_leaf_netlists_and_has_gates(self):
        rng = random.Random(0)
        cell = make_combinational_cell("leaf", 4, 2, rng)
        netlist = netlist_schematic(cell)
        assert netlist.validate() == []
        # 3 reduction gates for 4 inputs + 2 NOTs + 2 extra reductions
        assert len(netlist.gates()) >= 5

    def test_extra_gates_scale_size(self):
        small = make_combinational_cell("s", 4, 0, random.Random(0))
        big = make_combinational_cell("b", 4, 10, random.Random(0))
        assert len(big.components()) > len(small.components())

    def test_deterministic_for_same_seed(self):
        a = make_combinational_cell("c", 4, 2, random.Random(7))
        b = make_combinational_cell("c", 4, 2, random.Random(7))
        assert a.to_bytes() == b.to_bytes()

    def test_too_few_inputs_rejected(self):
        with pytest.raises(ValueError):
            make_combinational_cell("c", 1, 0, random.Random(0))


class TestDesignGeneration:
    def test_cell_count_matches_spec(self):
        spec = DesignSpec(name="top", depth=2, fanout=2)
        design = generate_design(spec)
        assert len(design.schematics) == spec.num_cells == 7

    def test_hierarchy_edges_form_tree(self):
        design = generate_design(DesignSpec(name="top", depth=2, fanout=3))
        children = [child for _, child in design.hierarchy]
        assert len(children) == len(set(children))  # each child one parent

    def test_every_schematic_valid(self):
        design = generate_design(DesignSpec(name="top", depth=2, fanout=2))
        for name, schematic in design.schematics.items():
            assert schematic.validate() == [], name

    def test_top_netlists_through_hierarchy(self):
        design = generate_design(DesignSpec(name="top", depth=2, fanout=2))
        netlist = netlist_schematic(
            design.schematics[design.top_cell],
            lambda ref: design.schematics[ref],
        )
        assert netlist.validate() == []

    def test_depth_zero_is_single_leaf(self):
        design = generate_design(DesignSpec(name="only", depth=0))
        assert design.cell_names() == ["only"]
        assert design.hierarchy == []

    def test_deterministic_per_seed(self):
        spec = DesignSpec(name="top", depth=1, fanout=2, seed=5)
        a = generate_design(spec)
        b = generate_design(spec)
        assert a.schematics["top"].to_bytes() == b.schematics["top"].to_bytes()


class TestLayoutGeneration:
    def test_layouts_match_schematic_hierarchy(self):
        design = generate_design(DesignSpec(name="top", depth=1, fanout=2))
        top_layout = design.layouts["top"]
        top_schematic = design.schematics["top"]
        assert top_layout.subcell_refs() == top_schematic.subcell_refs()

    def test_layouts_drc_clean(self):
        design = generate_design(DesignSpec(name="top", depth=1, fanout=2))
        for name, layout in design.layouts.items():
            violations = run_drc(
                layout, resolver=lambda ref: design.layouts[ref]
            )
            assert violations == [], (name, violations[:3])

    def test_non_isomorphic_layout_drops_instances(self):
        design = generate_design(DesignSpec(name="top", depth=1, fanout=2))
        flattened = generate_layout_for(
            design.schematics["top"], isomorphic=False
        )
        assert flattened.subcell_refs() == []

    def test_skip_children_selective(self):
        design = generate_design(DesignSpec(name="top", depth=1, fanout=2))
        partial = generate_layout_for(
            design.schematics["top"], skip_children=["top_0"]
        )
        assert partial.subcell_refs() == ["top_1"]

    def test_every_net_labelled(self):
        design = generate_design(DesignSpec(name="top", depth=0))
        layout = design.layouts["top"]
        schematic = design.schematics["top"]
        labels = {label.text for label in layout.labels}
        assert {net.name for net in schematic.nets()} <= labels


class TestPopulateLibrary:
    def test_library_holds_all_cells_and_views(self, fmcad):
        design = generate_design(DesignSpec(name="top", depth=1, fanout=2))
        library = populate_library(fmcad, "lib", design)
        assert len(library.cells()) == 3
        for cell in library.cells():
            assert cell.has_cellview("schematic")
            assert cell.has_cellview("layout")
            assert cell.cellview("schematic").default_version is not None

    def test_meta_flushed(self, fmcad):
        design = generate_design(DesignSpec(name="top", depth=0))
        library = populate_library(fmcad, "lib", design)
        assert library.verify_meta() == []

    def test_layouts_optional(self, fmcad):
        design = generate_design(DesignSpec(name="top", depth=0))
        library = populate_library(
            fmcad, "lib", design, include_layouts=False
        )
        assert not library.cell("top").has_cellview("layout")


class TestParentCell:
    def test_single_child_buffered(self):
        rng = random.Random(0)
        child = make_combinational_cell("c", 2, 0, rng)
        parent = make_parent_cell("p", [child], 2, rng)
        assert parent.validate() == []
        netlist = netlist_schematic(parent, lambda ref: child)
        assert any(g.gate_type == "BUF" for g in netlist.gates())
