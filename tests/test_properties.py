"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmcad.extension import ExtensionInterpreter
from repro.fmcad.metafile import MetaRecord
from repro.oms.database import OMSDatabase
from repro.oms.schema import AttributeDef, Schema
from repro.tools.layout.geometry import LAYERS, Rect
from repro.tools.simulator.engine import LogicSimulator, Netlist
from repro.tools.simulator.gates import Gate
from repro.tools.simulator.signals import Logic, resolve_bus
from repro.workloads.designs import make_combinational_cell
from repro.tools.schematic.netlist import netlist_schematic

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

logic_values = st.sampled_from(list(Logic))

rects = st.builds(
    lambda layer, x, y, w, h: Rect(layer, x, y, x + w, y + h),
    st.sampled_from(LAYERS),
    st.integers(-1000, 1000),
    st.integers(-1000, 1000),
    st.integers(1, 200),
    st.integers(1, 200),
)

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)


# ---------------------------------------------------------------------------
# four-valued logic
# ---------------------------------------------------------------------------


class TestLogicProperties:
    @given(st.lists(logic_values, max_size=6))
    def test_bus_resolution_order_independent(self, drivers):
        shuffled = list(drivers)
        random.Random(0).shuffle(shuffled)
        assert resolve_bus(drivers) is resolve_bus(shuffled)

    @given(st.lists(logic_values, max_size=6))
    def test_adding_z_never_changes_resolution(self, drivers):
        assert resolve_bus(drivers + [Logic.Z]) is resolve_bus(drivers)

    @given(st.lists(logic_values, min_size=1, max_size=6))
    def test_adding_x_forces_x_or_keeps(self, drivers):
        resolved = resolve_bus(drivers + [Logic.X])
        assert resolved is Logic.X

    @given(logic_values)
    def test_round_trip_through_string(self, value):
        assert Logic.from_str(str(value)) is value


# ---------------------------------------------------------------------------
# geometry
# ---------------------------------------------------------------------------


class TestGeometryProperties:
    @given(rects, rects)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(rects, rects)
    def test_touch_symmetric(self, a, b):
        assert a.touches(b) == b.touches(a)

    @given(rects, rects)
    def test_overlap_implies_touch(self, a, b):
        if a.overlaps(b):
            assert a.touches(b)

    @given(rects, rects)
    def test_distance_symmetric_and_consistent(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)
        if a.touches(b):
            assert a.distance_to(b) == 0
        else:
            assert a.distance_to(b) > 0

    @given(rects, st.integers(-500, 500), st.integers(-500, 500))
    def test_translation_preserves_shape(self, rect, dx, dy):
        moved = rect.translated(dx, dy)
        assert moved.width == rect.width
        assert moved.area == rect.area

    @given(rects)
    def test_self_overlap(self, rect):
        assert rect.overlaps(rect)
        assert rect.touches(rect)


# ---------------------------------------------------------------------------
# metafile records
# ---------------------------------------------------------------------------


class TestMetaRecordProperties:
    @given(
        st.text(alphabet="abcdefgh0123456789_.", min_size=1, max_size=20),
        st.text(alphabet="abcdefgh", min_size=1, max_size=10),
        st.integers(1, 10_000),
        st.integers(0, 10_000),
    )
    def test_round_trip(self, cell, view, version, tick):
        record = MetaRecord(
            cell=cell,
            view=view,
            viewtype=view,
            version=version,
            filename=f"v{version}.dat",
            author="alice",
            tick=tick,
        )
        assert MetaRecord.from_line(record.to_line()) == record


# ---------------------------------------------------------------------------
# extension language arithmetic agrees with Python
# ---------------------------------------------------------------------------


class TestExtensionProperties:
    @given(
        st.integers(-10_000, 10_000), st.integers(-10_000, 10_000)
    )
    def test_addition_matches_python(self, a, b):
        interp = ExtensionInterpreter()
        assert interp.run(f"(+ {a} {b})") == a + b

    @given(
        st.integers(-100, 100),
        st.integers(-100, 100),
        st.integers(-100, 100),
    )
    def test_arith_expression(self, a, b, c):
        interp = ExtensionInterpreter()
        assert interp.run(f"(- (* {a} {b}) {c})") == a * b - c

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_comparison_matches_python(self, a, b):
        interp = ExtensionInterpreter()
        assert interp.run(f"(< {a} {b})") == (a < b)

    @given(st.lists(st.integers(-50, 50), max_size=8))
    def test_list_length(self, values):
        interp = ExtensionInterpreter()
        literal = " ".join(str(v) for v in values)
        assert interp.run(f"(length (list {literal}))") == len(values)


# ---------------------------------------------------------------------------
# OMS kernel invariants under random operation sequences
# ---------------------------------------------------------------------------


def _fresh_db():
    schema = Schema("prop")
    schema.define_entity(
        "Node", [AttributeDef("name", "str", required=True)]
    )
    schema.define_relationship("edge", "Node", "Node", "M:N")
    return OMSDatabase(schema)


class TestOMSProperties:
    @given(st.lists(st.sampled_from(["create", "delete", "link"]),
                    max_size=30),
           st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_random_ops_keep_links_consistent(self, ops, rng):
        """No link ever dangles: both endpoints of every link exist."""
        db = _fresh_db()
        live = []
        for op in ops:
            if op == "create" or not live:
                live.append(db.create("Node", {"name": "n"}).oid)
            elif op == "delete":
                victim = rng.choice(live)
                live.remove(victim)
                db.delete(victim)
            else:
                db.link("edge", rng.choice(live), rng.choice(live))
        for src, dst in db.link_pairs("edge"):
            assert db.exists(src) and db.exists(dst)
        assert db._link_index.check_integrity() == []

    @given(st.lists(st.tuples(st.sampled_from(["attr", "link"]),
                              st.booleans()), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_aborted_transactions_never_leak(self, steps):
        """State after a rolled-back transaction equals state before."""
        db = _fresh_db()
        a = db.create("Node", {"name": "a"})
        b = db.create("Node", {"name": "b"})
        before_stats = db.stats()
        try:
            with db.transaction():
                for kind, flag in steps:
                    if kind == "attr":
                        db.set_attr(a.oid, "name", "changed")
                    else:
                        if flag:
                            db.link("edge", a.oid, b.oid)
                        else:
                            db.create("Node", {"name": "temp"})
                raise RuntimeError("force rollback")
        except RuntimeError:
            pass
        assert db.stats() == before_stats
        assert db.get(a.oid).get("name") == "a"


# ---------------------------------------------------------------------------
# simulator: generated combinational cells behave like their Python model
# ---------------------------------------------------------------------------


def _python_eval(netlist: Netlist, inputs: dict) -> dict:
    """Reference evaluation of an acyclic combinational netlist."""
    values = dict(inputs)
    remaining = list(netlist.gates())
    ops = {
        "AND": lambda vs: all(vs),
        "OR": lambda vs: any(vs),
        "NAND": lambda vs: not all(vs),
        "NOR": lambda vs: not any(vs),
        "XOR": lambda vs: sum(vs) % 2 == 1,
        "XNOR": lambda vs: sum(vs) % 2 == 0,
        "NOT": lambda vs: not vs[0],
        "BUF": lambda vs: vs[0],
    }
    while remaining:
        progressed = False
        for gate in list(remaining):
            if all(net in values for net in gate.inputs):
                values[gate.output] = ops[gate.gate_type](
                    [values[n] for n in gate.inputs]
                )
                remaining.remove(gate)
                progressed = True
        assert progressed, "combinational loop?"
    return values


class TestSimulatorProperties:
    @given(
        st.integers(2, 5),
        st.integers(0, 4),
        st.integers(0, 2**16),
        st.integers(0, 31),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_cell_matches_reference_model(
        self, n_inputs, extra, seed, pattern
    ):
        """Event-driven simulation settles to the zero-delay truth value."""
        cell = make_combinational_cell(
            "cell", n_inputs, extra, random.Random(seed)
        )
        netlist = netlist_schematic(cell)
        bits = {
            f"in{i}": bool((pattern >> i) & 1) for i in range(n_inputs)
        }
        expected = _python_eval(netlist, bits)["out"]
        stimuli = [
            (0, net, Logic.from_bool(bit)) for net, bit in bits.items()
        ]
        result = LogicSimulator(netlist).run(stimuli)
        assert result.final_value("out") is Logic.from_bool(expected)

    @given(st.integers(0, 7))
    def test_adder_matches_integer_addition(self, row):
        netlist = Netlist("fa")
        for net in ("a", "b", "cin"):
            netlist.add_input(net)
        netlist.add_output("sum")
        netlist.add_output("cout")
        netlist.add_gate(Gate("x1", "XOR", ("a", "b"), "ab"))
        netlist.add_gate(Gate("x2", "XOR", ("ab", "cin"), "sum"))
        netlist.add_gate(Gate("a1", "AND", ("a", "b"), "t1"))
        netlist.add_gate(Gate("a2", "AND", ("ab", "cin"), "t2"))
        netlist.add_gate(Gate("o1", "OR", ("t1", "t2"), "cout"))
        a, b, c = (row >> 2) & 1, (row >> 1) & 1, row & 1
        result = LogicSimulator(netlist).run(
            [
                (0, "a", Logic.from_bool(bool(a))),
                (0, "b", Logic.from_bool(bool(b))),
                (0, "cin", Logic.from_bool(bool(c))),
            ]
        )
        total = a + b + c
        assert result.final_value("sum") is Logic.from_bool(
            bool(total % 2)
        )
        assert result.final_value("cout") is Logic.from_bool(
            bool(total // 2)
        )


# ---------------------------------------------------------------------------
# generated designs are always valid
# ---------------------------------------------------------------------------


class TestDesignGeneratorProperties:
    @given(
        st.integers(2, 6),
        st.integers(0, 6),
        st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_leaf_cells_always_validate(self, n_inputs, extra, seed):
        cell = make_combinational_cell(
            "leaf", n_inputs, extra, random.Random(seed)
        )
        assert cell.validate() == []
        assert netlist_schematic(cell).validate() == []
