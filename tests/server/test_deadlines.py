"""Deadline propagation, cancellation, and idempotent retries."""

from __future__ import annotations

import pytest

from repro.errors import DeadlineExceededError
from repro.server.engine import ServeEngine
from repro.server.protocol import ScriptCatalog
from repro.workloads.loadgen import ScenarioSpec, build_scenario

SPEC = ScenarioSpec(teams=1, designers_per_team=2, runs_per_designer=4)
KWARGS = ScriptCatalog().resolve("schematic_entry", "idempotent_inverter", {})


@pytest.fixture
def scenario(tmp_path):
    return build_scenario(tmp_path / "env", SPEC)


def _engine(hybrid, **overrides):
    config = dict(shards=1, max_batch=8, window_ms=100.0)
    config.update(overrides)
    return ServeEngine(hybrid, **config)


def _session(engine, plan):
    return engine.open_session(
        plan.user, plan.team, plan.library, plan.project
    )


class TestDeadlines:
    def test_spent_budget_refused_at_submit(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        with pytest.raises(DeadlineExceededError) as excinfo:
            engine.submit(
                session, plans[0].cells[0], "schematic_entry",
                kwargs=KWARGS, now_ms=engine.epoch_ms, deadline_ms=0.0,
            )
        assert excinfo.value.retry_after_ms == 0.0
        # the refusal never occupied queue space
        assert engine.stats()["per_shard"][0]["admission"]["depth"] == 0

    def test_expired_run_is_shed_with_typed_error(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        t0 = engine.epoch_ms
        pending = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0, deadline_ms=50.0,
        )
        assert pending.deadline_ms == t0 + 50.0
        # the window flushes after the budget is gone
        engine.pump(t0 + 200.0)
        assert pending.status == "deadline-exceeded"
        assert isinstance(pending.error, DeadlineExceededError)
        assert pending.error.retry_after_ms == 0.0
        assert pending.outcome is None
        assert engine.stats()["per_shard"][0]["deadline_shed"] == 1
        engine.close()

    def test_mixed_batch_sheds_only_the_expired(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        t0 = engine.epoch_ms
        tight = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0, deadline_ms=50.0,
        )
        roomy = engine.submit(
            session, plans[0].cells[1], "schematic_entry",
            kwargs=KWARGS, now_ms=t0, deadline_ms=60_000.0,
        )
        engine.pump(t0 + 200.0)
        assert tight.status == "deadline-exceeded"
        assert roomy.outcome is not None and roomy.outcome.ok
        engine.close()
        assert hybrid.audit().clean

    def test_no_deadline_never_sheds(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        t0 = engine.epoch_ms
        pending = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0,
        )
        engine.pump(t0 + 1_000_000.0)
        assert pending.outcome is not None and pending.outcome.ok
        engine.close()


class TestCancellation:
    def test_cancel_inside_open_window(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        t0 = engine.epoch_ms
        pending = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0,
        )
        assert engine.cancel(pending) is True
        assert pending.cancelled is True
        assert pending.status == "cancelled"
        # the admission slot was given back immediately
        assert engine.stats()["per_shard"][0]["admission"]["depth"] == 0
        # the flushed window must not run (or re-settle) it
        engine.pump(t0 + 200.0)
        assert pending.outcome is None
        assert engine.stats()["per_shard"][0]["cancelled"] == 1
        engine.close()

    def test_cancel_after_settle_is_refused(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        pending = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=engine.epoch_ms,
        )
        engine.drain()
        assert pending.outcome is not None
        assert engine.cancel(pending) is False
        engine.close()


class TestIdempotentRetries:
    def test_retry_in_flight_returns_same_pending(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        t0 = engine.epoch_ms
        first = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0, request_key="r1",
        )
        retry = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0 + 10.0, request_key="r1",
        )
        assert retry is first
        assert retry.dedupe_count == 1
        assert session.dedupe_hits == 1
        # only one slot was ever occupied
        assert engine.stats()["per_shard"][0]["admission"]["depth"] == 1
        engine.close()

    def test_retry_after_success_never_double_commits(self, scenario):
        """The lost-ack scenario: the run committed but the client never
        heard; its retry is answered from the original, not re-run."""
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        cell = plans[0].cells[0]
        first = engine.submit(
            session, cell, "schematic_entry",
            kwargs=KWARGS, now_ms=engine.epoch_ms, request_key="r1",
        )
        engine.drain()
        assert first.outcome is not None and first.outcome.ok
        library = hybrid.fmcad.library(plans[0].library)
        versions_after_first = len(
            library.cellview(cell, "schematic").versions
        )
        retry = engine.submit(
            session, cell, "schematic_entry",
            kwargs=KWARGS, now_ms=engine.epoch_ms + 500.0, request_key="r1",
        )
        engine.drain()
        assert retry is first
        assert retry.dedupe_count == 1
        assert len(
            library.cellview(cell, "schematic").versions
        ) == versions_after_first
        engine.close()

    def test_retry_after_failure_is_a_fresh_attempt(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        session = _session(engine, plans[0])
        t0 = engine.epoch_ms
        doomed = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0, deadline_ms=50.0, request_key="r1",
        )
        engine.pump(t0 + 200.0)
        assert doomed.status == "deadline-exceeded"
        retry = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0 + 300.0, request_key="r1",
        )
        assert retry is not doomed
        engine.drain()
        assert retry.outcome is not None and retry.outcome.ok
        engine.close()

    def test_dedupe_window_is_bounded(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid, dedupe_window=2, max_batch=1)
        session = _session(engine, plans[0])
        t0 = engine.epoch_ms
        for i, key in enumerate(("r1", "r2", "r3")):
            engine.submit(
                session, plans[0].cells[i], "schematic_entry",
                kwargs=KWARGS, now_ms=t0 + i, request_key=key,
            )
        assert list(session.dedupe) == ["r2", "r3"]  # r1 was evicted
        engine.drain()
        # an r1 retry now re-admits instead of answering from cache
        retry = engine.submit(
            session, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0 + 500.0, request_key="r1",
        )
        assert retry.dedupe_count == 0
        engine.drain()
        engine.close()

    def test_keys_are_scoped_per_session(self, scenario):
        hybrid, plans = scenario
        engine = _engine(hybrid)
        first = _session(engine, plans[0])
        second = _session(engine, plans[1])
        a = engine.submit(
            first, plans[0].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=engine.epoch_ms, request_key="r1",
        )
        b = engine.submit(
            second, plans[1].cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=engine.epoch_ms, request_key="r1",
        )
        assert a is not b
        engine.drain()
        engine.close()
