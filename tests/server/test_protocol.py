"""Wire framing and the named-script catalog."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    DeadlineExceededError,
    LeaseHeldError,
    ProtocolError,
    ServerOverloadError,
    ShardUnavailableError,
)
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    OPERATIONS,
    PROTOCOL_VERSION,
    ScriptCatalog,
    decode_line,
    encode_frame,
    error_frame,
)


class TestFraming:
    def test_roundtrip(self):
        payload = {"op": "ping", "id": 7}
        line = encode_frame(payload)
        assert line.endswith(b"\n")
        assert decode_line(line) == payload

    def test_encoding_is_canonical(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_empty_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"\n")

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2,3]\n")

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b'{"op":"format_disk"}\n')

    def test_error_frame_carries_overload_details(self):
        error = ServerOverloadError(
            "full", shard_id=2, reason="queue-full", retry_after_ms=50.0
        )
        frame = error_frame(9, error)
        assert frame["ok"] is False
        assert frame["error"]["type"] == "ServerOverloadError"
        assert frame["error"]["shard"] == 2
        assert frame["error"]["retry_after_ms"] == 50.0
        # frames must survive the wire
        json.loads(encode_frame(frame).decode())

    def test_version_two_names_the_hardened_ops(self):
        assert PROTOCOL_VERSION == 2
        for op in ("lease", "release", "ping", "bye"):
            assert op in OPERATIONS
            decode_line(encode_frame({"op": op, "id": 1}))

    def test_oversized_frame_rejected_with_typed_error(self):
        blob = json.dumps(
            {"op": "ping", "junk": "y" * (MAX_FRAME_BYTES + 1)}
        ).encode() + b"\n"
        with pytest.raises(ProtocolError, match="oversized"):
            decode_line(blob)

    def test_zero_retry_hint_survives_the_wire(self):
        """retry_after_ms == 0.0 means 'retry immediately', not 'no
        hint' — the falsy value must not be dropped from the frame."""
        error = DeadlineExceededError(
            "too late", shard_id=1, retry_after_ms=0.0
        )
        frame = error_frame(3, error)
        assert frame["error"]["retry_after_ms"] == 0.0

    def test_error_frame_carries_breaker_state(self):
        error = ShardUnavailableError(
            "fenced", shard_id=3, state="open", retry_after_ms=750.0
        )
        frame = error_frame(4, error)
        assert frame["error"]["state"] == "open"
        assert frame["error"]["retry_after_ms"] == 750.0

    def test_error_frame_carries_lease_details(self):
        error = LeaseHeldError(
            "held", key="cell/lib/c0", holder="s7", retry_after_ms=120.0
        )
        frame = error_frame(5, error)
        assert frame["error"]["key"] == "cell/lib/c0"
        assert frame["error"]["holder"] == "s7"


class TestScriptCatalog:
    def test_builtin_scripts_cover_every_activity(self):
        catalog = ScriptCatalog()
        assert "idempotent_inverter" in catalog.names("schematic_entry")
        assert "inverter_bench" in catalog.names("digital_simulation")
        assert "strap_layout" in catalog.names("layout_entry")

    def test_resolves_to_wrapper_kwargs(self):
        catalog = ScriptCatalog()
        kwargs = catalog.resolve(
            "schematic_entry", "inverter_chain", {"stages": 3}
        )
        assert callable(kwargs["edit_fn"])
        kwargs = catalog.resolve("digital_simulation", "inverter_bench", {})
        assert callable(kwargs["testbench_fn"])

    def test_unknown_activity_rejected(self):
        with pytest.raises(ProtocolError):
            ScriptCatalog().resolve("place_and_route", "anything")

    def test_unknown_script_rejected(self):
        with pytest.raises(ProtocolError):
            ScriptCatalog().resolve("schematic_entry", "no_such_script")

    def test_missing_script_rejected(self):
        with pytest.raises(ProtocolError):
            ScriptCatalog().resolve("schematic_entry", None)

    def test_bad_params_become_protocol_errors(self):
        with pytest.raises(ProtocolError):
            ScriptCatalog().resolve(
                "schematic_entry", "inverter_chain", {"stages": "many"}
            )

    def test_custom_registration(self):
        catalog = ScriptCatalog()
        catalog.register(
            "layout_entry", "custom", lambda p: {"edit_fn": lambda e: None}
        )
        assert "custom" in catalog.names("layout_entry")
        assert callable(
            catalog.resolve("layout_entry", "custom", {})["edit_fn"]
        )
