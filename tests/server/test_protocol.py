"""Wire framing and the named-script catalog."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError, ServerOverloadError
from repro.server.protocol import (
    ScriptCatalog,
    decode_line,
    encode_frame,
    error_frame,
)


class TestFraming:
    def test_roundtrip(self):
        payload = {"op": "ping", "id": 7}
        line = encode_frame(payload)
        assert line.endswith(b"\n")
        assert decode_line(line) == payload

    def test_encoding_is_canonical(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_empty_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"\n")

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2,3]\n")

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b'{"op":"format_disk"}\n')

    def test_error_frame_carries_overload_details(self):
        error = ServerOverloadError(
            "full", shard_id=2, reason="queue-full", retry_after_ms=50.0
        )
        frame = error_frame(9, error)
        assert frame["ok"] is False
        assert frame["error"]["type"] == "ServerOverloadError"
        assert frame["error"]["shard"] == 2
        assert frame["error"]["retry_after_ms"] == 50.0
        # frames must survive the wire
        json.loads(encode_frame(frame).decode())


class TestScriptCatalog:
    def test_builtin_scripts_cover_every_activity(self):
        catalog = ScriptCatalog()
        assert "idempotent_inverter" in catalog.names("schematic_entry")
        assert "inverter_bench" in catalog.names("digital_simulation")
        assert "strap_layout" in catalog.names("layout_entry")

    def test_resolves_to_wrapper_kwargs(self):
        catalog = ScriptCatalog()
        kwargs = catalog.resolve(
            "schematic_entry", "inverter_chain", {"stages": 3}
        )
        assert callable(kwargs["edit_fn"])
        kwargs = catalog.resolve("digital_simulation", "inverter_bench", {})
        assert callable(kwargs["testbench_fn"])

    def test_unknown_activity_rejected(self):
        with pytest.raises(ProtocolError):
            ScriptCatalog().resolve("place_and_route", "anything")

    def test_unknown_script_rejected(self):
        with pytest.raises(ProtocolError):
            ScriptCatalog().resolve("schematic_entry", "no_such_script")

    def test_missing_script_rejected(self):
        with pytest.raises(ProtocolError):
            ScriptCatalog().resolve("schematic_entry", None)

    def test_bad_params_become_protocol_errors(self):
        with pytest.raises(ProtocolError):
            ScriptCatalog().resolve(
                "schematic_entry", "inverter_chain", {"stages": "many"}
            )

    def test_custom_registration(self):
        catalog = ScriptCatalog()
        catalog.register(
            "layout_entry", "custom", lambda p: {"edit_fn": lambda e: None}
        )
        assert "custom" in catalog.names("layout_entry")
        assert callable(
            catalog.resolve("layout_entry", "custom", {})["edit_fn"]
        )
