"""Batch windows: size-bounded and deadline-bounded flushing."""

from __future__ import annotations

import pytest

from repro.server.coalescer import ShardBatcher


class TestShardBatcher:
    def test_flushes_when_size_bound_hits(self):
        batcher = ShardBatcher(0, max_batch=3, window_ms=1000.0)
        assert batcher.add("a", 0.0) is None
        assert batcher.add("b", 1.0) is None
        flushed = batcher.add("c", 2.0)
        assert flushed == ["a", "b", "c"]
        assert len(batcher) == 0
        assert batcher.flushes_by_size == 1

    def test_deadline_anchors_on_oldest_request(self):
        batcher = ShardBatcher(0, max_batch=100, window_ms=50.0)
        batcher.add("a", 10.0)
        batcher.add("b", 45.0)  # later arrivals do not extend the window
        assert not batcher.due(59.0)
        assert batcher.due(60.0)
        assert batcher.flush_due(60.0) == ["a", "b"]
        assert batcher.flushes_by_deadline == 1

    def test_flush_due_before_deadline_is_noop(self):
        batcher = ShardBatcher(0, max_batch=10, window_ms=100.0)
        batcher.add("a", 0.0)
        assert batcher.flush_due(50.0) is None
        assert len(batcher) == 1

    def test_empty_batcher_is_never_due(self):
        batcher = ShardBatcher(0, max_batch=10, window_ms=100.0)
        assert not batcher.due(1e9)
        assert batcher.flush_due(1e9) is None

    def test_new_window_opens_after_flush(self):
        batcher = ShardBatcher(0, max_batch=2, window_ms=100.0)
        batcher.add("a", 0.0)
        batcher.add("b", 1.0)
        batcher.add("c", 500.0)
        assert batcher.deadline_ms == 600.0

    def test_unconditional_flush_drains_partial_window(self):
        batcher = ShardBatcher(0, max_batch=10, window_ms=1000.0)
        batcher.add("a", 0.0)
        assert batcher.flush() == ["a"]
        assert batcher.deadline_ms is None

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ShardBatcher(0, max_batch=0, window_ms=10.0)
        with pytest.raises(ValueError):
            ShardBatcher(0, max_batch=1, window_ms=-1.0)
