"""Consistent-hash shard map and the sharded lock router."""

from __future__ import annotations

import threading

import pytest

from repro.errors import LockContentionError
from repro.oms.locks import ShardedLockManager
from repro.server.shards import ShardMap


class TestShardMap:
    def test_single_shard_takes_everything(self):
        shard_map = ShardMap(1)
        assert {shard_map.shard_of_library(f"lib{i}") for i in range(50)} == {0}

    def test_assignment_is_stable(self):
        a, b = ShardMap(4), ShardMap(4)
        for i in range(100):
            name = f"lib{i:03d}"
            assert a.shard_of_library(name) == b.shard_of_library(name)

    def test_all_shards_get_libraries(self):
        shard_map = ShardMap(4)
        spread = shard_map.spread(f"lib{i:03d}" for i in range(64))
        assert set(spread) == {0, 1, 2, 3}
        assert all(count > 0 for count in spread.values())

    def test_resize_moves_bounded_fraction(self):
        """Consistent hashing: growing 4 -> 5 shards remaps ~1/5, not all."""
        names = [f"lib{i:04d}" for i in range(500)]
        before = ShardMap(4)
        after = ShardMap(5)
        moved = sum(
            1
            for name in names
            if before.shard_of_library(name) != after.shard_of_library(name)
        )
        # expected ~100; anything under half shows stability (plain
        # modulo hashing would move ~80%)
        assert moved < len(names) // 2

    def test_lock_keys_route_by_library_segment(self):
        shard_map = ShardMap(8)
        for lib in ("alpha", "beta", "gamma"):
            expected = shard_map.shard_of_library(lib)
            for cell in ("c0", "c1"):
                assert shard_map.shard_of_key(f"cell/{lib}/{cell}") == expected

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap(2, replicas=0)


class TestShardedLockManager:
    def _manager(self, shards=2):
        shard_map = ShardMap(shards)
        return ShardedLockManager(shard_map.shard_of_key, shards), shard_map

    def test_keeps_lock_manager_interface(self):
        manager, _ = self._manager()
        with manager.acquiring(write=("cell/libA/c0",)):
            pass
        stats = manager.stats()
        assert stats["acquisitions"] == 1
        assert set(stats["shards"]) == {0, 1}

    def test_routes_keys_to_their_shard_manager(self):
        manager, shard_map = self._manager(4)
        key = "cell/libX/c0"
        shard = shard_map.shard_of_key(key)
        with manager.acquiring(write=(key,)):
            pass
        assert manager.manager(shard).stats()["acquisitions"] == 1
        for other in range(4):
            if other != shard:
                assert manager.manager(other).stats()["acquisitions"] == 0

    def test_cross_shard_acquisition_spans_both(self):
        """The ordered two-shard path: one call, both shard managers."""
        shard_map = ShardMap(2)
        # find two libraries on different shards
        libs = [f"lib{i}" for i in range(20)]
        by_shard = {}
        for lib in libs:
            by_shard.setdefault(shard_map.shard_of_library(lib), lib)
        assert set(by_shard) == {0, 1}
        manager = ShardedLockManager(shard_map.shard_of_key, 2)
        keys = tuple(f"cell/{lib}/c0" for lib in by_shard.values())
        with manager.acquiring(write=keys) as acquisition:
            assert len(acquisition.keys) == 2
        assert manager.manager(0).stats()["acquisitions"] == 1
        assert manager.manager(1).stats()["acquisitions"] == 1

    def test_contention_counted_on_owning_shard(self):
        manager, shard_map = self._manager()
        key = "cell/libY/c0"
        shard = shard_map.shard_of_key(key)
        holder = manager.acquire(write=(key,))
        taken = threading.Event()

        def contend():
            with pytest.raises(LockContentionError):
                manager.acquire(write=(key,), blocking=False)
            taken.set()

        thread = threading.Thread(target=contend)
        thread.start()
        thread.join()
        assert taken.is_set()
        holder.release()
        assert manager.manager(shard).stats()["contentions"] == 1

    def test_failed_cross_shard_releases_earlier_shards(self):
        shard_map = ShardMap(2)
        libs = {}
        for i in range(20):
            libs.setdefault(shard_map.shard_of_library(f"lib{i}"), f"lib{i}")
        key0 = f"cell/{libs[0]}/c0"
        key1 = f"cell/{libs[1]}/c0"
        manager = ShardedLockManager(shard_map.shard_of_key, 2)
        blocker_result = {}

        def hold_and_block():
            # hold the shard-1 key so a cross-shard acquire fails late
            held = manager.acquire(write=(key1,))
            blocker_result["held"] = held

        hold_and_block()

        def try_both():
            with pytest.raises(LockContentionError):
                manager.acquire(write=(key0, key1), blocking=False)

        thread = threading.Thread(target=try_both)
        thread.start()
        thread.join()
        blocker_result["held"].release()
        # shard 0 was rolled back: its key is immediately acquirable
        with manager.acquiring(write=(key0,), blocking=False):
            pass

    def test_shard_of_out_of_range_rejected(self):
        manager = ShardedLockManager(lambda key: 99, 2)
        with pytest.raises(ValueError):
            manager.acquire(write=("anything",))
