"""The asyncio front end, exercised over real sockets."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.design_server import DesignServer
from repro.server.protocol import encode_frame
from repro.workloads.loadgen import (
    ScenarioSpec,
    build_scenario,
    replay_socket,
)

SPEC = ScenarioSpec(teams=2, designers_per_team=2, runs_per_designer=1)


@pytest.fixture
def scenario(tmp_path):
    return build_scenario(tmp_path / "env", SPEC)


class _Client:
    """Minimal line-protocol client for the tests."""

    def __init__(self, host, port):
        self.host, self.port = host, port
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()

    async def call(self, **payload):
        self.writer.write(encode_frame(payload))
        await self.writer.drain()
        return await self.read_frame()

    async def read_frame(self):
        return json.loads(await self.reader.readline())


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestDesignServer:
    def test_ping_hello_run_stats_bye(self, scenario):
        hybrid, plans = scenario
        plan = plans[0]

        async def exercise():
            server = DesignServer(
                hybrid, shards=2, max_batch=4, window_ms=10.0
            )
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    pong = await client.call(op="ping", id=1)
                    assert pong["ok"] and pong["pong"]
                    hello = await client.call(
                        op="hello", id=2, user=plan.user, team=plan.team,
                        library=plan.library, project=plan.project,
                    )
                    assert hello["ok"]
                    assert hello["session"].startswith("s")
                    answer = await client.call(
                        op="run", id=3, cell=plan.cells[0],
                        activity="schematic_entry",
                        script="idempotent_inverter",
                    )
                    assert answer["ok"], answer
                    assert answer["status"] == "ok"
                    assert answer["latency_ms"] >= 0
                    stats = await client.call(op="stats", id=4)
                    assert stats["stats"]["completed_runs"] == 1
                    audit = await client.call(op="audit", id=5)
                    assert audit["clean"] is True
                    bye = await client.call(op="bye", id=6)
                    assert bye["bye"] is True
            finally:
                await server.stop()

        run_async(exercise())

    def test_run_before_hello_is_refused(self, scenario):
        hybrid, _ = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    answer = await client.call(
                        op="run", id=1, cell="c", activity="schematic_entry",
                        script="idempotent_inverter",
                    )
                    assert answer["ok"] is False
                    assert answer["error"]["type"] == "SessionError"
            finally:
                await server.stop()

        run_async(exercise())

    def test_bad_frames_keep_connection_alive(self, scenario):
        hybrid, _ = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    client.writer.write(b"this is not json\n")
                    await client.writer.drain()
                    answer = await client.read_frame()
                    assert answer["error"]["type"] == "ProtocolError"
                    # still serviceable
                    pong = await client.call(op="ping", id=1)
                    assert pong["ok"]
            finally:
                await server.stop()

        run_async(exercise())

    def test_bad_hello_reports_session_error(self, scenario):
        hybrid, plans = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    answer = await client.call(
                        op="hello", id=1, user="mallory",
                        team=plans[0].team, library=plans[0].library,
                    )
                    assert answer["ok"] is False
                    assert answer["error"]["type"] == "SessionError"
            finally:
                await server.stop()

        run_async(exercise())

    def test_overload_rejection_over_the_wire(self, scenario):
        hybrid, plans = scenario
        plan = plans[0]

        async def exercise():
            # queue depth 1 and an unreachable window: the second
            # concurrent run must be refused as overload
            server = DesignServer(
                hybrid, shards=1, max_batch=100, window_ms=60_000.0,
                queue_depth=1,
            )
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    hello = await client.call(
                        op="hello", id=1, user=plan.user, team=plan.team,
                        library=plan.library, project=plan.project,
                    )
                    assert hello["ok"]
                    # first run parks in the (never-flushing) window
                    client.writer.write(encode_frame({
                        "op": "run", "id": 2, "cell": plan.cells[0],
                        "activity": "schematic_entry",
                        "script": "idempotent_inverter",
                    }))
                    # second run overflows the queue and answers first
                    client.writer.write(encode_frame({
                        "op": "run", "id": 3, "cell": plan.cells[0],
                        "activity": "schematic_entry",
                        "script": "idempotent_inverter",
                    }))
                    await client.writer.drain()
                    refusal = await client.read_frame()
                    assert refusal["id"] == 3
                    assert refusal["error"]["type"] == "ServerOverloadError"
            finally:
                # stop() drains the parked first run and answers it
                await server.stop()

        run_async(exercise())

    def test_stop_drains_in_flight_windows(self, scenario):
        """A run parked in an unflushed window is committed and answered
        during graceful shutdown, not dropped."""
        hybrid, plans = scenario
        plan = plans[0]

        async def exercise():
            server = DesignServer(
                hybrid, shards=2, max_batch=100, window_ms=60_000.0
            )
            host, port = await server.start()
            async with _Client(host, port) as client:
                hello = await client.call(
                    op="hello", id=1, user=plan.user, team=plan.team,
                    library=plan.library, project=plan.project,
                )
                assert hello["ok"]
                client.writer.write(encode_frame({
                    "op": "run", "id": 2, "cell": plan.cells[0],
                    "activity": "schematic_entry",
                    "script": "idempotent_inverter",
                }))
                await client.writer.drain()
                await asyncio.sleep(0.05)  # let the server admit it
                stop_task = asyncio.create_task(server.stop())
                answer = await client.read_frame()
                await stop_task
                assert answer["id"] == 2
                assert answer["ok"], answer
            assert hybrid.audit().clean

        run_async(exercise())

    def test_loadgen_socket_replay_drops_nothing(self, scenario):
        hybrid, plans = scenario

        async def exercise():
            server = DesignServer(
                hybrid, shards=2, max_batch=4, window_ms=10.0
            )
            host, port = await server.start()
            try:
                report = await replay_socket(host, port, plans, SPEC)
            finally:
                await server.stop()
            return report

        report = run_async(exercise())
        assert report.dropped_sessions == 0
        assert report.ok == SPEC.total_runs
        assert hybrid.audit().clean

    def test_stats_payload_is_json_serialisable(self, scenario):
        hybrid, _ = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=2, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    stats = await client.call(op="stats", id=1)
                    json.dumps(stats)  # full payload survives the wire
                    assert stats["stats"]["shards"] == 2
            finally:
                await server.stop()

        run_async(exercise())
