"""Hostile and unlucky clients against the asyncio front end.

Every scenario here is one a LAN will eventually produce: frames split
across TCP segments, frames torn by a dying peer, oversized or garbage
lines, clients that vanish between admission and the answer, and acks
lost on the wire.  The server must answer with typed errors or absorb
the loss — never wedge, never leak a waiter, never double-commit.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.faults import FaultPlan, inject
from repro.server.design_server import MAX_LINE_BYTES, DesignServer
from repro.server.protocol import encode_frame
from repro.workloads.loadgen import ScenarioSpec, build_scenario

SPEC = ScenarioSpec(teams=1, designers_per_team=2, runs_per_designer=2)


@pytest.fixture
def scenario(tmp_path):
    return build_scenario(tmp_path / "env", SPEC)


class _Client:
    """Minimal line-protocol client for the tests."""

    def __init__(self, host, port):
        self.host, self.port = host, port
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()

    async def call(self, **payload):
        self.writer.write(encode_frame(payload))
        await self.writer.drain()
        return await self.read_frame()

    async def read_frame(self):
        return json.loads(await self.reader.readline())


def run_async(coroutine):
    return asyncio.run(coroutine)


async def _hello(client, plan, **extra):
    answer = await client.call(
        op="hello", id=0, user=plan.user, team=plan.team,
        library=plan.library, project=plan.project, **extra,
    )
    assert answer["ok"], answer
    return answer


class TestMalformedFrames:
    def test_frame_split_across_segments_is_reassembled(self, scenario):
        hybrid, plans = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    frame = encode_frame({"op": "ping", "id": 1})
                    client.writer.write(frame[:7])
                    await client.writer.drain()
                    await asyncio.sleep(0.02)  # let the first segment land
                    client.writer.write(frame[7:])
                    await client.writer.drain()
                    pong = await client.read_frame()
                    assert pong["ok"] and pong["pong"]
            finally:
                await server.stop()

        run_async(exercise())

    def test_invalid_json_answers_typed_error_and_survives(self, scenario):
        hybrid, _ = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    client.writer.write(b"{this is not json\n")
                    await client.writer.drain()
                    answer = await client.read_frame()
                    assert answer["ok"] is False
                    assert answer["error"]["type"] == "ProtocolError"
                    # the connection is still serviceable
                    pong = await client.call(op="ping", id=2)
                    assert pong["ok"]
            finally:
                await server.stop()
            assert server.transport_stats()["malformed_frames"] == 1

        run_async(exercise())

    def test_oversized_frame_is_refused_but_connection_lives(self, scenario):
        hybrid, _ = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    # over the 64KB frame cap, under the 1MB line cap:
                    # decodable enough to answer, too big to accept
                    blob = json.dumps(
                        {"op": "ping", "id": 1, "junk": "x" * (100 * 1024)}
                    ).encode() + b"\n"
                    client.writer.write(blob)
                    await client.writer.drain()
                    answer = await client.read_frame()
                    assert answer["ok"] is False
                    assert answer["error"]["type"] == "ProtocolError"
                    assert "oversized" in answer["error"]["message"]
                    pong = await client.call(op="ping", id=2)
                    assert pong["ok"]
            finally:
                await server.stop()

        run_async(exercise())

    def test_line_over_transport_cap_severs_connection(self, scenario):
        hybrid, _ = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    client.writer.write(b"x" * (MAX_LINE_BYTES + 1024))
                    await client.writer.drain()
                    assert await client.reader.read() == b""  # severed
                # a slow-loris line cannot wedge the listener for others
                async with _Client(host, port) as client:
                    pong = await client.call(op="ping", id=1)
                    assert pong["ok"]
            finally:
                await server.stop()
            assert server.transport_stats()["malformed_frames"] >= 1

        run_async(exercise())

    def test_torn_final_frame_is_dropped_quietly(self, scenario):
        hybrid, _ = scenario

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    frame = encode_frame({"op": "ping", "id": 1})
                    client.writer.write(frame[:-5])  # no terminator
                    await client.writer.drain()
                # the half-frame must not have been dispatched; the
                # server keeps serving fresh connections
                async with _Client(host, port) as client:
                    pong = await client.call(op="ping", id=1)
                    assert pong["ok"]
            finally:
                await server.stop()

        run_async(exercise())


class TestVanishingClients:
    def test_disconnect_between_admit_and_answer_leaks_nothing(
        self, scenario
    ):
        hybrid, plans = scenario
        plan = plans[0]

        async def exercise():
            # a wide window: the run is admitted but nowhere near flushing
            server = DesignServer(
                hybrid, shards=1, max_batch=8, window_ms=60_000.0
            )
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    await _hello(client, plan)
                    client.writer.write(encode_frame({
                        "op": "run", "id": 1, "cell": plan.cells[0],
                        "activity": "schematic_entry",
                        "script": "idempotent_inverter",
                    }))
                    await client.writer.drain()
                    await asyncio.sleep(0.05)  # admitted, now vanish
                await asyncio.sleep(0.05)
                assert server._waiters == {}
                assert server.transport_stats()["abandoned_runs"] == 1
                stats = server.engine.stats()["per_shard"][0]
                assert stats["admission"]["depth"] == 0
                # nothing of the abandoned run ever reaches the store
                audit = server.engine.hybrid.audit()
                assert audit.clean
            finally:
                await server.stop()
            assert server.engine.stats()["per_shard"][0]["cancelled"] == 1

        run_async(exercise())

    def test_stop_during_open_window_still_answers(self, scenario):
        hybrid, plans = scenario
        plan = plans[0]

        async def exercise():
            server = DesignServer(
                hybrid, shards=1, max_batch=8, window_ms=60_000.0
            )
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    await _hello(client, plan)
                    client.writer.write(encode_frame({
                        "op": "run", "id": 1, "cell": plan.cells[0],
                        "activity": "schematic_entry",
                        "script": "idempotent_inverter",
                    }))
                    await client.writer.drain()
                    await asyncio.sleep(0.05)
                    # the operator stops the server mid-window; the
                    # drain must flush and answer, not strand the client
                    stop_task = asyncio.ensure_future(server.stop())
                    answer = await asyncio.wait_for(
                        client.read_frame(), timeout=10.0
                    )
                    await stop_task
                    assert answer["ok"], answer
                    assert answer["status"] == "ok"
            finally:
                if not server._stopping:
                    await server.stop()

        run_async(exercise())


class TestLostAcks:
    def test_lost_ack_retry_is_deduped_not_recommitted(self, scenario):
        hybrid, plans = scenario
        plan = plans[0]
        cell = plan.cells[0]

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                # net.write hit 1 is the hello ack; hit 2 — the run's
                # answer — is eaten by the wire
                plan_faults = FaultPlan.transient("net.write", on_hit=2)
                with inject(plan_faults):
                    async with _Client(host, port) as client:
                        hello = await _hello(client, plan)
                        session_id = hello["session"]
                        client.writer.write(encode_frame({
                            "op": "run", "id": 1, "cell": cell,
                            "activity": "schematic_entry",
                            "script": "idempotent_inverter",
                            "request_key": "commit-1",
                        }))
                        await client.writer.drain()
                        with pytest.raises(asyncio.TimeoutError):
                            await asyncio.wait_for(
                                client.read_frame(), timeout=0.5
                            )
                assert server.transport_stats()["dropped_frames"] == 1
                # the client gives up on the socket and retries the
                # same request_key on a resumed session
                async with _Client(host, port) as client:
                    await _hello(client, plan, resume=session_id)
                    answer = await client.call(
                        op="run", id=2, cell=cell,
                        activity="schematic_entry",
                        script="idempotent_inverter",
                        request_key="commit-1",
                    )
                    assert answer["ok"], answer
                    assert answer["status"] == "ok"
                    assert answer.get("deduped") is True
                library = hybrid.fmcad.library(plan.library)
                versions = library.cellview(cell, "schematic").versions
                assert len(versions) == 1  # committed exactly once
            finally:
                await server.stop()
            assert server.engine.hybrid.audit().clean

        run_async(exercise())

    def test_resume_restores_leases_across_reconnect(self, scenario):
        hybrid, plans = scenario
        plan = plans[0]

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    hello = await _hello(client, plan)
                    session_id = hello["session"]
                    lease = await client.call(
                        op="lease", id=1, cell=plan.cells[0]
                    )
                    assert lease["ok"], lease
                    assert lease["token"] == 1
                # the TCP session dies; the lease does not
                async with _Client(host, port) as client:
                    resumed = await _hello(client, plan, resume=session_id)
                    assert resumed["resumed"] is True
                    # heartbeat renews it, release drops it
                    pong = await client.call(op="ping", id=2)
                    assert pong["renewed"] == 1
                    released = await client.call(
                        op="release", id=3, cell=plan.cells[0]
                    )
                    assert released["released"] is True
                assert server.engine.leases.live_leases() == []
            finally:
                await server.stop()

        run_async(exercise())

    def test_resume_refuses_wrong_user(self, scenario):
        hybrid, plans = scenario
        owner, thief = plans[0], plans[1]

        async def exercise():
            server = DesignServer(hybrid, shards=1, window_ms=5.0)
            host, port = await server.start()
            try:
                async with _Client(host, port) as client:
                    hello = await _hello(client, owner)
                    session_id = hello["session"]
                async with _Client(host, port) as client:
                    answer = await client.call(
                        op="hello", id=1, user=thief.user, team=thief.team,
                        library=thief.library, project=thief.project,
                        resume=session_id,
                    )
                    assert answer["ok"] is False
                    assert answer["error"]["type"] == "SessionError"
            finally:
                await server.stop()

        run_async(exercise())
