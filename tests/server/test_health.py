"""Shard health: circuit breakers fencing wedged shards."""

from __future__ import annotations

import pytest

from repro.errors import ShardUnavailableError
from repro.faults import FaultPlan, inject
from repro.server.engine import ServeEngine
from repro.server.health import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.server.protocol import ScriptCatalog
from repro.workloads.loadgen import ScenarioSpec, build_scenario

SPEC = ScenarioSpec(teams=2, designers_per_team=1, runs_per_designer=4)
KWARGS = ScriptCatalog().resolve("schematic_entry", "idempotent_inverter", {})


@pytest.fixture
def scenario(tmp_path):
    return build_scenario(tmp_path / "env", SPEC)


class TestCircuitBreaker:
    def test_trips_open_at_threshold(self):
        breaker = CircuitBreaker(0, threshold=3, cooldown_ms=1_000.0)
        breaker.record_failure(10.0)
        breaker.record_failure(20.0)
        assert breaker.state == CLOSED
        breaker.record_failure(30.0)
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert breaker.open_until_ms == 1_030.0

    def test_open_refusal_carries_cooldown_hint(self):
        breaker = CircuitBreaker(2, threshold=1, cooldown_ms=1_000.0)
        breaker.record_failure(0.0)
        with pytest.raises(ShardUnavailableError) as excinfo:
            breaker.admit(400.0)
        assert excinfo.value.state == OPEN
        assert excinfo.value.shard_id == 2
        assert excinfo.value.retry_after_ms == 600.0
        assert breaker.rejected == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(0, threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state == CLOSED  # never three in a row

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(0, threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0)
        breaker.admit(150.0)  # cooldown elapsed: the probe goes through
        assert breaker.state == HALF_OPEN
        assert breaker.probes == 1
        with pytest.raises(ShardUnavailableError) as excinfo:
            breaker.admit(160.0)  # second arrival waits for the probe
        assert excinfo.value.state == HALF_OPEN
        assert excinfo.value.retry_after_ms == 100.0

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(0, threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0)
        breaker.admit(150.0)
        breaker.record_success(151.0)
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1
        breaker.admit(152.0)  # back to normal service

    def test_probe_failure_reopens_for_full_cooldown(self):
        breaker = CircuitBreaker(0, threshold=3, cooldown_ms=100.0)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(t)
        breaker.admit(150.0)
        breaker.record_failure(151.0)  # a single probe failure re-trips
        assert breaker.state == OPEN
        assert breaker.open_until_ms == 251.0
        assert breaker.trips == 2


def _sessions_on_distinct_shards(engine, plans):
    """Open one session per plan; return two on different shards."""
    sessions = [
        engine.open_session(p.user, p.team, p.library, p.project)
        for p in plans
    ]
    by_shard = {}
    for session, plan in zip(sessions, plans):
        by_shard.setdefault(session.shard_id, (session, plan))
    if len(by_shard) < 2:
        pytest.skip("scenario libraries hashed onto one shard")
    (victim, victim_plan), (healthy, healthy_plan) = list(by_shard.values())[:2]
    return victim, victim_plan, healthy, healthy_plan


class TestEngineShardHealth:
    def test_wedged_shard_is_fenced_and_recovers(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=2, max_batch=1, window_ms=50.0,
            breaker_threshold=2, breaker_cooldown_ms=1_000.0,
        )
        victim, victim_plan, healthy, healthy_plan = (
            _sessions_on_distinct_shards(engine, plans)
        )
        t0 = engine.epoch_ms
        # two consecutive wedged waves trip the victim shard's breaker
        with inject(FaultPlan.transient("server.dispatch", times=2)):
            for i in range(2):
                pending = engine.submit(
                    victim, victim_plan.cells[i], "schematic_entry",
                    kwargs=KWARGS, now_ms=t0 + i * 100.0,
                )
                engine.pump(t0 + (i + 1) * 100.0)
                assert pending.status == "shard-unavailable"
                assert isinstance(pending.error, ShardUnavailableError)
        stats = engine.stats()["per_shard"][victim.shard_id]
        assert stats["breaker"]["state"] == OPEN
        assert stats["breaker"]["trips"] == 1
        # while fenced, submits are refused fail-fast with a retry hint
        with pytest.raises(ShardUnavailableError) as excinfo:
            engine.submit(
                victim, victim_plan.cells[2], "schematic_entry",
                kwargs=KWARGS, now_ms=t0 + 250.0,
            )
        assert excinfo.value.retry_after_ms > 0.0
        # ...but the healthy shard keeps serving the whole time
        ok = engine.submit(
            healthy, healthy_plan.cells[0], "schematic_entry",
            kwargs=KWARGS, now_ms=t0 + 260.0,
        )
        engine.pump(t0 + 400.0)
        assert ok.outcome is not None and ok.outcome.ok
        # after the cooldown the probe goes through and heals the shard
        probe = engine.submit(
            victim, victim_plan.cells[2], "schematic_entry",
            kwargs=KWARGS, now_ms=t0 + 1_500.0,
        )
        engine.pump(t0 + 1_600.0)
        assert probe.outcome is not None and probe.outcome.ok
        stats = engine.stats()["per_shard"][victim.shard_id]
        assert stats["breaker"]["state"] == CLOSED
        assert stats["breaker"]["recoveries"] == 1
        engine.close()
        assert hybrid.audit().clean

    def test_tool_failures_do_not_trip_the_breaker(self, scenario):
        """RUN_FAILED is the design's problem, not the shard's."""
        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=1, max_batch=1, window_ms=50.0,
            breaker_threshold=1,
        )
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        def broken_edit(*args, **kwargs):
            raise RuntimeError("edit script exploded")

        bad_kwargs = {"edit_fn": broken_edit}
        pending = engine.submit(
            session, plan.cells[0], "schematic_entry", kwargs=bad_kwargs,
            now_ms=engine.epoch_ms,
        )
        engine.drain()
        assert pending.outcome is not None and not pending.outcome.ok
        assert (
            engine.stats()["per_shard"][0]["breaker"]["state"] == CLOSED
        )
        engine.close()
