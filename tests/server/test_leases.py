"""Checkout leases: expiry timers, fencing tokens, zombie sessions."""

from __future__ import annotations

import dataclasses

import pytest

from repro.clock import DeadlineTimers
from repro.errors import (
    LeaseError,
    LeaseFencedError,
    LeaseHeldError,
)
from repro.server.engine import ServeEngine
from repro.server.leases import LeaseTable, lease_key
from repro.server.protocol import ScriptCatalog
from repro.workloads.loadgen import ScenarioSpec, build_scenario

SPEC = ScenarioSpec(teams=1, designers_per_team=2, runs_per_designer=1)
KWARGS = ScriptCatalog().resolve("schematic_entry", "idempotent_inverter", {})


@pytest.fixture
def scenario(tmp_path):
    return build_scenario(tmp_path / "env", SPEC)


class TestDeadlineTimers:
    def test_pop_due_fires_in_deadline_order(self):
        timers = DeadlineTimers()
        timers.schedule("b", 200.0)
        timers.schedule("a", 100.0)
        timers.schedule("c", 300.0)
        assert timers.next_due_ms() == 100.0
        assert timers.pop_due(250.0) == ["a", "b"]
        assert timers.pop_due(250.0) == []
        assert timers.pop_due(300.0) == ["c"]
        assert len(timers) == 0

    def test_reschedule_replaces_old_deadline(self):
        timers = DeadlineTimers()
        timers.schedule("a", 100.0)
        timers.schedule("a", 500.0)  # renewed: the 100ms timer is stale
        assert timers.pop_due(200.0) == []
        assert timers.pop_due(500.0) == ["a"]

    def test_cancel(self):
        timers = DeadlineTimers()
        timers.schedule("a", 100.0)
        assert timers.cancel("a") is True
        assert timers.cancel("a") is False
        assert timers.pop_due(1000.0) == []
        assert timers.next_due_ms() is None


class TestLeaseTable:
    def test_acquire_grants_monotonic_tokens(self):
        table = LeaseTable(ttl_ms=100.0)
        first = table.acquire("s1", "u1", "lib", "cell", now_ms=0.0)
        assert first.token == 1
        assert first.key == lease_key("lib", "cell") == "cell/lib/cell"
        table.release("s1", first.key)
        second = table.acquire("s2", "u2", "lib", "cell", now_ms=10.0)
        # tokens never regress, even across release/re-grant
        assert second.token == 2

    def test_conflict_carries_retry_hint(self):
        table = LeaseTable(ttl_ms=100.0)
        table.acquire("s1", "u1", "lib", "cell", now_ms=0.0)
        with pytest.raises(LeaseHeldError) as excinfo:
            table.acquire("s2", "u2", "lib", "cell", now_ms=40.0)
        assert excinfo.value.retry_after_ms == 60.0
        assert excinfo.value.holder == "s1"

    def test_holder_reacquire_renews_same_token(self):
        table = LeaseTable(ttl_ms=100.0)
        first = table.acquire("s1", "u1", "lib", "cell", now_ms=0.0)
        again = table.acquire("s1", "u1", "lib", "cell", now_ms=50.0)
        assert again is first
        assert again.token == 1
        assert again.expires_ms == 150.0
        assert again.renewals == 1

    def test_heartbeat_renews_every_session_lease(self):
        table = LeaseTable(ttl_ms=100.0)
        table.acquire("s1", "u1", "lib", "a", now_ms=0.0)
        table.acquire("s1", "u1", "lib", "b", now_ms=0.0)
        table.acquire("s2", "u2", "lib", "c", now_ms=0.0)
        assert table.renew("s1", now_ms=90.0) == 2
        # s1's leases now outlive s2's untouched one
        reclaimed = table.reclaim_due(now_ms=120.0)
        assert [lease.key for lease in reclaimed] == ["cell/lib/c"]
        assert len(table.live_leases()) == 2

    def test_expiry_reclaims_and_successor_gets_new_token(self):
        table = LeaseTable(ttl_ms=100.0)
        table.acquire("s1", "u1", "lib", "cell", now_ms=0.0)
        successor = table.acquire("s2", "u2", "lib", "cell", now_ms=150.0)
        assert successor.token == 2
        assert table.reclaimed == 1

    def test_validate_fences_stale_and_expired_tokens(self):
        table = LeaseTable(ttl_ms=100.0)
        table.acquire("s1", "u1", "lib", "cell", now_ms=0.0)
        table.validate("cell/lib/cell", 1, now_ms=50.0)
        with pytest.raises(LeaseFencedError):
            table.validate("cell/lib/cell", 7, now_ms=50.0)
        # an expired lease rejects its own token even with no successor
        with pytest.raises(LeaseFencedError):
            table.validate("cell/lib/cell", 1, now_ms=150.0)

    def test_assert_writable_is_exclusive(self):
        table = LeaseTable(ttl_ms=100.0)
        table.acquire("s1", "u1", "lib", "cell", now_ms=0.0)
        table.assert_writable("s1", "cell/lib/cell", now_ms=10.0)
        table.assert_writable("s2", "cell/lib/other", now_ms=10.0)
        with pytest.raises(LeaseHeldError):
            table.assert_writable("s2", "cell/lib/cell", now_ms=10.0)
        # after expiry the claim is gone for everyone
        table.assert_writable("s2", "cell/lib/cell", now_ms=150.0)

    def test_release_only_by_holder(self):
        table = LeaseTable(ttl_ms=100.0)
        table.acquire("s1", "u1", "lib", "cell", now_ms=0.0)
        assert table.release("s2", "cell/lib/cell") is False
        assert table.release("s1", "cell/lib/cell") is True
        assert table.live_leases() == []

    def test_release_session_drops_all(self):
        table = LeaseTable(ttl_ms=100.0)
        table.acquire("s1", "u1", "lib", "a", now_ms=0.0)
        table.acquire("s1", "u1", "lib", "b", now_ms=0.0)
        table.acquire("s2", "u2", "lib", "c", now_ms=0.0)
        assert table.release_session("s1") == 2
        assert [lease.key for lease in table.live_leases()] == ["cell/lib/c"]

    def test_arm_refuses_double_arming(self):
        table = LeaseTable(ttl_ms=100.0)
        table.arm("cell/lib/cell", 1)
        assert table.expected("cell/lib/cell") == 1
        with pytest.raises(LeaseError):
            table.arm("cell/lib/cell", 2)
        table.disarm("cell/lib/cell")
        assert table.expected("cell/lib/cell") is None


@dataclasses.dataclass
class _TicketStub:
    cell_name: str


@dataclasses.dataclass
class _LibraryStub:
    name: str


class TestEngineLeases:
    def test_lease_lifecycle_over_engine(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=1, max_batch=4, window_ms=100.0,
            lease_ttl_ms=1_000.0,
        )
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        t0 = engine.epoch_ms
        lease = engine.acquire_lease(session, plan.cells[0], now_ms=t0)
        assert lease.token == 1
        assert engine.touch_session(session, now_ms=t0 + 500.0) == 1
        assert engine.leases.holder(lease.key).expires_ms == t0 + 1_500.0
        assert engine.release_lease(session, plan.cells[0]) is True
        assert engine.leases.live_leases() == []

    def test_zombie_session_is_fenced_not_clobbering(self, scenario):
        """The acceptance scenario: an expired holder cannot commit over
        its successor — its queued run is shed with a typed error."""
        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=1, max_batch=8, window_ms=200.0,
            lease_ttl_ms=100.0,
        )
        zombie_plan, successor_plan = plans[0], plans[1]
        zombie = engine.open_session(
            zombie_plan.user, zombie_plan.team,
            zombie_plan.library, zombie_plan.project,
        )
        successor = engine.open_session(
            successor_plan.user, successor_plan.team,
            successor_plan.library, successor_plan.project,
        )
        cell = zombie_plan.cells[0]
        t0 = engine.epoch_ms
        granted = engine.acquire_lease(zombie, cell, now_ms=t0)
        assert granted.token == 1
        # the zombie submits while its lease is live, then goes silent
        pending = engine.submit(
            zombie, cell, "schematic_entry", kwargs=KWARGS, now_ms=t0 + 10.0
        )
        assert pending.fence_token == 1
        # lease expires before the window flushes; the successor claims it
        taken = engine.acquire_lease(successor, cell, now_ms=t0 + 150.0)
        assert taken.token == 2
        engine.pump(t0 + 220.0)
        assert pending.status == "lease-fenced"
        assert isinstance(pending.error, LeaseFencedError)
        assert pending.outcome is None          # it never reached a wave
        assert engine.stats()["per_shard"][0]["fenced"] == 1
        # the successor's claim is untouched and the store stayed clean
        assert engine.leases.holder(taken.key).token == 2
        assert hybrid.audit().clean
        engine.close()

    def test_non_holder_submit_refused_while_leased(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=1, window_ms=100.0, lease_ttl_ms=1_000.0
        )
        holder_plan, other_plan = plans[0], plans[1]
        holder = engine.open_session(
            holder_plan.user, holder_plan.team,
            holder_plan.library, holder_plan.project,
        )
        other = engine.open_session(
            other_plan.user, other_plan.team,
            other_plan.library, other_plan.project,
        )
        cell = holder_plan.cells[0]
        t0 = engine.epoch_ms
        engine.acquire_lease(holder, cell, now_ms=t0)
        with pytest.raises(LeaseHeldError) as excinfo:
            engine.submit(
                other, cell, "schematic_entry", kwargs=KWARGS,
                now_ms=t0 + 10.0,
            )
        assert excinfo.value.retry_after_ms == 990.0

    def test_leased_run_commits_under_its_token(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=1, max_batch=4, window_ms=100.0,
            lease_ttl_ms=10_000.0,
        )
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        t0 = engine.epoch_ms
        engine.acquire_lease(session, plan.cells[0], now_ms=t0)
        pending = engine.submit(
            session, plan.cells[0], "schematic_entry", kwargs=KWARGS,
            now_ms=t0 + 10.0,
        )
        engine.drain()
        assert pending.outcome is not None and pending.outcome.ok
        assert hybrid.audit().clean
        engine.close()

    def test_checkin_guard_fences_superseded_expectation(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid, shards=1, lease_ttl_ms=1_000.0)
        key = lease_key(plans[0].library, "c0")
        engine.leases.arm(key, 3)  # the batch validated token 3...
        try:
            # ...but by commit time the grant moved on (or vanished)
            with pytest.raises(LeaseFencedError):
                engine._checkin_fence(
                    _TicketStub(cell_name="c0"),
                    _LibraryStub(name=plans[0].library),
                )
        finally:
            engine.leases.disarm(key)
        # no expectation armed -> unleased checkins pass untouched
        engine._checkin_fence(
            _TicketStub(cell_name="c0"), _LibraryStub(name=plans[0].library)
        )


class TestLeaseRecoveryAndAudit:
    def test_recover_reclaims_expired_leases(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid, shards=1, lease_ttl_ms=100.0)
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        t0 = engine.epoch_ms
        engine.acquire_lease(session, plan.cells[0], now_ms=t0)
        hybrid.clock.advance_to(t0 + 500.0)
        report = hybrid.recover()
        assert len(report.reclaimed_leases) == 1
        assert plan.cells[0] in report.reclaimed_leases[0]
        assert engine.leases.live_leases() == []

    def test_audit_flags_stale_unreclaimed_lease(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid, shards=1, lease_ttl_ms=100.0)
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        t0 = engine.epoch_ms
        engine.acquire_lease(session, plan.cells[0], now_ms=t0)
        hybrid.clock.advance_to(t0 + 500.0)
        report = hybrid.audit()
        stale = [f for f in report.findings if f.category == "stale-lease"]
        assert len(stale) == 1
        # reclaiming clears the finding
        engine.leases.reclaim_due()
        assert hybrid.audit().clean

    def test_live_lease_keeps_audit_clean(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid, shards=1, lease_ttl_ms=10_000.0)
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        engine.acquire_lease(session, plan.cells[0], now_ms=engine.epoch_ms)
        assert hybrid.audit().clean
