"""Admission control edge cases: queue-full, token refill, drain."""

from __future__ import annotations

import pytest

from repro.errors import ServerOverloadError
from repro.server.admission import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_burst_available_immediately(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=3)
        assert all(bucket.try_take(0.0) for _ in range(3))
        assert not bucket.try_take(0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2)  # one token per 100ms
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(50.0)
        assert bucket.try_take(100.0)  # exactly one token refilled
        assert not bucket.try_take(100.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=2)
        assert bucket.try_take(0.0)
        # a long idle period must not bank more than the burst
        assert bucket.try_take(60_000.0)
        assert bucket.try_take(60_000.0)
        assert not bucket.try_take(60_000.0)

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.try_take(1000.0)
        # an earlier timestamp neither refills nor crashes
        assert not bucket.try_take(500.0)

    def test_retry_hint_scales_with_deficit(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.try_take(0.0)
        assert bucket.ms_until_available(0.0) == pytest.approx(100.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0)


class TestAdmissionController:
    def test_queue_full_rejection_is_typed(self):
        admission = AdmissionController(shard_id=3, queue_depth=2)
        admission.admit(0.0)
        admission.admit(0.0)
        with pytest.raises(ServerOverloadError) as excinfo:
            admission.admit(0.0)
        assert excinfo.value.reason == "queue-full"
        assert excinfo.value.shard_id == 3
        assert admission.stats()["rejected"]["queue-full"] == 1

    def test_completion_reopens_the_queue(self):
        admission = AdmissionController(shard_id=0, queue_depth=1)
        admission.admit(0.0)
        with pytest.raises(ServerOverloadError):
            admission.admit(0.0)
        admission.complete()
        admission.admit(1.0)
        stats = admission.stats()
        assert stats["admitted"] == 2
        assert stats["high_water"] == 1

    def test_token_bucket_throttles_and_recovers(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        admission = AdmissionController(0, queue_depth=100, bucket=bucket)
        admission.admit(0.0)
        with pytest.raises(ServerOverloadError) as excinfo:
            admission.admit(10.0)
        assert excinfo.value.reason == "throttled"
        assert excinfo.value.retry_after_ms > 0
        # after one refill interval the request is admitted
        admission.admit(150.0)
        assert admission.stats()["rejected"]["throttled"] == 1

    def test_draining_refuses_new_keeps_old(self):
        admission = AdmissionController(0, queue_depth=4)
        admission.admit(0.0)
        admission.close()
        with pytest.raises(ServerOverloadError) as excinfo:
            admission.admit(1.0)
        assert excinfo.value.reason == "draining"
        # the in-flight request still completes normally
        admission.complete()
        assert admission.stats()["depth"] == 0
        assert admission.stats()["draining"] is True

    def test_over_completion_rejected(self):
        admission = AdmissionController(0, queue_depth=4)
        with pytest.raises(ValueError):
            admission.complete()
