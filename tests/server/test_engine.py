"""The serving core: sessions, sharded batching, determinism, drain."""

from __future__ import annotations

import shutil

import pytest

from repro.errors import ServerOverloadError, SessionError
from repro.server.engine import ServeEngine
from repro.workloads.loadgen import (
    ScenarioSpec,
    build_scenario,
    replay_engine,
)

SPEC = ScenarioSpec(teams=2, designers_per_team=3, runs_per_designer=1)


@pytest.fixture
def scenario(tmp_path):
    hybrid, plans = build_scenario(tmp_path / "env", SPEC)
    return hybrid, plans


class TestSessions:
    def test_open_session_validates_context(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid, shards=2)
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        assert session.shard_id in (0, 1)
        assert engine.session(session.session_id) is session

    def test_unknown_user_rejected(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid)
        with pytest.raises(SessionError):
            engine.open_session("mallory", plans[0].team, plans[0].library)

    def test_non_member_rejected(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid)
        other_team = plans[-1].team
        with pytest.raises(SessionError):
            engine.open_session(
                plans[0].user, other_team, plans[-1].library, plans[-1].project
            )

    def test_unassigned_team_rejected(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid)
        # team0 works project0; pointing it at team1's project must fail
        with pytest.raises(SessionError):
            engine.open_session(
                plans[0].user, plans[0].team, plans[-1].library,
                plans[-1].project,
            )

    def test_unknown_session_id(self, scenario):
        hybrid, _ = scenario
        engine = ServeEngine(hybrid)
        with pytest.raises(SessionError):
            engine.session("s99999")


class TestDeterministicReplay:
    def test_all_requests_complete_clean(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid, shards=2, max_batch=4, window_ms=500.0)
        report = replay_engine(engine, plans, SPEC)
        assert report.ok == SPEC.total_runs
        assert report.rejected == {}
        assert hybrid.audit().clean
        stats = engine.stats()
        assert stats["completed_runs"] == SPEC.total_runs
        assert stats["commits"]["coalesced_commits"] > 0

    def test_latency_measured_from_submission(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid, shards=2, max_batch=4, window_ms=500.0)
        report = replay_engine(engine, plans, SPEC)
        assert all(latency > 0 for latency in report.latencies_ms)
        tail = report.latency_percentiles()
        assert tail["p50"] <= tail["p95"] <= tail["p99"]

    def test_replay_is_reproducible(self, tmp_path):
        latencies = []
        for arm in ("a", "b"):
            root = tmp_path / arm / "env"
            hybrid, plans = build_scenario(root, SPEC)
            engine = ServeEngine(
                hybrid, shards=2, max_batch=4, window_ms=500.0
            )
            report = replay_engine(engine, plans, SPEC)
            latencies.append(sorted(report.latencies_ms))
        assert latencies[0] == latencies[1]

    def test_snapshot_identical_across_worker_counts(self, tmp_path):
        """The acceptance property: a batched/sharded run commits the
        same bytes as the same requests run sequentially (workers=1)."""
        snapshots = []
        root = tmp_path / "env"  # same path: paths are embedded in state
        for workers in (1, 4):
            hybrid, plans = build_scenario(root, SPEC)
            engine = ServeEngine(
                hybrid, shards=2, max_batch=4, window_ms=500.0,
                workers=workers,
            )
            replay_engine(engine, plans, SPEC)
            snapshots.append(hybrid.save_state().read_bytes())
            shutil.rmtree(root)
        assert snapshots[0] == snapshots[1]

    def test_makespan_is_max_over_shards_not_sum(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(hybrid, shards=2, max_batch=4, window_ms=500.0)
        replay_engine(engine, plans, SPEC)
        lanes = [s["lane_ms"] for s in engine.stats()["per_shard"]]
        assert engine.makespan_ms == pytest.approx(max(lanes))
        assert engine.makespan_ms < sum(lanes) or len([l for l in lanes if l]) == 1


class TestBackpressure:
    def test_queue_full_when_conductor_starves(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=1, max_batch=2, window_ms=1e9, queue_depth=4
        )
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        admitted = 0
        rejected = 0
        for index in range(8):
            try:
                engine.submit(
                    session, plan.cells[0], "schematic_entry",
                    kwargs={}, now_ms=float(index),
                )
                admitted += 1
            except ServerOverloadError as exc:
                assert exc.reason == "queue-full"
                rejected += 1
        assert admitted == 4 and rejected == 4

    def test_token_bucket_throttles_submissions(self, scenario):
        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=1, max_batch=100, window_ms=1e9,
            admission_rate_per_s=10.0, admission_burst=2,
        )
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )
        outcomes = []
        for _ in range(4):  # all at t=epoch: burst admits 2, rest throttled
            try:
                engine.submit(
                    session, plan.cells[0], "schematic_entry",
                    kwargs={}, now_ms=engine.epoch_ms,
                )
                outcomes.append("ok")
            except ServerOverloadError as exc:
                outcomes.append(exc.reason)
        assert outcomes == ["ok", "ok", "throttled", "throttled"]
        # one refill interval later a token is back
        engine.submit(
            session, plan.cells[0], "schematic_entry",
            kwargs={}, now_ms=engine.epoch_ms + 150.0,
        )


class TestDrain:
    def test_close_drains_in_flight_waves(self, scenario):
        """Shutdown with a wave in flight: the wave commits, its clients
        are answered, and only *new* work is refused."""
        from repro.server.protocol import ScriptCatalog

        hybrid, plans = scenario
        engine = ServeEngine(
            hybrid, shards=2, max_batch=100, window_ms=1e9, concurrent=True
        )
        catalog = ScriptCatalog()
        kwargs = catalog.resolve("schematic_entry", "idempotent_inverter", {})
        sessions = [
            engine.open_session(p.user, p.team, p.library, p.project)
            for p in plans
        ]
        pendings = [
            engine.submit(session, plan.cells[0], "schematic_entry", kwargs)
            for session, plan in zip(sessions, plans)
        ]
        assert not any(p.done for p in pendings)  # windows never filled
        engine.close()
        assert all(p.done and p.outcome.ok for p in pendings)
        with pytest.raises(ServerOverloadError) as excinfo:
            engine.submit(sessions[0], plans[0].cells[0], "schematic_entry", kwargs)
        assert excinfo.value.reason == "draining"
        assert hybrid.audit().clean

    def test_concurrent_mode_matches_deterministic_results(self, tmp_path):
        """Threaded shards complete the same work (not byte-compared)."""
        root = tmp_path / "env"
        hybrid, plans = build_scenario(root, SPEC)
        engine = ServeEngine(
            hybrid, shards=2, max_batch=3, window_ms=50.0, concurrent=True
        )
        report = replay_engine(engine, plans, SPEC)
        engine.close()
        assert report.ok == SPEC.total_runs
        assert hybrid.audit().clean
