"""Unit tests for the adjacency-indexed link store and its database API."""

import pytest

from repro.ids import sort_key
from repro.oms.links import LinkStore


class TestLinkStorePrimitives:
    def test_add_and_contains(self):
        store = LinkStore()
        assert store.add("r", "a:000001", "a:000002")
        assert store.contains("r", "a:000001", "a:000002")
        assert not store.contains("r", "a:000002", "a:000001")

    def test_add_is_idempotent(self):
        store = LinkStore()
        assert store.add("r", "a:000001", "a:000002")
        assert not store.add("r", "a:000001", "a:000002")
        assert store.count("r") == 1

    def test_remove_unknown_returns_false(self):
        store = LinkStore()
        assert not store.remove("r", "a:000001", "a:000002")

    def test_forward_and_reverse_agree(self):
        store = LinkStore()
        store.add("r", "a:000001", "b:000001")
        store.add("r", "a:000001", "b:000002")
        store.add("r", "a:000002", "b:000001")
        assert store.targets_of("r", "a:000001") == ["b:000001", "b:000002"]
        assert store.sources_of("r", "b:000001") == ["a:000001", "a:000002"]
        assert store.out_degree("r", "a:000001") == 2
        assert store.in_degree("r", "b:000001") == 2
        assert store.check_integrity() == []

    def test_remove_updates_both_indexes(self):
        store = LinkStore()
        store.add("r", "a:000001", "b:000001")
        store.add("r", "a:000001", "b:000002")
        store.remove("r", "a:000001", "b:000001")
        assert store.targets_of("r", "a:000001") == ["b:000002"]
        assert store.sources_of("r", "b:000001") == []
        assert store.check_integrity() == []

    def test_numeric_order_survives_seven_digit_ids(self):
        store = LinkStore()
        store.add("r", "s:000001", "cell:1000000")
        store.add("r", "s:000001", "cell:0999999")
        store.add("r", "s:000001", "cell:0000002")
        assert store.targets_of("r", "s:000001") == [
            "cell:0000002",
            "cell:0999999",
            "cell:1000000",
        ]

    def test_first_target_and_source_are_minimal(self):
        store = LinkStore()
        store.add("r", "s:000002", "t:000009")
        store.add("r", "s:000002", "t:000003")
        store.add("r", "s:000001", "t:000003")
        assert store.first_target("r", "s:000002") == "t:000003"
        assert store.first_source("r", "t:000003") == "s:000001"
        assert store.first_target("r", "missing:000001") is None

    def test_remove_touching_covers_both_directions_and_self_links(self):
        store = LinkStore()
        store.add("r", "x:000001", "y:000001")
        store.add("r", "y:000002", "x:000001")
        store.add("r", "x:000001", "x:000001")  # self link
        store.add("q", "x:000001", "z:000001")
        store.add("q", "u:000001", "v:000001")  # untouched
        removed = store.remove_touching("x:000001")
        assert sorted(removed) == [
            ("q", ("x:000001", "z:000001")),
            ("r", ("x:000001", "x:000001")),
            ("r", ("x:000001", "y:000001")),
            ("r", ("y:000002", "x:000001")),
        ]
        assert store.count("r") == 0
        assert store.pairs("q") == {("u:000001", "v:000001")}
        assert store.check_integrity() == []

    def test_relation_names_skips_emptied_relations(self):
        store = LinkStore()
        store.add("r", "a:000001", "b:000001")
        store.add("q", "a:000001", "b:000001")
        store.remove("q", "a:000001", "b:000001")
        assert store.relation_names() == ["r"]

    def test_iter_pairs_matches_pairs(self):
        store = LinkStore()
        store.add("r", "a:000001", "b:000001")
        store.add("r", "a:000002", "b:000002")
        assert set(store.iter_pairs("r")) == store.pairs("r")


class TestDatabaseLinkAPI:
    def test_target_oids_sorted_numerically(self, db):
        a = db.create("Thing", {"name": "a"})
        targets = [db.create("Thing", {"name": f"t{i}"}) for i in range(4)]
        for t in reversed(targets):
            db.link("linked", a.oid, t.oid)
        oids = db.target_oids("linked", a.oid)
        assert oids == sorted(oids, key=sort_key)
        assert oids == [t.oid for t in targets]

    def test_source_oids(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        assert db.source_oids("linked", b.oid) == [a.oid]

    def test_degrees(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        c = db.create("Thing", {"name": "c"})
        db.link("linked", a.oid, b.oid)
        db.link("linked", a.oid, c.oid)
        assert db.out_degree("linked", a.oid) == 2
        assert db.in_degree("linked", b.oid) == 1
        assert db.in_degree("linked", a.oid) == 0

    def test_neighbors_batch_out(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        c = db.create("Thing", {"name": "c"})
        db.link("linked", a.oid, b.oid)
        db.link("linked", b.oid, c.oid)
        expanded = db.neighbors("linked", [a.oid, b.oid, c.oid])
        assert {k: [o.oid for o in v] for k, v in expanded.items()} == {
            a.oid: [b.oid],
            b.oid: [c.oid],
        }

    def test_neighbors_batch_in(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        expanded = db.neighbors("linked", [b.oid], direction="in")
        assert [o.oid for o in expanded[b.oid]] == [a.oid]

    def test_neighbors_rejects_bad_direction(self, db):
        with pytest.raises(ValueError):
            db.neighbors("linked", [], direction="sideways")

    def test_neighbors_checks_schema(self, db):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            db.neighbors("no_such_rel", [])

    def test_link_pairs_returns_copy(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        pairs = db.link_pairs("linked")
        pairs.clear()
        assert db.linked("linked", a.oid, b.oid)

    def test_cardinality_still_enforced_via_index(self, db):
        from repro.errors import RelationshipError

        box1 = db.create("Box", {"label": "1"})
        box2 = db.create("Box", {"label": "2"})
        thing = db.create("Thing", {"name": "t"})
        db.link("contains", box1.oid, thing.oid)
        with pytest.raises(RelationshipError):
            db.link("contains", box2.oid, thing.oid)
        # after unlinking, the slot frees up — indexes must have forgotten
        db.unlink("contains", box1.oid, thing.oid)
        db.link("contains", box2.oid, thing.oid)

    def test_indexes_survive_rollback(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.unlink("linked", a.oid, b.oid)
                db.link("linked", b.oid, a.oid)
                raise RuntimeError("boom")
        assert db.target_oids("linked", a.oid) == [b.oid]
        assert db.source_oids("linked", b.oid) == [a.oid]
        assert db.target_oids("linked", b.oid) == []
        assert db._link_index.check_integrity() == []
