"""Property tests: every read-path rung returns byte-identical payloads.

The zero-copy work (mmap views, reflink/range clones, the
materialization cache) buys performance only — the public contract is
that every rung of every degradation ladder yields exactly the bytes the
digest names:

* ``open_view`` == ``materialize`` for random payloads and delta
  chains, with mmap enabled and disabled;
* ``clone_file`` lands identical bytes whichever method the capability
  mask lets it use, always on a private inode;
* a cached store and an uncached store serve identical bytes through
  arbitrary intern/read interleavings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oms.blobs import BlobStore
from repro.oms.readcache import MaterializationCache
from repro.oms.zerocopy import (
    METHOD_COPY,
    METHOD_COPY_RANGE,
    METHOD_REFLINK,
    FsCapabilities,
    clone_file,
    probe_capabilities,
)

# version chains: each payload may be interned against the previous one
_chains = st.lists(
    st.binary(min_size=0, max_size=2048), min_size=1, max_size=6
)


def _intern_chain(store, payloads):
    digests = []
    base = None
    for payload in payloads:
        digest = store.intern(payload, base_digest=base)
        digests.append(digest)
        base = digest
    return digests


class TestViewEqualsMaterialize:
    @settings(max_examples=40, deadline=None)
    @given(payloads=_chains)
    def test_mmap_views_are_byte_identical(self, tmp_path_factory, payloads):
        store = BlobStore()
        store.enable_views(
            tmp_path_factory.mktemp("views") / "spill"
        )
        digests = _intern_chain(store, payloads)
        for digest, payload in zip(digests, payloads):
            assert bytes(store.open_view(digest)) == payload
            assert store.materialize(digest) == payload
            # a second view of the same digest is still identical
            assert bytes(store.open_view(digest)) == payload

    @settings(max_examples=40, deadline=None)
    @given(payloads=_chains)
    def test_heap_fallback_is_byte_identical(self, payloads):
        # no enable_views: every open_view takes the degraded rung
        store = BlobStore()
        digests = _intern_chain(store, payloads)
        for digest, payload in zip(digests, payloads):
            assert bytes(store.open_view(digest)) == payload
        assert store.views_mapped == 0

    @settings(max_examples=40, deadline=None)
    @given(payloads=_chains)
    def test_mmap_disabled_capabilities_are_byte_identical(
        self, tmp_path_factory, payloads
    ):
        store = BlobStore()
        store.enable_views(
            tmp_path_factory.mktemp("views") / "spill",
            capabilities=FsCapabilities(
                reflink=False, copy_range=False, mmap=False
            ),
        )
        digests = _intern_chain(store, payloads)
        for digest, payload in zip(digests, payloads):
            assert bytes(store.open_view(digest)) == payload
        assert store.views_mapped == 0


class TestCloneLadder:
    #: capability masks forcing each rung of the clone ladder; reflink
    #: quietly degrades to the next rung on filesystems without FICLONE
    MASKS = [
        FsCapabilities(reflink=True, copy_range=True, mmap=False),
        FsCapabilities(reflink=False, copy_range=True, mmap=False),
        FsCapabilities(reflink=False, copy_range=False, mmap=False),
    ]

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(min_size=0, max_size=1 << 16))
    def test_every_rung_lands_identical_bytes(self, tmp_path_factory, data):
        root = tmp_path_factory.mktemp("clone")
        src = root / "src.dat"
        src.write_bytes(data)
        for index, caps in enumerate(self.MASKS):
            dst = root / f"dst{index}.dat"
            method = clone_file(src, dst, caps)
            assert method in (
                METHOD_REFLINK, METHOD_COPY_RANGE, METHOD_COPY
            )
            assert dst.read_bytes() == data
            # always a private inode: editing the clone in place must
            # never bleed into the source
            assert dst.stat().st_ino != src.stat().st_ino

    def test_clone_overwrites_previous_destination(self, tmp_path):
        src = tmp_path / "src.dat"
        dst = tmp_path / "dst.dat"
        src.write_bytes(b"fresh bytes")
        dst.write_bytes(b"stale bytes from an earlier export")
        clone_file(src, dst, probe_capabilities(tmp_path))
        assert dst.read_bytes() == b"fresh bytes"

    def test_editing_a_clone_leaves_the_source_alone(self, tmp_path):
        src = tmp_path / "src.dat"
        dst = tmp_path / "dst.dat"
        src.write_bytes(b"shared payload")
        clone_file(src, dst, probe_capabilities(tmp_path))
        with open(dst, "r+b") as handle:
            handle.write(b"EDITED")
        assert src.read_bytes() == b"shared payload"


# interleavings of (intern chain-index, read chain-index) operations
_ops = st.lists(
    st.tuples(
        st.sampled_from(["intern", "read", "view"]),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=25,
)


class TestCacheTransparency:
    @settings(max_examples=40, deadline=None)
    @given(ops=_ops, payload_seeds=st.lists(
        st.integers(min_value=0, max_value=7), min_size=5, max_size=5
    ))
    def test_cached_and_uncached_stores_agree(self, ops, payload_seeds):
        """The cache is invisible: same bytes, same errors, all reads."""
        payloads = [
            bytes([seed % 5]) * (seed * 37) for seed in payload_seeds
        ]
        cached = BlobStore()
        cached.attach_cache(MaterializationCache(budget_bytes=256))
        plain = BlobStore()
        digests = {}
        for kind, index in ops:
            payload = payloads[index]
            if kind == "intern":
                a = cached.intern(payload)
                b = plain.intern(payload)
                assert a == b
                digests[index] = a
            elif index in digests:
                if kind == "read":
                    assert (
                        cached.materialize(digests[index])
                        == plain.materialize(digests[index])
                        == payload
                    )
                else:
                    assert (
                        bytes(cached.open_view(digests[index]))
                        == bytes(plain.open_view(digests[index]))
                        == payload
                    )
        # invariants hold on both sides whatever the interleaving did
        cached.check()
        plain.check()
