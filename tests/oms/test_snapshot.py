"""Unit tests for OMS snapshot persistence."""

import pytest

from repro.errors import OMSError
from repro.oms.schema import Schema
from repro.oms.snapshot import dump_snapshot, restore_snapshot


@pytest.fixture
def populated(db):
    box = db.create("Box", {"label": "b1"})
    thing = db.create("Thing", {"name": "t1", "size": 5},
                      payload=b"\x00binary\xff")
    other = db.create("Thing", {"name": "t2"})
    db.link("contains", box.oid, thing.oid)
    db.link("linked", thing.oid, other.oid)
    return db, box, thing, other


class TestRoundTrip:
    def test_objects_and_ids_preserved(self, populated, simple_schema):
        db, box, thing, other = populated
        restored = restore_snapshot(simple_schema, dump_snapshot(db))
        assert restored.get(thing.oid).get("name") == "t1"
        assert restored.get(thing.oid).get("size") == 5
        assert restored.get(box.oid).get("label") == "b1"

    def test_binary_payload_preserved(self, populated, simple_schema):
        db, box, thing, other = populated
        restored = restore_snapshot(simple_schema, dump_snapshot(db))
        assert restored.get(thing.oid).payload == b"\x00binary\xff"

    def test_links_preserved(self, populated, simple_schema):
        db, box, thing, other = populated
        restored = restore_snapshot(simple_schema, dump_snapshot(db))
        assert restored.linked("contains", box.oid, thing.oid)
        assert restored.linked("linked", thing.oid, other.oid)

    def test_new_ids_do_not_collide(self, populated, simple_schema):
        db, box, thing, other = populated
        restored = restore_snapshot(simple_schema, dump_snapshot(db))
        fresh = restored.create("Thing", {"name": "new"})
        assert fresh.oid not in {box.oid, thing.oid, other.oid}

    def test_policy_preserved(self, simple_schema):
        from repro.oms.database import OMSDatabase

        db = OMSDatabase(simple_schema, policy={"cross_project_sharing":
                                                True})
        restored = restore_snapshot(simple_schema, dump_snapshot(db))
        assert restored.policy["cross_project_sharing"] is True

    def test_stats_identical(self, populated, simple_schema):
        db, *_ = populated
        restored = restore_snapshot(simple_schema, dump_snapshot(db))
        assert restored.stats() == db.stats()

    def test_double_round_trip_stable(self, populated, simple_schema):
        db, *_ = populated
        once = dump_snapshot(db)
        twice = dump_snapshot(restore_snapshot(simple_schema, once))
        assert once == twice


class TestValidation:
    def test_garbage_rejected(self, simple_schema):
        with pytest.raises(OMSError):
            restore_snapshot(simple_schema, b"garbage")

    def test_wrong_format_rejected(self, simple_schema):
        with pytest.raises(OMSError):
            restore_snapshot(simple_schema, b'{"format": "other"}')

    def test_schema_mismatch_rejected(self, populated):
        db, *_ = populated
        wrong = Schema("different")
        with pytest.raises(OMSError, match="schema"):
            restore_snapshot(wrong, dump_snapshot(db))


class TestJCFSnapshot:
    def test_whole_jcf_state_survives_a_restart(self, jcf_with_flow):
        """The framework-level story: restore and keep working."""
        from repro.jcf.model import build_jcf_schema

        jcf = jcf_with_flow
        project = jcf.desktop.create_project("alice", "chipA")
        cell = project.create_cell("alu")
        version = cell.create_version()
        version.attach_flow(jcf.flows.flow_object("jcf_fmcad_flow"))
        variant = version.create_variant("work")
        dobj = variant.create_design_object("alu/schematic", "schematic")
        dobj.new_version(b"the design")

        snapshot = dump_snapshot(jcf.db)
        restored_db = restore_snapshot(build_jcf_schema(), snapshot)

        # navigate the restored graph with the same wrappers
        from repro.jcf.project import JCFProject

        projects = restored_db.select(
            "Project", lambda o: o.get("name") == "chipA"
        )
        restored_project = JCFProject(restored_db, projects[0])
        restored_cell = restored_project.cell("alu")
        restored_variant = restored_cell.version(1).variant("work")
        restored_dobj = restored_variant.design_object("alu/schematic")
        assert restored_db.get(
            restored_dobj.latest_version().oid
        ).payload == b"the design"
