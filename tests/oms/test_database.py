"""Unit tests for the OMS database kernel."""

import pytest

from repro.errors import (
    ClosedInterfaceError,
    RelationshipError,
    SchemaError,
    UnknownObjectError,
)
from repro.oms.database import OMSDatabase


class TestObjectLifecycle:
    def test_create_and_get(self, db):
        obj = db.create("Thing", {"name": "alpha"})
        assert db.get(obj.oid).get("name") == "alpha"

    def test_create_validates_schema(self, db):
        with pytest.raises(SchemaError):
            db.create("Thing", {"bogus": 1})

    def test_create_unknown_type_raises(self, db):
        with pytest.raises(SchemaError):
            db.create("Ghost")

    def test_get_unknown_oid_raises(self, db):
        with pytest.raises(UnknownObjectError):
            db.get("Thing:999999")

    def test_delete_removes_object(self, db):
        obj = db.create("Thing", {"name": "x"})
        db.delete(obj.oid)
        assert not db.exists(obj.oid)

    def test_delete_removes_touching_links(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        db.delete(b.oid)
        assert db.targets("linked", a.oid) == []

    def test_delete_marks_stale_references_deleted(self, db):
        """Callers holding the OMSObject (typed wrappers cache them) must
        see the deletion instead of silently reading removed state."""
        obj = db.create("Thing", {"name": "x"})
        stale = db.get(obj.oid)
        assert not stale.deleted
        db.delete(obj.oid)
        assert stale.deleted

    def test_delete_rollback_clears_deleted_flag(self, db):
        obj = db.create("Thing", {"name": "x"})
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.delete(obj.oid)
                assert obj.deleted
                raise RuntimeError("boom")
        assert not obj.deleted
        assert db.get(obj.oid) is obj

    def test_create_rollback_marks_object_deleted(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                obj = db.create("Thing", {"name": "gone"})
                raise RuntimeError("boom")
        assert obj.deleted
        assert not db.exists(obj.oid)

    def test_set_attr_is_schema_checked(self, db):
        obj = db.create("Thing", {"name": "x"})
        with pytest.raises(Exception):
            db.set_attr(obj.oid, "size", "not-an-int")

    def test_set_attr_updates_value(self, db):
        obj = db.create("Thing", {"name": "x"})
        db.set_attr(obj.oid, "size", 42)
        assert db.get(obj.oid).get("size") == 42

    def test_payload_round_trip(self, db):
        obj = db.create("Thing", {"name": "x"}, payload=b"abc")
        assert db.get(obj.oid).payload == b"abc"
        db.set_payload(obj.oid, b"defg")
        assert db.get(obj.oid).payload_size == 4


class TestLinks:
    def test_link_and_targets(self, db):
        box = db.create("Box", {"label": "b"})
        thing = db.create("Thing", {"name": "t"})
        db.link("contains", box.oid, thing.oid)
        assert [o.oid for o in db.targets("contains", box.oid)] == [thing.oid]
        assert [o.oid for o in db.sources("contains", thing.oid)] == [box.oid]

    def test_link_checks_endpoint_types(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        with pytest.raises(RelationshipError):
            db.link("contains", a.oid, b.oid)  # source must be Box

    def test_link_is_idempotent(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        db.link("linked", a.oid, b.oid)
        assert len(db.targets("linked", a.oid)) == 1

    def test_one_to_n_rejects_second_source(self, db):
        box1 = db.create("Box", {"label": "1"})
        box2 = db.create("Box", {"label": "2"})
        thing = db.create("Thing", {"name": "t"})
        db.link("contains", box1.oid, thing.oid)
        with pytest.raises(RelationshipError):
            db.link("contains", box2.oid, thing.oid)

    def test_one_to_one_rejects_second_target(self, db):
        a = db.create("Box", {"label": "a"})
        b = db.create("Box", {"label": "b"})
        c = db.create("Box", {"label": "c"})
        db.link("lid_of", a.oid, b.oid)
        with pytest.raises(RelationshipError):
            db.link("lid_of", a.oid, c.oid)

    def test_unlink_removes_link(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        db.unlink("linked", a.oid, b.oid)
        assert not db.linked("linked", a.oid, b.oid)

    def test_unlink_missing_raises(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        with pytest.raises(RelationshipError):
            db.unlink("linked", a.oid, b.oid)

    def test_targets_stable_order(self, db):
        a = db.create("Thing", {"name": "a"})
        targets = [db.create("Thing", {"name": f"t{i}"}) for i in range(5)]
        for t in reversed(targets):
            db.link("linked", a.oid, t.oid)
        oids = [o.oid for o in db.targets("linked", a.oid)]
        assert oids == sorted(oids)


class TestSelect:
    def test_select_filters_by_type(self, db):
        db.create("Thing", {"name": "a"})
        db.create("Box", {"label": "b"})
        assert len(db.select("Thing")) == 1

    def test_select_with_predicate(self, db):
        db.create("Thing", {"name": "a", "size": 1})
        db.create("Thing", {"name": "b", "size": 2})
        big = db.select("Thing", lambda o: o.get("size") > 1)
        assert [o.get("name") for o in big] == ["b"]

    def test_count(self, db):
        for i in range(3):
            db.create("Thing", {"name": str(i)})
        assert db.count("Thing") == 3


class TestTransactions:
    def test_commit_keeps_changes(self, db):
        with db.transaction():
            obj = db.create("Thing", {"name": "kept"})
        assert db.exists(obj.oid)

    def test_abort_rolls_back_creation(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                obj = db.create("Thing", {"name": "gone"})
                raise RuntimeError("boom")
        assert not db.exists(obj.oid)

    def test_abort_rolls_back_attrs_and_links(self, db):
        a = db.create("Thing", {"name": "a", "size": 1})
        b = db.create("Thing", {"name": "b"})
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.set_attr(a.oid, "size", 99)
                db.link("linked", a.oid, b.oid)
                raise RuntimeError("boom")
        assert db.get(a.oid).get("size") == 1
        assert not db.linked("linked", a.oid, b.oid)

    def test_abort_restores_deleted_object_and_links(self, db):
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.delete(b.oid)
                raise RuntimeError("boom")
        assert db.exists(b.oid)
        assert db.linked("linked", a.oid, b.oid)

    def test_nested_transactions_join_outer(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                obj = db.create("Thing", {"name": "outer"})
                with db.transaction():
                    inner = db.create("Thing", {"name": "inner"})
                raise RuntimeError("boom")
        assert not db.exists(obj.oid)
        assert not db.exists(inner.oid)

    def test_payload_rollback(self, db):
        obj = db.create("Thing", {"name": "x"}, payload=b"old")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.set_payload(obj.oid, b"new")
                raise RuntimeError("boom")
        assert db.get(obj.oid).payload == b"old"


class TestClosedInterface:
    def test_procedural_interface_closed_by_default(self, db):
        with pytest.raises(ClosedInterfaceError):
            db.procedural_interface()

    def test_future_work_mode_opens_it(self, simple_schema):
        db = OMSDatabase(simple_schema, enable_procedural_interface=True)
        obj = db.create("Thing", {"name": "x"}, payload=b"blob")
        direct = db.procedural_interface()
        assert direct.read_payload(obj.oid) == b"blob"

    def test_direct_write(self, simple_schema):
        db = OMSDatabase(simple_schema, enable_procedural_interface=True)
        obj = db.create("Thing", {"name": "x"})
        db.procedural_interface().write_payload(obj.oid, b"zz")
        assert db.get(obj.oid).payload == b"zz"


class TestStats:
    def test_stats_counts_types_links_payload(self, db):
        a = db.create("Thing", {"name": "a"}, payload=b"12345")
        b = db.create("Thing", {"name": "b"})
        db.create("Box", {"label": "x"})
        db.link("linked", a.oid, b.oid)
        stats = db.stats()
        assert stats["by_type"] == {"Thing": 2, "Box": 1}
        assert stats["links"]["linked"] == 1
        assert stats["payload_bytes"] == 5
