"""The blob read path: views, cache, striped locks, and concurrency.

Covers the three legs of the read-path work:

* **zero-copy views** — ``open_view`` returns mmap-backed memoryviews
  for base-resident blobs, byte-identical to ``materialize`` on every
  degradation rung (delta entries, empty payloads, mmap disabled);
* **the materialization cache** — verified-bytes-only, digest-keyed,
  byte-budgeted LRU, invalidated by repair and quarantine (a cached
  read of a quarantined digest raises, never serves);
* **per-digest locking** — readers of other digests make progress while
  a large intern encodes, and while ``read_staged`` hangs on a slow
  file; repair/quarantine exclude in-flight readers of their digest.
"""

import threading

import pytest

from repro.errors import IntegrityError, OMSError, QuarantinedError
from repro.oms.blobs import BlobStore, digest_bytes
from repro.oms.locks import DigestLockTable
from repro.oms.query import QueryEngine
from repro.oms.readcache import MaterializationCache
from repro.oms.storage import StagingArea
from repro.oms.zerocopy import FsCapabilities, probe_capabilities

PAYLOAD = b"cellview bytes: " + bytes(range(256)) * 16


@pytest.fixture
def store():
    return BlobStore()


@pytest.fixture
def viewing_store(tmp_path):
    """A store with mmap views enabled under a tmp root."""
    store = BlobStore()
    caps = store.enable_views(tmp_path / "views")
    store.test_caps = caps
    return store


def _require_mmap(store):
    """Skip mmap-specific assertions where views degrade to heap copies
    (the fallback-matrix CI job sets ``REPRO_DISABLE_MMAP=1``; the
    degraded behaviour itself is covered by the fallback tests)."""
    if not store.test_caps.mmap:
        pytest.skip("mmap views unavailable under this configuration")


# -- striped digest locks -----------------------------------------------------


class TestDigestLockTable:
    def test_stripe_is_stable(self):
        table = DigestLockTable()
        digest = digest_bytes(b"x")
        assert table.stripe_for(digest) is table.stripe_for(digest)

    def test_reading_is_shared(self):
        table = DigestLockTable()
        digest = digest_bytes(b"x")
        with table.reading(digest):
            with table.reading(digest):
                pass

    def test_writer_blocks_cross_thread_reader(self):
        table = DigestLockTable()
        digest = digest_bytes(b"x")
        entered = threading.Event()

        def reader():
            with table.reading(digest):
                entered.set()

        with table.writing(digest):
            thread = threading.Thread(target=reader)
            thread.start()
            assert not entered.wait(0.05)
        assert entered.wait(2.0)
        thread.join()

    def test_different_digests_usually_different_stripes(self):
        table = DigestLockTable()
        stripes = {
            table.stripe_for(digest_bytes(bytes([i])))
            for i in range(64)
        }
        # crc32 striping must actually spread digests out
        assert len(stripes) > 32

    def test_rejects_zero_stripes(self):
        with pytest.raises(ValueError):
            DigestLockTable(stripes=0)


# -- the materialization cache ------------------------------------------------


class TestMaterializationCache:
    def test_miss_then_hit(self):
        cache = MaterializationCache(budget_bytes=1024)
        assert cache.get("d1") is None
        assert cache.put("d1", b"bytes")
        assert cache.get("d1") == b"bytes"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_oversized_payload_never_cached(self):
        cache = MaterializationCache(budget_bytes=4)
        assert not cache.put("big", b"12345")
        assert cache.get("big") is None

    def test_lru_eviction_by_bytes(self):
        cache = MaterializationCache(budget_bytes=10)
        cache.put("a", b"aaaa")
        cache.put("b", b"bbbb")
        cache.get("a")  # freshen a: b becomes the LRU victim
        cache.put("c", b"cccc")
        assert cache.get("a") == b"aaaa"
        assert cache.get("b") is None
        assert cache.get("c") == b"cccc"
        assert cache.stats()["evictions"] == 1
        assert cache.cached_bytes <= 10

    def test_invalidate(self):
        cache = MaterializationCache(budget_bytes=1024)
        cache.put("d", b"x")
        assert cache.invalidate("d")
        assert not cache.invalidate("d")  # already gone
        assert cache.get("d") is None
        assert cache.stats()["invalidations"] == 1

    def test_clear(self):
        cache = MaterializationCache(budget_bytes=1024)
        cache.put("d", b"x")
        cache.clear()
        assert len(cache) == 0
        assert cache.cached_bytes == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            MaterializationCache(budget_bytes=-1)


class TestCachedMaterialize:
    def test_second_read_is_a_cache_hit(self, store):
        cache = MaterializationCache()
        store.attach_cache(cache)
        digest = store.intern(PAYLOAD)
        assert store.materialize(digest) == PAYLOAD
        assert store.materialize(digest) == PAYLOAD
        assert store.verifications == 1
        assert cache.stats()["hits"] == 1

    def test_unverified_reads_bypass_the_cache(self, store):
        cache = MaterializationCache()
        store.attach_cache(cache)
        digest = store.intern(PAYLOAD)
        # the unverified arm must neither consult nor feed the cache:
        # it only ever holds bytes that proved their digest
        assert store.materialize(digest, verify=False) == PAYLOAD
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_quarantined_digest_never_served_from_cache(self, store):
        cache = MaterializationCache()
        store.attach_cache(cache)
        digest = store.intern(PAYLOAD)
        store.materialize(digest)  # populate the cache
        assert digest in cache
        store.quarantine(digest)
        # the quarantine dropped the entry AND the read path refuses
        # before ever consulting the cache
        assert digest not in cache
        with pytest.raises(QuarantinedError):
            store.materialize(digest)

    def test_repair_invalidates_cache_entry(self, store):
        cache = MaterializationCache()
        store.attach_cache(cache)
        digest = store.intern(PAYLOAD)
        store.materialize(digest)
        assert digest in cache
        store.repair(digest, PAYLOAD)
        assert digest not in cache
        # and the post-repair read re-verifies before re-caching
        verifications = store.verifications
        assert store.materialize(digest) == PAYLOAD
        assert store.verifications == verifications + 1

    def test_cache_shared_across_digests_within_budget(self, store):
        cache = MaterializationCache(budget_bytes=len(PAYLOAD) + 16)
        store.attach_cache(cache)
        d1 = store.intern(PAYLOAD)
        d2 = store.intern(b"other bytes")
        store.materialize(d1)
        store.materialize(d2)
        # both fit; a third large payload would evict
        assert d1 in cache and d2 in cache


# -- zero-copy views ----------------------------------------------------------


class TestOpenView:
    def test_view_bytes_match_materialize(self, viewing_store):
        _require_mmap(viewing_store)
        digest = viewing_store.intern(PAYLOAD)
        view = viewing_store.open_view(digest)
        assert bytes(view) == viewing_store.materialize(digest) == PAYLOAD
        assert viewing_store.views_mapped == 1

    def test_second_view_shares_the_mapping(self, viewing_store):
        _require_mmap(viewing_store)
        digest = viewing_store.intern(PAYLOAD)
        viewing_store.open_view(digest)
        viewing_store.open_view(digest)
        assert viewing_store.views_mapped == 1
        assert viewing_store.view_hits == 1

    def test_view_marks_entry_verified(self, viewing_store):
        digest = viewing_store.intern(PAYLOAD)
        viewing_store.open_view(digest)
        # the chunked map-time hash counts as the one verification
        viewing_store.materialize(digest)
        assert viewing_store.verification_hits >= 1

    def test_delta_entry_falls_back_to_heap(self, viewing_store):
        base = viewing_store.intern(PAYLOAD)
        edited = PAYLOAD[:100] + b"EDIT" + PAYLOAD[100:]
        digest = viewing_store.intern(edited, base_digest=base)
        assert viewing_store.describe(digest)["is_delta"] == 1
        view = viewing_store.open_view(digest)
        assert bytes(view) == edited
        assert viewing_store.view_fallbacks == 1
        assert viewing_store.views_mapped == 0

    def test_empty_payload_falls_back(self, viewing_store):
        digest = viewing_store.intern(b"")
        assert bytes(viewing_store.open_view(digest)) == b""
        assert viewing_store.view_fallbacks == 1

    def test_store_without_views_enabled_falls_back(self, store):
        digest = store.intern(PAYLOAD)
        assert bytes(store.open_view(digest)) == PAYLOAD
        assert store.view_fallbacks == 1
        assert store.views_mapped == 0

    def test_mmap_disabled_by_env_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_MMAP", "1")
        store = BlobStore()
        caps = store.enable_views(tmp_path / "views")
        assert not caps.mmap
        digest = store.intern(PAYLOAD)
        assert bytes(store.open_view(digest)) == PAYLOAD
        assert store.views_mapped == 0
        assert store.view_fallbacks == 1

    def test_quarantine_refuses_view(self, viewing_store):
        digest = viewing_store.intern(PAYLOAD)
        viewing_store.open_view(digest)
        viewing_store.quarantine(digest)
        with pytest.raises(QuarantinedError):
            viewing_store.open_view(digest)

    def test_repair_drops_the_view_for_future_readers(self, viewing_store):
        _require_mmap(viewing_store)
        digest = viewing_store.intern(PAYLOAD)
        old_view = viewing_store.open_view(digest)
        viewing_store.repair(digest, PAYLOAD)
        # the loaned-out view stays readable (pages pinned) ...
        assert bytes(old_view) == PAYLOAD
        # ... but the next reader maps afresh from the repaired bytes
        new_view = viewing_store.open_view(digest)
        assert bytes(new_view) == PAYLOAD
        assert viewing_store.views_mapped == 2

    def test_release_of_last_reference_reclaims_spill_file(
        self, tmp_path
    ):
        store = BlobStore()
        root = tmp_path / "views"
        if not store.enable_views(root).mmap:
            pytest.skip("mmap views unavailable under this configuration")
        digest = store.intern(PAYLOAD)
        store.open_view(digest)
        assert list(root.glob("*.view"))
        assert store.release(digest) == PAYLOAD
        assert not store.contains(digest)
        assert not list(root.glob("*.view"))

    def test_enable_views_sweeps_stale_spill_files(self, tmp_path):
        root = tmp_path / "views"
        root.mkdir()
        stale = root / "deadbeef.1.view"
        stale.write_bytes(b"from a previous process")
        BlobStore().enable_views(root)
        assert not stale.exists()

    def test_unknown_digest_raises(self, viewing_store):
        with pytest.raises(OMSError):
            viewing_store.open_view("0" * 64)

    def test_handle_open_view(self, db, tmp_path):
        db.enable_payload_views(tmp_path / "views")
        obj = db.create("Thing", {"name": "x"}, payload=PAYLOAD)
        view = db.open_payload_view(db.payload_digest_of(obj.oid))
        assert bytes(view) == PAYLOAD


# -- concurrency: readers make progress ---------------------------------------


class _BlockableStore(BlobStore):
    """A store whose encode step waits for an external green light."""

    def __init__(self):
        super().__init__()
        self.encode_entered = threading.Event()
        self.encode_release = threading.Event()
        self.block_next_encode = False

    def _encode(self, data, base_digest, base_depth):
        if self.block_next_encode:
            self.block_next_encode = False
            self.encode_entered.set()
            assert self.encode_release.wait(10.0)
        return super()._encode(data, base_digest, base_depth)


class TestReadersProgressDuringIntern:
    def test_materialize_completes_while_intern_encodes(self):
        """Satellite 1: a large intern must not stall unrelated readers.

        The encode step (diffing, hashing) runs outside every lock; a
        reader of an already-stored digest completes while the intern
        is wedged mid-encode.  Before the lock narrowing this deadlocked
        the reader behind the store mutex for the whole encode.
        """
        store = _BlockableStore()
        resident = store.intern(PAYLOAD)
        store.block_next_encode = True
        interned: list = []

        def slow_intern():
            interned.append(store.intern(b"slow payload" * 1000))

        writer = threading.Thread(target=slow_intern)
        writer.start()
        assert store.encode_entered.wait(5.0)
        try:
            # the intern is parked inside _encode; reads must not queue
            done = threading.Event()

            def read():
                assert store.materialize(resident) == PAYLOAD
                assert bytes(store.open_view(resident)) == PAYLOAD
                done.set()

            reader = threading.Thread(target=read)
            reader.start()
            assert done.wait(5.0), "reader stalled behind an encoding intern"
            reader.join()
        finally:
            store.encode_release.set()
            writer.join()
        assert interned and store.contains(interned[0])

    def test_blocked_intern_still_stores_correctly(self):
        store = _BlockableStore()
        store.block_next_encode = True
        results = []

        def intern():
            results.append(store.intern(PAYLOAD))

        thread = threading.Thread(target=intern)
        thread.start()
        assert store.encode_entered.wait(5.0)
        store.encode_release.set()
        thread.join()
        assert results == [digest_bytes(PAYLOAD)]
        assert store.materialize(results[0]) == PAYLOAD


class TestReadStagedDoesNotHoldTheStagingLock:
    def test_staging_progresses_while_a_read_hangs(self, db, tmp_path):
        """``read_staged`` must not camp on the staging mutex during I/O.

        The staged file is swapped for a FIFO, so the read blocks in the
        kernel until bytes arrive; meanwhile exports of *other* objects
        and ``staged()`` listings must complete.
        """
        import os

        staging = StagingArea(db, tmp_path / "stage")
        slow = db.create("Thing", {"name": "slow"}, payload=PAYLOAD)
        other = db.create("Thing", {"name": "other"}, payload=b"unrelated")
        staged = staging.export_object(slow.oid)
        staged.path.unlink()
        os.mkfifo(staged.path)

        read_back: list = []
        reader = threading.Thread(
            target=lambda: read_back.append(staging.read_staged(slow.oid))
        )
        reader.start()
        try:
            done = threading.Event()

            def stage_other():
                staging.export_object(other.oid)
                assert staging.staged()
                done.set()

            worker = threading.Thread(target=stage_other)
            worker.start()
            assert done.wait(5.0), "staging stalled behind a hung read"
            worker.join()
        finally:
            # feed the FIFO so the hung read completes with pristine bytes
            with open(staged.path, "wb") as pipe:
                pipe.write(PAYLOAD)
            reader.join(10.0)
        assert read_back == [PAYLOAD]


# -- query-engine traversal memo ----------------------------------------------


@pytest.fixture
def linked(db):
    """a -> b -> c over 'linked'; returns (engine, [a, b, c])."""
    objs = [db.create("Thing", {"name": n}) for n in "abc"]
    for src, dst in zip(objs, objs[1:]):
        db.link("linked", src.oid, dst.oid)
    return QueryEngine(db), objs


class TestQueryMemo:
    def test_repeat_traversal_hits_the_memo(self, linked):
        engine, objs = linked
        first = engine.reachable(objs[0].oid, ["linked"])
        second = engine.reachable(objs[0].oid, ["linked"])
        assert [o.oid for o in first] == [o.oid for o in second]
        assert engine.memo_stats()["hits"] == 1

    def test_any_mutation_invalidates(self, db, linked):
        engine, objs = linked
        engine.reachable(objs[0].oid, ["linked"])
        db.unlink("linked", objs[1].oid, objs[2].oid)
        fresh = engine.reachable(objs[0].oid, ["linked"])
        assert [o.oid for o in fresh] == [objs[1].oid]
        assert engine.memo_stats()["hits"] == 0

    def test_attribute_write_invalidates(self, db, linked):
        engine, objs = linked
        engine.reachable(objs[0].oid, ["linked"])
        db.set_attr(objs[2].oid, "name", "renamed")
        engine.reachable(objs[0].oid, ["linked"])
        assert engine.memo_stats()["hits"] == 0
        # unchanged since: now it memoizes
        engine.reachable(objs[0].oid, ["linked"])
        assert engine.memo_stats()["hits"] == 1

    def test_memo_returns_fresh_objects_not_snapshots(self, db, linked):
        engine, objs = linked
        engine.reachable(objs[0].oid, ["linked"])
        hit = engine.reachable(objs[0].oid, ["linked"])
        # oids are memoized, objects are re-fetched: attribute reads
        # through a memo hit always see current state (the closure
        # excludes the start object, so the first hop is "b")
        assert hit[0].get("name") == "b"

    def test_aborted_transaction_invalidates(self, db, linked):
        engine, objs = linked
        engine.reachable(objs[0].oid, ["linked"])
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.unlink("linked", objs[0].oid, objs[1].oid)
                raise RuntimeError("boom")
        # the store rolled back to the memoized shape, but undo bypasses
        # the public mutators — the epoch must still have moved
        result = engine.reachable(objs[0].oid, ["linked"])
        assert [o.oid for o in result] == [o.oid for o in objs[1:]]
        assert engine.memo_stats()["hits"] == 0

    def test_ancestors_memoized_separately(self, linked):
        engine, objs = linked
        engine.ancestors(objs[2].oid, ["linked"])
        engine.ancestors(objs[2].oid, ["linked"])
        engine.reachable(objs[2].oid, ["linked"])
        stats = engine.memo_stats()
        assert stats["hits"] == 1
        assert stats["entries"] == 2

    def test_depth_limit_is_part_of_the_key(self, linked):
        engine, objs = linked
        full = engine.reachable(objs[0].oid, ["linked"])
        limited = engine.reachable(objs[0].oid, ["linked"], max_depth=1)
        assert engine.memo_stats()["hits"] == 0
        assert len(full) == 2 and len(limited) == 1


# -- capability probing -------------------------------------------------------


class TestCapabilityProbe:
    def test_probe_is_cached_per_root(self, tmp_path):
        root = tmp_path / "probe"
        first = probe_capabilities(root)
        second = probe_capabilities(root)
        assert first == second
        # the scratch files are cleaned up
        assert not list(root.iterdir())

    def test_env_override_applies_to_cached_probe(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "probe"
        probe_capabilities(root)  # prime the cache
        monkeypatch.setenv("REPRO_DISABLE_MMAP", "1")
        monkeypatch.setenv("REPRO_DISABLE_REFLINK", "1")
        caps = probe_capabilities(root)
        assert not caps.mmap
        assert not caps.reflink

    def test_describe(self):
        assert (
            FsCapabilities(
                reflink=False, copy_range=False, mmap=False
            ).describe()
            == "copy-only"
        )
        assert "mmap" in FsCapabilities(
            reflink=False, copy_range=True, mmap=True
        ).describe()
