"""Unit tests for the OMS query engine."""

import pytest

from repro.errors import OMSError, QueryError
from repro.oms.query import QueryEngine


@pytest.fixture
def chain(db):
    """a -> b -> c -> d over 'linked'; returns (engine, [a,b,c,d])."""
    objs = [db.create("Thing", {"name": n}) for n in "abcd"]
    for src, dst in zip(objs, objs[1:]):
        db.link("linked", src.oid, dst.oid)
    return QueryEngine(db), objs


class TestSingleHop:
    def test_children(self, chain):
        engine, objs = chain
        assert [o.oid for o in engine.children("linked", objs[0].oid)] == [
            objs[1].oid
        ]

    def test_parents(self, chain):
        engine, objs = chain
        assert [o.oid for o in engine.parents("linked", objs[1].oid)] == [
            objs[0].oid
        ]

    def test_only_child_none(self, chain):
        engine, objs = chain
        assert engine.only_child("linked", objs[3].oid) is None

    def test_only_child_unique(self, chain):
        engine, objs = chain
        child = engine.only_child("linked", objs[0].oid)
        assert child.oid == objs[1].oid

    def test_only_child_ambiguous_raises(self, db):
        engine = QueryEngine(db)
        a = db.create("Thing", {"name": "a"})
        for n in "bc":
            other = db.create("Thing", {"name": n})
            db.link("linked", a.oid, other.oid)
        with pytest.raises(QueryError):
            engine.only_child("linked", a.oid)

    def test_only_child_ambiguous_is_typed_oms_error(self, db):
        """QueryError slots into the repro.errors OMS hierarchy."""
        engine = QueryEngine(db)
        a = db.create("Thing", {"name": "a"})
        for n in "bc":
            other = db.create("Thing", {"name": n})
            db.link("linked", a.oid, other.oid)
        with pytest.raises(OMSError):
            engine.only_child("linked", a.oid)


class TestReachability:
    def test_reachable_excludes_start(self, chain):
        engine, objs = chain
        found = engine.reachable(objs[0].oid, ["linked"])
        assert objs[0].oid not in [o.oid for o in found]
        assert len(found) == 3

    def test_reachable_respects_max_depth(self, chain):
        engine, objs = chain
        found = engine.reachable(objs[0].oid, ["linked"], max_depth=2)
        assert [o.oid for o in found] == [objs[1].oid, objs[2].oid]

    def test_reachable_handles_cycles(self, db):
        engine = QueryEngine(db)
        a = db.create("Thing", {"name": "a"})
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        db.link("linked", b.oid, a.oid)
        found = engine.reachable(a.oid, ["linked"])
        assert [o.oid for o in found] == [b.oid]

    def test_ancestors(self, chain):
        engine, objs = chain
        found = engine.ancestors(objs[3].oid, ["linked"])
        assert {o.oid for o in found} == {o.oid for o in objs[:3]}

    def test_path_exists(self, chain):
        engine, objs = chain
        assert engine.path_exists(objs[0].oid, objs[3].oid, ["linked"])
        assert not engine.path_exists(objs[3].oid, objs[0].oid, ["linked"])


class TestGroupBy:
    def test_group_by_key(self, db):
        engine = QueryEngine(db)
        for name, size in [("a", 1), ("b", 1), ("c", 2)]:
            db.create("Thing", {"name": name, "size": size})
        groups = engine.group_by("Thing", lambda o: str(o.get("size")))
        assert sorted(groups) == ["1", "2"]
        assert len(groups["1"]) == 2
