"""Unit tests for the transaction object itself."""

import pytest

from repro.errors import TransactionError
from repro.oms.transactions import Transaction


class TestTransaction:
    def test_initial_state_active(self):
        assert Transaction("t1").state == "active"

    def test_commit_clears_journal(self):
        txn = Transaction("t1")
        txn.record_undo(lambda: None)
        txn.commit()
        assert txn.state == "committed"
        assert txn.journal_length == 0

    def test_abort_runs_undos_in_reverse(self):
        order = []
        txn = Transaction("t1")
        txn.record_undo(lambda: order.append("first"))
        txn.record_undo(lambda: order.append("second"))
        txn.abort()
        assert order == ["second", "first"]
        assert txn.state == "aborted"

    def test_record_after_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.record_undo(lambda: None)

    def test_double_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_after_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.abort()


class TestAbortWithFailingUndos:
    def test_abort_runs_all_undos_despite_failure(self):
        """A raising undo must not stop the rollback mid-journal."""
        ran = []
        txn = Transaction("t1")
        txn.record_undo(lambda: ran.append("first"))
        txn.record_undo(lambda: (_ for _ in ()).throw(ValueError("bad undo")))
        txn.record_undo(lambda: ran.append("last"))
        with pytest.raises(TransactionError):
            txn.abort()
        assert ran == ["last", "first"]

    def test_abort_with_failure_still_ends_aborted(self):
        txn = Transaction("t1")
        txn.record_undo(lambda: (_ for _ in ()).throw(ValueError("bad")))
        with pytest.raises(TransactionError):
            txn.abort()
        assert txn.state == "aborted"
        assert txn.journal_length == 0

    def test_transaction_error_chains_first_failure(self):
        first = ValueError("first failure")
        second = KeyError("second failure")
        txn = Transaction("t1")
        # journal replays most-recent-first, so record in reverse
        txn.record_undo(lambda: (_ for _ in ()).throw(first))
        txn.record_undo(lambda: (_ for _ in ()).throw(second))
        with pytest.raises(TransactionError) as excinfo:
            txn.abort()
        assert excinfo.value.__cause__ is second
        assert "2 undo step(s)" in str(excinfo.value)

    def test_double_abort_after_failed_abort_raises(self):
        txn = Transaction("t1")
        txn.record_undo(lambda: (_ for _ in ()).throw(ValueError()))
        with pytest.raises(TransactionError):
            txn.abort()
        with pytest.raises(TransactionError):
            txn.abort()


class TestGroupCommit:
    def test_commits_coalesce_into_one_flush(self, db):
        flushes = db.flush_count
        with db.group_commit():
            for i in range(5):
                with db.transaction():
                    db.create("Thing", {"name": f"t{i}"})
        assert db.flush_count == flushes + 1
        assert db.coalesced_commits == 4
        assert db.commit_count >= 5

    def test_commits_outside_group_flush_individually(self, db):
        flushes = db.flush_count
        for i in range(3):
            with db.transaction():
                db.create("Thing", {"name": f"t{i}"})
        assert db.flush_count == flushes + 3
        assert db.coalesced_commits == 0

    def test_empty_group_flushes_nothing(self, db):
        flushes = db.flush_count
        with db.group_commit():
            pass
        assert db.flush_count == flushes

    def test_groups_do_not_nest(self, db):
        from repro.errors import TransactionError

        with db.group_commit():
            with pytest.raises(TransactionError):
                with db.group_commit():
                    pass

    def test_group_reusable_after_close(self, db):
        with db.group_commit():
            with db.transaction():
                db.create("Thing", {"name": "a"})
        with db.group_commit():
            with db.transaction():
                db.create("Thing", {"name": "b"})
        assert db.flush_count == 2

    def test_aborted_transactions_do_not_count(self, db):
        flushes = db.flush_count
        with db.group_commit():
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.create("Thing", {"name": "x"})
                    raise RuntimeError("abort")
        assert db.flush_count == flushes  # nothing committed, no flush
        assert db.coalesced_commits == 0

    def test_flush_cost_charged_once_per_group(self, clock, simple_schema):
        from repro.clock import CostModel
        from repro.oms.database import OMSDatabase

        clock = type(clock)(CostModel(commit_flush_ms=3.0))
        db = OMSDatabase(simple_schema, clock=clock)
        with db.group_commit():
            for i in range(4):
                with db.transaction():
                    db.create("Thing", {"name": f"t{i}"})
        assert clock.elapsed_by_category()["commit_flush"] == 3.0

    def test_closed_group_refuses_commits(self):
        from repro.errors import TransactionError
        from repro.oms.transactions import GroupCommit

        group = GroupCommit("commitgroup:000001")
        group.note_commit()
        assert group.close() == 1
        with pytest.raises(TransactionError):
            group.note_commit()
