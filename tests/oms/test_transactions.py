"""Unit tests for the transaction object itself."""

import pytest

from repro.errors import TransactionError
from repro.oms.transactions import Transaction


class TestTransaction:
    def test_initial_state_active(self):
        assert Transaction("t1").state == "active"

    def test_commit_clears_journal(self):
        txn = Transaction("t1")
        txn.record_undo(lambda: None)
        txn.commit()
        assert txn.state == "committed"
        assert txn.journal_length == 0

    def test_abort_runs_undos_in_reverse(self):
        order = []
        txn = Transaction("t1")
        txn.record_undo(lambda: order.append("first"))
        txn.record_undo(lambda: order.append("second"))
        txn.abort()
        assert order == ["second", "first"]
        assert txn.state == "aborted"

    def test_record_after_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.record_undo(lambda: None)

    def test_double_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_after_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.abort()
