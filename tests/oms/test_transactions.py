"""Unit tests for the transaction object itself."""

import pytest

from repro.errors import TransactionError
from repro.oms.transactions import Transaction


class TestTransaction:
    def test_initial_state_active(self):
        assert Transaction("t1").state == "active"

    def test_commit_clears_journal(self):
        txn = Transaction("t1")
        txn.record_undo(lambda: None)
        txn.commit()
        assert txn.state == "committed"
        assert txn.journal_length == 0

    def test_abort_runs_undos_in_reverse(self):
        order = []
        txn = Transaction("t1")
        txn.record_undo(lambda: order.append("first"))
        txn.record_undo(lambda: order.append("second"))
        txn.abort()
        assert order == ["second", "first"]
        assert txn.state == "aborted"

    def test_record_after_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.record_undo(lambda: None)

    def test_double_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_after_commit_raises(self):
        txn = Transaction("t1")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.abort()


class TestAbortWithFailingUndos:
    def test_abort_runs_all_undos_despite_failure(self):
        """A raising undo must not stop the rollback mid-journal."""
        ran = []
        txn = Transaction("t1")
        txn.record_undo(lambda: ran.append("first"))
        txn.record_undo(lambda: (_ for _ in ()).throw(ValueError("bad undo")))
        txn.record_undo(lambda: ran.append("last"))
        with pytest.raises(TransactionError):
            txn.abort()
        assert ran == ["last", "first"]

    def test_abort_with_failure_still_ends_aborted(self):
        txn = Transaction("t1")
        txn.record_undo(lambda: (_ for _ in ()).throw(ValueError("bad")))
        with pytest.raises(TransactionError):
            txn.abort()
        assert txn.state == "aborted"
        assert txn.journal_length == 0

    def test_transaction_error_chains_first_failure(self):
        first = ValueError("first failure")
        second = KeyError("second failure")
        txn = Transaction("t1")
        # journal replays most-recent-first, so record in reverse
        txn.record_undo(lambda: (_ for _ in ()).throw(first))
        txn.record_undo(lambda: (_ for _ in ()).throw(second))
        with pytest.raises(TransactionError) as excinfo:
            txn.abort()
        assert excinfo.value.__cause__ is second
        assert "2 undo step(s)" in str(excinfo.value)

    def test_double_abort_after_failed_abort_raises(self):
        txn = Transaction("t1")
        txn.record_undo(lambda: (_ for _ in ()).throw(ValueError()))
        with pytest.raises(TransactionError):
            txn.abort()
        with pytest.raises(TransactionError):
            txn.abort()
