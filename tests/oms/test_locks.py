"""The OMS lock manager: RWLock semantics and ordered acquisition."""

from __future__ import annotations

import threading

import pytest

from repro.errors import LockContentionError
from repro.oms.locks import Acquisition, LockManager, RWLock


class TestRWLock:
    def test_read_is_shared(self):
        lock = RWLock("k")
        lock.acquire_read()
        lock.acquire_read()  # a second reader enters freely
        lock.release_read()
        lock.release_read()

    def test_write_excludes_write_nonblocking(self):
        lock = RWLock("k")
        lock.acquire_write()
        with pytest.raises(LockContentionError):
            lock.acquire_write(blocking=False)
        lock.release_write()

    def test_write_excludes_read_nonblocking(self):
        lock = RWLock("k")
        lock.acquire_write()
        with pytest.raises(LockContentionError):
            lock.acquire_read(blocking=False)
        lock.release_write()

    def test_read_excludes_write_nonblocking(self):
        lock = RWLock("k")
        lock.acquire_read()
        with pytest.raises(LockContentionError):
            lock.acquire_write(blocking=False)
        lock.release_read()

    def test_reentrant_read(self):
        lock = RWLock("k")
        lock.acquire_read()
        lock.acquire_read()  # same thread, counted
        lock.release_read()
        lock.release_read()

    def test_read_while_holding_write_refused(self):
        # mode changes by the holder are refused, never deadlocked
        lock = RWLock("k")
        lock.acquire_write()
        with pytest.raises(LockContentionError):
            lock.acquire_read()
        lock.release_write()

    def test_upgrade_refused(self):
        # read -> write upgrade deadlocks classically; refused instead
        lock = RWLock("k")
        lock.acquire_read()
        with pytest.raises(LockContentionError):
            lock.acquire_write()
        lock.release_read()

    def test_write_blocks_other_thread_until_release(self):
        lock = RWLock("k")
        lock.acquire_write()
        entered = threading.Event()

        def reader():
            lock.acquire_read()
            entered.set()
            lock.release_read()

        thread = threading.Thread(target=reader)
        thread.start()
        assert not entered.wait(0.05)
        lock.release_write()
        assert entered.wait(2.0)
        thread.join()

    def test_timeout_raises(self):
        lock = RWLock("k")
        lock.acquire_write()
        with pytest.raises(LockContentionError):
            lock.acquire_read(timeout=0.01)
        lock.release_write()

    def test_release_without_hold_raises(self):
        lock = RWLock("k")
        with pytest.raises(LockContentionError):
            lock.release_read()
        with pytest.raises(LockContentionError):
            lock.release_write()


class TestLockManager:
    def test_acquire_and_release(self):
        manager = LockManager()
        acq = manager.acquire(read=("a",), write=("b",))
        assert isinstance(acq, Acquisition)
        acq.release()
        # all free again
        acq2 = manager.acquire(write=("a", "b"))
        acq2.release()

    def test_acquiring_context(self):
        manager = LockManager()
        with manager.acquiring(write=("k",)):
            with pytest.raises(LockContentionError):
                manager.acquire(write=("k",), blocking=False)
        manager.acquire(write=("k",), blocking=False).release()

    def test_write_supersedes_read(self):
        manager = LockManager()
        with manager.acquiring(read=("k",), write=("k",)):
            # held as write, so even a read from elsewhere is refused
            with pytest.raises(LockContentionError):
                manager.acquire(read=("k",), blocking=False)

    def test_global_order_is_sort_key(self):
        manager = LockManager()
        acq = manager.acquire(
            write=("cell/lib/b", "cell/lib/a", "cell/lib/c")
        )
        keys = [key for key, _mode in acq.keys]
        assert keys == sorted(keys)
        acq.release()

    def test_partial_failure_releases_grants(self):
        manager = LockManager()
        with manager.acquiring(write=("b",)):
            with pytest.raises(LockContentionError):
                manager.acquire(write=("a", "b"), blocking=False)
            # "a" was granted then rolled back: it must be free now
            manager.acquire(write=("a",), blocking=False).release()

    def test_counters(self):
        manager = LockManager()
        with manager.acquiring(write=("k",)):
            try:
                manager.acquire(write=("k",), blocking=False)
            except LockContentionError:
                pass
        stats = manager.stats()
        assert stats["contentions"] == 1
        assert stats["acquisitions"] >= 1

    def test_concurrent_writers_serialise(self):
        manager = LockManager()
        counter = {"value": 0, "max_inside": 0}
        guard = threading.Lock()

        def bump():
            for _ in range(50):
                with manager.acquiring(write=("shared",)):
                    with guard:
                        counter["value"] += 1
                        counter["max_inside"] = max(
                            counter["max_inside"], 1
                        )

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 200
