"""Unit tests for OMSObject behaviour."""

import pytest

from repro.errors import SchemaError
from repro.oms.objects import OMSObject
from repro.oms.schema import AttributeDef, EntityType


@pytest.fixture
def entity():
    return EntityType(
        "Thing",
        (
            AttributeDef("name", "str", required=True),
            AttributeDef("size", "int", default=0),
        ),
    )


class TestAttributes:
    def test_get_known_attribute(self, entity):
        obj = OMSObject("t:1", entity, {"name": "x", "size": 3})
        assert obj.get("name") == "x"
        assert obj.get("size") == 3

    def test_get_unknown_attribute_raises(self, entity):
        obj = OMSObject("t:1", entity, {"name": "x"})
        with pytest.raises(SchemaError):
            obj.get("colour")

    def test_values_returns_copy(self, entity):
        obj = OMSObject("t:1", entity, {"name": "x"})
        values = obj.values()
        values["name"] = "mutated"
        assert obj.get("name") == "x"

    def test_internal_set_validates(self, entity):
        obj = OMSObject("t:1", entity, {"name": "x"})
        with pytest.raises(Exception):
            obj._set("size", "not an int")

    def test_internal_set_returns_previous(self, entity):
        obj = OMSObject("t:1", entity, {"name": "x", "size": 1})
        previous = obj._set("size", 2)
        assert previous == 1
        assert obj.get("size") == 2

    def test_required_cannot_be_cleared(self, entity):
        obj = OMSObject("t:1", entity, {"name": "x"})
        with pytest.raises(SchemaError):
            obj._set("name", None)


class TestPayload:
    def test_payload_size(self, entity):
        obj = OMSObject("t:1", entity, {"name": "x"}, payload=b"12345")
        assert obj.payload_size == 5

    def test_no_payload_size_zero(self, entity):
        obj = OMSObject("t:1", entity, {"name": "x"})
        assert obj.payload_size == 0

    def test_type_name(self, entity):
        assert OMSObject("t:1", entity, {"name": "x"}).type_name == "Thing"
