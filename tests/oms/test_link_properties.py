"""Property tests: the indexed link store behaves exactly like a naive
flat pair-set model under random link/unlink/delete/rollback interleavings,
and an aborted transaction restores the database bit-for-bit.
"""

from typing import Dict, List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids import sort_key
from repro.oms.database import OMSDatabase
from repro.oms.schema import AttributeDef, Schema
from repro.oms.snapshot import dump_snapshot

RELATIONS = ("edge", "owns")  # M:N and 1:N — both cardinality code paths


class _Rollback(Exception):
    """Raised inside a transaction block to force an abort."""


def _fresh_db() -> OMSDatabase:
    schema = Schema("prop")
    schema.define_entity(
        "Node", [AttributeDef("name", "str", required=True)]
    )
    schema.define_relationship("edge", "Node", "Node", "M:N")
    schema.define_relationship("owns", "Node", "Node", "1:N")
    return OMSDatabase(schema)


Model = Dict[str, Set[Tuple[str, str]]]


def _naive_targets(model: Model, rel: str, src: str) -> List[str]:
    return sorted(
        (d for s, d in model[rel] if s == src), key=sort_key
    )


def _naive_sources(model: Model, rel: str, dst: str) -> List[str]:
    return sorted(
        (s for s, d in model[rel] if d == dst), key=sort_key
    )


def _link_allowed(model: Model, rel: str, src: str, dst: str) -> bool:
    """Naive-model cardinality prediction (owns is 1:N)."""
    if rel != "owns":
        return True
    return not any(d == dst and s != src for s, d in model[rel])


def _apply_op(db, model: Model, live: List[str], op: str, data) -> None:
    """Apply one mutation to both the database and the naive model.

    Ops are pre-validated against the model so they never raise — a
    raising op inside a transaction block would abort the whole block.
    """
    if op == "create" or not live:
        live.append(db.create("Node", {"name": "n"}).oid)
    elif op == "link":
        src = data.draw(st.sampled_from(live))
        dst = data.draw(st.sampled_from(live))
        rel = data.draw(st.sampled_from(RELATIONS))
        if _link_allowed(model, rel, src, dst):
            db.link(rel, src, dst)
            model[rel].add((src, dst))
    elif op == "unlink":
        candidates = [
            (rel, pair) for rel in RELATIONS for pair in sorted(model[rel])
        ]
        if not candidates:
            return
        rel, pair = data.draw(st.sampled_from(candidates))
        db.unlink(rel, *pair)
        model[rel].discard(pair)
    elif op == "delete":
        victim = data.draw(st.sampled_from(live))
        live.remove(victim)
        db.delete(victim)
        for rel in RELATIONS:
            model[rel] = {
                pair for pair in model[rel] if victim not in pair
            }
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unknown op {op!r}")


def _assert_equivalent(db, model: Model, live: List[str]) -> None:
    for rel in RELATIONS:
        assert db.link_pairs(rel) == model[rel]
        for oid in live:
            assert db.target_oids(rel, oid) == _naive_targets(
                model, rel, oid
            )
            assert db.source_oids(rel, oid) == _naive_sources(
                model, rel, oid
            )
            assert db.out_degree(rel, oid) == len(
                _naive_targets(model, rel, oid)
            )
            assert db.in_degree(rel, oid) == len(
                _naive_sources(model, rel, oid)
            )
    assert db._link_index.check_integrity() == []


OPS = ["create", "link", "link", "unlink", "delete"]


class TestIndexedEqualsNaive:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_interleavings(self, data):
        """Indexed queries ≡ naive scans after any op/rollback sequence."""
        db = _fresh_db()
        model: Model = {rel: set() for rel in RELATIONS}
        live: List[str] = []
        for _ in range(data.draw(st.integers(3, 25))):
            action = data.draw(
                st.sampled_from(OPS + ["txn_abort", "txn_commit"])
            )
            if action in ("txn_abort", "txn_commit"):
                saved_model = {rel: set(model[rel]) for rel in RELATIONS}
                saved_live = list(live)
                try:
                    with db.transaction():
                        for _ in range(data.draw(st.integers(1, 6))):
                            _apply_op(
                                db, model, live,
                                data.draw(st.sampled_from(OPS)), data,
                            )
                        if action == "txn_abort":
                            raise _Rollback()
                except _Rollback:
                    # rolled back: the naive model rewinds too
                    for rel in RELATIONS:
                        model[rel] = saved_model[rel]
                    live[:] = saved_live
            else:
                _apply_op(db, model, live, action, data)
            _assert_equivalent(db, model, live)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_cardinality_rejections_match_naive_prediction(self, data):
        """db.link raises exactly when the naive 1:N scan predicts it."""
        from repro.errors import RelationshipError

        db = _fresh_db()
        model: Model = {rel: set() for rel in RELATIONS}
        live = [db.create("Node", {"name": "n"}).oid for _ in range(4)]
        for _ in range(data.draw(st.integers(1, 25))):
            src = data.draw(st.sampled_from(live))
            dst = data.draw(st.sampled_from(live))
            allowed = _link_allowed(model, "owns", src, dst)
            try:
                db.link("owns", src, dst)
                raised = False
            except RelationshipError:
                raised = True
            assert raised == (not allowed)
            if not raised:
                model["owns"].add((src, dst))
        assert db.link_pairs("owns") == model["owns"]


class TestAbortedTransactionIsBitIdentical:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_rollback_restores_pre_transaction_snapshot(self, data):
        """Random link/unlink/delete/set_attr inside an aborted transaction
        leave objects, links and indexes bit-identical to the snapshot."""
        db = _fresh_db()
        model: Model = {rel: set() for rel in RELATIONS}
        live: List[str] = []
        # seed phase: build an arbitrary committed state
        for _ in range(data.draw(st.integers(1, 12))):
            _apply_op(
                db, model, live, data.draw(st.sampled_from(OPS)), data
            )
        before = dump_snapshot(db)
        try:
            with db.transaction():
                for _ in range(data.draw(st.integers(1, 10))):
                    op = data.draw(
                        st.sampled_from(OPS + ["set_attr", "payload"])
                    )
                    if op == "set_attr":
                        if live:
                            db.set_attr(
                                data.draw(st.sampled_from(live)),
                                "name",
                                data.draw(st.sampled_from(["x", "y", "z"])),
                            )
                    elif op == "payload":
                        if live:
                            db.set_payload(
                                data.draw(st.sampled_from(live)), b"scratch"
                            )
                    else:
                        _apply_op(db, model, live, op, data)
                raise _Rollback()
        except _Rollback:
            pass
        assert dump_snapshot(db) == before
        assert db._link_index.check_integrity() == []
