"""Unit tests for the OMS write-ahead log (append, recover, checkpoint)."""

import json

import pytest

from repro.errors import WALError, WALIntegrityError
from repro.faults import FaultPlan, inject
from repro.oms.database import OMSDatabase
from repro.oms.snapshot import dump_snapshot
from repro.oms.wal import (
    LOG_NAME,
    WALRecoveryInfo,
    WriteAheadLog,
)


def open_wal(schema, root):
    """Recover (or bootstrap) a database from a WAL directory."""
    wal = WriteAheadLog(root)
    db, info = wal.recover(schema)
    db.attach_wal(wal)
    return wal, db, info


def reopened_dump(schema, root):
    """State a fresh process would reconstruct from the WAL directory."""
    _, db, _ = open_wal(schema, root)
    return dump_snapshot(db)


class TestAppend:
    def test_fresh_directory_recovers_empty(self, simple_schema, tmp_path):
        wal, db, info = open_wal(simple_schema, tmp_path / "wal")
        assert info.fresh
        assert info.base == "none"
        assert db.stats()["objects"] == 0

    def test_commits_survive_reopen(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        thing = db.create("Thing", {"name": "t"}, payload=b"bytes")
        box = db.create("Box", {"label": "b"})
        db.link("contains", box.oid, thing.oid)
        db.set_attr(thing.oid, "size", 7)
        assert reopened_dump(simple_schema, root) == dump_snapshot(db)

    def test_delete_and_unlink_replay(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        a = db.create("Thing", {"name": "a"}, payload=b"pa")
        b = db.create("Thing", {"name": "b"})
        db.link("linked", a.oid, b.oid)
        db.unlink("linked", a.oid, b.oid)
        db.delete(a.oid)
        assert reopened_dump(simple_schema, root) == dump_snapshot(db)

    def test_aborted_transaction_logs_nothing(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        before = wal.stats()["records_appended"]
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.create("Thing", {"name": "doomed"})
                raise RuntimeError("abort")
        assert wal.stats()["records_appended"] == before
        assert reopened_dump(simple_schema, root) == dump_snapshot(db)

    def test_transaction_commits_as_one_record(self, simple_schema, tmp_path):
        wal, db, _ = open_wal(simple_schema, tmp_path / "wal")
        before = wal.stats()["records_appended"]
        with db.transaction():
            db.create("Thing", {"name": "x"})
            db.create("Thing", {"name": "y"})
        assert wal.stats()["records_appended"] == before + 1

    def test_group_commit_batches_one_record(self, simple_schema, tmp_path):
        wal, db, _ = open_wal(simple_schema, tmp_path / "wal")
        before = wal.stats()["records_appended"]
        with db.group_commit():
            db.create("Thing", {"name": "x"})
            db.create("Thing", {"name": "y"})
            db.create("Thing", {"name": "z"})
        assert wal.stats()["records_appended"] == before + 1

    def test_identical_payloads_write_one_sidecar(
        self, simple_schema, tmp_path
    ):
        wal, db, _ = open_wal(simple_schema, tmp_path / "wal")
        db.create("Thing", {"name": "a"}, payload=b"same-bytes")
        db.create("Thing", {"name": "b"}, payload=b"same-bytes")
        stats = wal.stats()
        assert stats["blob_writes"] == 1
        assert stats["blob_dedup_hits"] == 1

    def test_empty_ops_commit_is_a_noop(self, simple_schema, tmp_path):
        wal, _, _ = open_wal(simple_schema, tmp_path / "wal")
        assert wal.commit([]) is None


class TestCheckpoint:
    def test_checkpoint_truncates_log_and_blobs(
        self, simple_schema, tmp_path
    ):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"}, payload=b"payload")
        assert wal.log_size() > 0
        wal.checkpoint(db)
        assert not wal.log_path.exists()
        assert not wal.prev_log_path.exists()
        assert not wal.prev_checkpoint_path.exists()
        assert list(wal.blob_dir.iterdir()) == []
        _, db2, info = open_wal(simple_schema, root)
        assert info.base == "checkpoint"
        assert dump_snapshot(db2) == dump_snapshot(db)

    def test_commits_after_checkpoint_replay_on_top(
        self, simple_schema, tmp_path
    ):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"})
        wal.checkpoint(db)
        db.create("Thing", {"name": "b"}, payload=b"later")
        _, db2, info = open_wal(simple_schema, root)
        assert info.base == "checkpoint"
        assert info.records_applied == 1
        assert dump_snapshot(db2) == dump_snapshot(db)

    def test_delete_then_reintern_after_checkpoint(
        self, simple_schema, tmp_path
    ):
        # the digest is durable only inside the checkpoint after GC; a
        # replayed delete must not strand the later re-create of the
        # same bytes (the payload-cache pinning path)
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        a = db.create("Thing", {"name": "a"}, payload=b"shared")
        wal.checkpoint(db)
        db.delete(a.oid)
        db.create("Thing", {"name": "b"}, payload=b"shared")
        _, db2, _ = open_wal(simple_schema, root)
        assert dump_snapshot(db2) == dump_snapshot(db)

    def test_double_replay_is_a_fixpoint(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        a = db.create("Thing", {"name": "a"}, payload=b"pa")
        db.set_payload(a.oid, b"pb")
        db.delete(a.oid)
        db.create("Thing", {"name": "c"}, payload=b"pa")
        first = reopened_dump(simple_schema, root)
        second = reopened_dump(simple_schema, root)
        assert first == second == dump_snapshot(db)

    def test_replay_into_attached_database_refused(
        self, simple_schema, tmp_path
    ):
        wal, db, _ = open_wal(simple_schema, tmp_path / "wal")
        with pytest.raises(WALError):
            wal.replay_into(db, [])


class TestDamage:
    def test_torn_tail_is_dropped(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"})
        db.create("Thing", {"name": "b"})
        expected = dump_snapshot(db)
        with open(root / LOG_NAME, "ab") as handle:
            handle.write(b'{"format": "repro-oms-wal-1", "lsn": 99, "tr')
        wal2 = WriteAheadLog(root)
        assert any(kind == "torn-tail" for _, kind in wal2.verify())
        db2, info = wal2.recover(simple_schema)
        assert info.torn_records_dropped == 1
        assert dump_snapshot(db2) == expected
        # the repair is durable: a third open sees a clean log
        assert WriteAheadLog(root).verify() == []

    def test_repair_truncates_torn_tail(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"})
        with open(root / LOG_NAME, "ab") as handle:
            handle.write(b"garbage-no-newline")
        wal2 = WriteAheadLog(root)
        notes = wal2.repair()
        assert notes and "torn tail" in notes[0]
        assert wal2.verify() == []
        assert wal2.repair() == []

    def test_mid_file_damage_raises(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"})
        db.create("Thing", {"name": "b"})
        lines = (root / LOG_NAME).read_bytes().splitlines(keepends=True)
        assert len(lines) == 2
        (root / LOG_NAME).write_bytes(b"damaged-line\n" + lines[1])
        with pytest.raises(WALIntegrityError):
            WriteAheadLog(root).recover(simple_schema)

    def test_damaged_checkpoint_falls_back_to_prev(
        self, simple_schema, tmp_path
    ):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"})
        wal.checkpoint(db)
        expected = dump_snapshot(db)
        db.create("Thing", {"name": "b"})
        wal.checkpoint(db)
        # fabricate the crash window where the freshly published current
        # checkpoint is damaged but its retained predecessor survives
        wal.checkpoint_path.write_bytes(b'{"broken": true}')
        wal.prev_checkpoint_path.write_bytes(expected)
        db2, info = WriteAheadLog(root).recover(simple_schema)
        assert info.base == "previous-checkpoint"
        assert dump_snapshot(db2) == expected

    def test_all_checkpoints_damaged_raises(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"})
        wal.checkpoint(db)
        wal.checkpoint_path.write_bytes(b"not json at all")
        with pytest.raises(WALIntegrityError):
            WriteAheadLog(root).recover(simple_schema)

    def test_corrupted_record_is_detected_as_torn_tail(
        self, simple_schema, tmp_path
    ):
        # a corruption rule damages the encoded record in flight; the
        # checksum catches it at recovery as a (droppable) damaged tail
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"})
        expected = dump_snapshot(db)
        with inject(FaultPlan.corrupt("wal.record", mode="flip")):
            db.create("Thing", {"name": "b"})
        db2, info = WriteAheadLog(root).recover(simple_schema)
        assert info.torn_records_dropped == 1
        # the corrupted commit is lost whole; earlier state survives
        assert dump_snapshot(db2) == expected

    def test_lsn_order_is_enforced(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"})
        line = (root / LOG_NAME).read_bytes()
        # duplicate the record: same lsn twice is a rewound/mixed log
        (root / LOG_NAME).write_bytes(line + line)
        with pytest.raises(WALIntegrityError):
            WriteAheadLog(root).recover(simple_schema)

    def test_damaged_blob_sidecar_reported(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"}, payload=b"rot-me")
        sidecar = next(p for p in wal.blob_dir.iterdir() if p.is_file())
        sidecar.write_bytes(b"rotted")
        findings = WriteAheadLog(root).verify()
        assert any(kind == "bit-rot" for _, kind in findings)


class TestSurface:
    def test_present_at(self, simple_schema, tmp_path):
        root = tmp_path / "wal"
        assert not WriteAheadLog.present_at(root)
        wal, db, _ = open_wal(simple_schema, root)
        assert not WriteAheadLog.present_at(root)  # nothing committed yet
        db.create("Thing", {"name": "a"})
        assert WriteAheadLog.present_at(root)

    def test_stats_and_summary(self, simple_schema, tmp_path):
        wal, db, info = open_wal(simple_schema, tmp_path / "wal")
        db.create("Thing", {"name": "a"}, payload=b"x")
        stats = wal.stats()
        assert stats["records_appended"] == 1
        assert stats["lsn"] == 1
        assert stats["log_size"] > 0
        assert "base=none" in info.summary()
        assert WALRecoveryInfo(base="checkpoint").fresh is False

    def test_records_are_checksummed_json_lines(
        self, simple_schema, tmp_path
    ):
        root = tmp_path / "wal"
        wal, db, _ = open_wal(simple_schema, root)
        db.create("Thing", {"name": "a"}, payload=b"x")
        record = json.loads((root / LOG_NAME).read_text().splitlines()[0])
        assert record["format"] == "repro-oms-wal-1"
        assert record["lsn"] == 1
        assert "sha256" in record
        # payload bytes never ride in the record itself
        assert all("payload" not in op for op in record["ops"])
        assert record["ops"][0]["payload_digest"]
