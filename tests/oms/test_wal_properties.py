"""Property tests: WAL replay reconstructs the exact database state.

The central equivalence the tentpole rests on: for any sequence of
committed mutations, ``recover(wal directory)`` yields a database whose
``dump_snapshot`` is byte-identical to the live one — with or without an
interleaved checkpoint — and replay is a fixpoint (recovering twice
yields the same bytes as recovering once).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oms.database import OMSDatabase
from repro.oms.schema import AttributeDef, Schema
from repro.oms.snapshot import dump_snapshot
from repro.oms.wal import WriteAheadLog


def _schema() -> Schema:
    schema = Schema("walprop")
    schema.define_entity(
        "Node",
        [
            AttributeDef("name", "str", required=True),
            AttributeDef("size", "int", default=0),
        ],
    )
    schema.define_relationship("edge", "Node", "Node", "M:N")
    return schema


@dataclasses.dataclass
class Op:
    kind: str
    arg: int = 0
    payload: bytes = b""


#: a small payload alphabet maximises digest collisions, which is what
#: exercises sidecar dedup and the delete/re-intern pinning path
_PAYLOADS = st.sampled_from([b"", b"aa", b"bb", b"shared", b"x" * 64])

_OPS = st.lists(
    st.one_of(
        st.builds(Op, kind=st.just("create"), payload=_PAYLOADS),
        st.builds(Op, kind=st.just("create_plain")),
        st.builds(
            Op, kind=st.just("set_payload"), arg=st.integers(0, 7),
            payload=_PAYLOADS,
        ),
        st.builds(
            Op, kind=st.just("set_attr"), arg=st.integers(0, 7),
        ),
        st.builds(Op, kind=st.just("delete"), arg=st.integers(0, 7)),
        st.builds(
            Op, kind=st.just("link"), arg=st.integers(0, 48),
        ),
        st.builds(
            Op, kind=st.just("unlink"), arg=st.integers(0, 48),
        ),
        st.builds(Op, kind=st.just("txn"), arg=st.integers(0, 3)),
        st.builds(Op, kind=st.just("checkpoint")),
    ),
    min_size=1,
    max_size=24,
)


def _apply(db, live, counter, op) -> None:
    """Apply one mutation through the public (WAL-logged) primitives."""
    if op.kind in ("create", "create_plain"):
        payload = op.payload if op.kind == "create" else None
        obj = db.create(
            "Node", {"name": f"n{counter[0]}"}, payload=payload
        )
        counter[0] += 1
        live.append(obj.oid)
    elif not live:
        return
    elif op.kind == "set_payload":
        db.set_payload(live[op.arg % len(live)], op.payload)
    elif op.kind == "set_attr":
        db.set_attr(live[op.arg % len(live)], "size", op.arg)
    elif op.kind == "delete":
        oid = live.pop(op.arg % len(live))
        db.delete(oid)
    elif op.kind == "link":
        src = live[op.arg % len(live)]
        dst = live[(op.arg // 7) % len(live)]
        if not db.linked("edge", src, dst):
            db.link("edge", src, dst)
    elif op.kind == "unlink":
        src = live[op.arg % len(live)]
        dst = live[(op.arg // 7) % len(live)]
        if db.linked("edge", src, dst):
            db.unlink("edge", src, dst)
    elif op.kind == "txn":
        with db.transaction():
            for i in range(op.arg + 1):
                obj = db.create("Node", {"name": f"t{counter[0]}"},
                                payload=b"txn")
                counter[0] += 1
                live.append(obj.oid)


class TestReplayEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(ops=_OPS)
    def test_recover_equals_live_state(self, tmp_path_factory, ops):
        root = tmp_path_factory.mktemp("walprop") / "wal"
        schema = _schema()
        wal = WriteAheadLog(root)
        db, _ = wal.recover(schema)
        db.attach_wal(wal)
        live, counter = [], [0]
        for op in ops:
            if op.kind == "checkpoint":
                wal.checkpoint(db)
            else:
                _apply(db, live, counter, op)
        expected = dump_snapshot(db)

        recovered, _ = WriteAheadLog(root).recover(schema)
        assert dump_snapshot(recovered) == expected

        # the fixpoint: recovery is repeatable (nothing it wrote back —
        # truncations, completed renames — changes the answer)
        again, _ = WriteAheadLog(root).recover(schema)
        assert dump_snapshot(again) == expected

    @settings(max_examples=15, deadline=None)
    @given(ops=_OPS)
    def test_wal_mode_equals_snapshot_of_same_ops(
        self, tmp_path_factory, ops
    ):
        """A WAL-backed database diverges in no observable way."""
        root = tmp_path_factory.mktemp("walpair") / "wal"
        schema = _schema()
        wal = WriteAheadLog(root)
        walled, _ = wal.recover(schema)
        walled.attach_wal(wal)
        plain = OMSDatabase(_schema())
        for target in (walled, plain):
            live, counter = [], [0]
            for op in ops:
                if op.kind == "checkpoint":
                    continue
                _apply(target, live, counter, op)
        assert dump_snapshot(walled) == dump_snapshot(plain)
