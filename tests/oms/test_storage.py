"""Unit tests for the OMS file-system staging area (Section 2.1 copies)."""

import pytest

from repro.errors import OMSError
from repro.oms.storage import StagingArea


@pytest.fixture
def staging(db, tmp_path):
    return StagingArea(db, tmp_path / "staging")


class TestExport:
    def test_export_writes_real_file(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"design data")
        staged = staging.export_object(obj.oid)
        assert staged.path.read_bytes() == b"design data"
        assert staged.size == len(b"design data")

    def test_export_charges_copy_cost(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"d" * 1000)
        before = db.clock.elapsed_by_category().get("copy", 0.0)
        staging.export_object(obj.oid)
        after = db.clock.elapsed_by_category()["copy"]
        assert after > before

    def test_export_empty_payload_ok(self, db, staging):
        obj = db.create("Thing", {"name": "x"})
        staged = staging.export_object(obj.oid)
        assert staged.size == 0

    def test_export_custom_filename(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"d")
        staged = staging.export_object(obj.oid, filename="work.dat")
        assert staged.path.name == "work.dat"


class TestImport:
    def test_import_reads_back_edited_file(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"v1")
        staged = staging.export_object(obj.oid)
        staged.path.write_bytes(b"v2 edited by the tool")
        size = staging.import_object(obj.oid)
        assert size == len(b"v2 edited by the tool")
        assert db.get(obj.oid).payload == b"v2 edited by the tool"

    def test_import_without_export_needs_path(self, db, staging):
        obj = db.create("Thing", {"name": "x"})
        with pytest.raises(OMSError):
            staging.import_object(obj.oid)

    def test_import_explicit_path(self, db, staging, tmp_path):
        obj = db.create("Thing", {"name": "x"})
        external = tmp_path / "ext.dat"
        external.write_bytes(b"external")
        staging.import_object(obj.oid, external)
        assert db.get(obj.oid).payload == b"external"

    def test_import_missing_file_raises(self, db, staging, tmp_path):
        obj = db.create("Thing", {"name": "x"})
        with pytest.raises(OMSError):
            staging.import_object(obj.oid, tmp_path / "ghost.dat")


class TestCopyOnWrite:
    def test_reexport_unchanged_is_metadata_only(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"d" * 10_000)
        staging.export_object(obj.oid)
        copied = db.clock.elapsed_by_category()["copy"]
        staging.export_object(obj.oid)  # file already valid on disk
        acc = staging.accounting()
        assert acc["export_hits"] == 1
        assert acc["bytes_exported"] == 10_000  # only the first copy
        assert db.clock.elapsed_by_category()["copy"] == copied

    def test_reexport_after_tool_clobbered_file_recopies(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"good data")
        staged = staging.export_object(obj.oid)
        staged.path.write_bytes(b"scribbled")
        staged = staging.export_object(obj.oid)
        assert staged.path.read_bytes() == b"good data"
        assert staging.accounting()["export_hits"] == 0

    def test_import_unchanged_skips_db_write(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"stable")
        staging.export_object(obj.oid)
        staging.import_object(obj.oid)  # tool only read the file
        acc = staging.accounting()
        assert acc["import_hits"] == 1
        assert acc["bytes_imported"] == 0
        assert db.get(obj.oid).payload == b"stable"

    def test_naive_mode_always_copies(self, db, tmp_path):
        naive = StagingArea(db, tmp_path / "naive", copy_on_write=False)
        obj = db.create("Thing", {"name": "x"}, payload=b"12345")
        naive.export_object(obj.oid)
        naive.export_object(obj.oid)
        naive.import_object(obj.oid)
        acc = naive.accounting()
        assert acc["export_hits"] == 0 and acc["import_hits"] == 0
        assert acc["bytes_exported"] == 10
        assert acc["bytes_imported"] == 5

    def test_batch_export_charges_one_copy_for_misses(self, db, staging):
        oids = [
            db.create("Thing", {"name": str(i)}, payload=b"p%d" % i).oid
            for i in range(4)
        ]
        staged = staging.export_objects(oids)
        assert [s.oid for s in staged] == oids
        for s in staged:
            assert s.path.read_bytes() == db.get(s.oid).payload
        # a second batch is all hits: no new bytes, no new files
        before = staging.accounting()
        staging.export_objects(oids)
        after = staging.accounting()
        assert after["bytes_exported"] == before["bytes_exported"]
        assert after["files_exported"] == before["files_exported"]
        assert after["export_hits"] == before["export_hits"] + 4

    def test_batch_import_detects_changes(self, db, staging):
        oids = [
            db.create("Thing", {"name": str(i)}, payload=b"orig").oid
            for i in range(3)
        ]
        staged = staging.export_objects(oids)
        staged[1].path.write_bytes(b"edited")
        sizes = staging.import_objects(oids)
        assert sizes[oids[1]] == len(b"edited")
        assert db.get(oids[1]).payload == b"edited"
        assert db.get(oids[0]).payload == b"orig"
        acc = staging.accounting()
        assert acc["import_hits"] == 2
        assert acc["files_imported"] == 1


class TestCollisions:
    def test_export_filename_collision_raises(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"A")
        b = db.create("Thing", {"name": "b"}, payload=b"B")
        staging.export_object(a.oid, filename="shared.dat")
        with pytest.raises(OMSError):
            staging.export_object(b.oid, filename="shared.dat")
        # the original staged file is untouched
        assert staging._staged[a.oid].path.read_bytes() == b"A"

    def test_released_filename_can_be_reused(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"A")
        b = db.create("Thing", {"name": "b"}, payload=b"B")
        staging.export_object(a.oid, filename="shared.dat")
        staging.release(a.oid)
        staged = staging.export_object(b.oid, filename="shared.dat")
        assert staged.path.read_bytes() == b"B"

    def test_reexport_new_filename_releases_old_claim(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"A")
        b = db.create("Thing", {"name": "b"}, payload=b"B")
        staging.export_object(a.oid, filename="first.dat")
        staging.export_object(a.oid, filename="second.dat")
        # first.dat is no longer claimed by a, so b may take it
        staged = staging.export_object(b.oid, filename="first.dat")
        assert staged.path.read_bytes() == b"B"

    def test_import_into_other_oids_file_raises(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"A")
        b = db.create("Thing", {"name": "b"}, payload=b"B")
        staged = staging.export_object(a.oid)
        with pytest.raises(OMSError):
            staging.import_object(b.oid, staged.path)


class TestBookkeeping:
    def test_accounting_accumulates(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"12345")
        staging.export_object(obj.oid)
        staged = staging.staged()[0]
        staged.path.write_bytes(b"54321")  # the tool rewrote the data
        staging.import_object(obj.oid)
        acc = staging.accounting()
        assert acc["bytes_exported"] == 5
        assert acc["bytes_imported"] == 5
        assert acc["files_exported"] == 1
        assert acc["files_imported"] == 1

    def test_read_only_access_still_pays(self, db, staging):
        """Section 3.6: even read-only access copies the data out."""
        obj = db.create("Thing", {"name": "x"}, payload=b"z" * 10_000)
        staging.export_object(obj.oid)  # "just reading"
        assert staging.accounting()["bytes_exported"] == 10_000
        assert db.clock.elapsed_by_category()["copy"] > 0

    def test_release_removes_file(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"d")
        staged = staging.export_object(obj.oid)
        staging.release(obj.oid)
        assert not staged.path.exists()
        assert not staging.is_staged(obj.oid)

    def test_release_tolerates_already_unlinked_file(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"d")
        staged = staging.export_object(obj.oid)
        staged.path.unlink()  # a tidy tool removed its input itself
        staging.release(obj.oid)
        assert not staging.is_staged(obj.oid)
        # accounting is untouched by release either way
        assert staging.accounting()["files_exported"] == 1

    def test_clear_removes_everything(self, db, staging):
        for i in range(3):
            obj = db.create("Thing", {"name": str(i)}, payload=b"d")
            staging.export_object(obj.oid)
        staging.clear()
        assert staging.staged() == []

    def test_staged_listing_ordered(self, db, staging):
        oids = []
        for i in range(3):
            obj = db.create("Thing", {"name": str(i)}, payload=b"d")
            staging.export_object(obj.oid)
            oids.append(obj.oid)
        assert [s.oid for s in staging.staged()] == sorted(oids)


class TestAdoptExisting:
    """Restart semantics: staged files are a durable CoW cache."""

    def test_adopts_matching_file_as_free_export_hit(self, db, tmp_path):
        first = StagingArea(db, tmp_path / "staging")
        obj = db.create("Thing", {"name": "x"}, payload=b"design data")
        first.export_object(obj.oid)
        # a fresh process: records are gone, the file remains
        second = StagingArea(db, tmp_path / "staging")
        assert second.orphan_files() != []
        adopted = second.adopt_existing()
        assert len(adopted) == 1
        assert second.is_staged(obj.oid)
        assert second.orphan_files() == []
        # the next export is a digest hit, not a rewrite
        second.export_object(obj.oid)
        assert second.accounting()["export_hits"] == 1
        assert second.accounting()["bytes_exported"] == 0

    def test_stale_content_stays_orphaned(self, db, tmp_path):
        first = StagingArea(db, tmp_path / "staging")
        obj = db.create("Thing", {"name": "x"}, payload=b"old")
        staged = first.export_object(obj.oid)
        staged.path.write_bytes(b"edited but never imported")
        second = StagingArea(db, tmp_path / "staging")
        assert second.adopt_existing() == []
        assert second.orphan_files() == [staged.path]
        assert second.reclaim_orphans() == [staged.path]

    def test_unknown_file_stays_orphaned(self, db, tmp_path):
        area = StagingArea(db, tmp_path / "staging")
        stray = area.root / "Thing_999999"
        stray.write_bytes(b"whatever")
        (area.root / "notes.txt").write_bytes(b"not an oid at all")
        assert area.adopt_existing() == []
        assert len(area.orphan_files()) == 2


class TestHardLinkFastPath:
    """Zero-copy staging: read-only exports may share an inode."""

    def test_read_only_export_links_same_digest(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"shared bytes")
        b = db.create("Thing", {"name": "b"}, payload=b"shared bytes")
        first = staging.export_object(a.oid, writable=False)
        exported_after_first = staging.accounting()["bytes_exported"]
        second = staging.export_object(b.oid, writable=False)
        assert second.path.stat().st_nlink == 2
        assert second.path.stat().st_ino == first.path.stat().st_ino
        assert staging.accounting()["export_links"] == 1
        # the peer staged with zero byte copies
        assert staging.accounting()["bytes_exported"] == exported_after_first
        assert second.path.read_bytes() == b"shared bytes"

    def test_writable_export_never_links(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"shared bytes")
        b = db.create("Thing", {"name": "b"}, payload=b"shared bytes")
        first = staging.export_object(a.oid)
        second = staging.export_object(b.oid)
        assert first.path.stat().st_nlink == 1
        assert second.path.stat().st_nlink == 1
        assert staging.accounting()["export_links"] == 0

    def test_writable_reexport_breaks_the_alias(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"shared bytes")
        b = db.create("Thing", {"name": "b"}, payload=b"shared bytes")
        read_only = staging.export_object(a.oid, writable=False)
        staging.export_object(b.oid, writable=False)
        # a tool now wants b's copy for editing: it must get a private
        # inode, and editing it must not reach through to a's copy
        writable = staging.export_object(b.oid)
        assert writable.path.stat().st_nlink == 1
        writable.path.write_bytes(b"edited by the tool")
        assert read_only.path.read_bytes() == b"shared bytes"

    def test_batch_read_only_export_links_within_batch(self, db, staging):
        oids = [
            db.create("Thing", {"name": f"t{i}"}, payload=b"same").oid
            for i in range(3)
        ]
        staged = staging.export_objects(oids, writable=False)
        assert staged[0].path.stat().st_nlink == 3
        assert staging.accounting()["export_links"] == 2

    def test_released_file_leaves_the_digest_index(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"shared bytes")
        b = db.create("Thing", {"name": "b"}, payload=b"shared bytes")
        staging.export_object(a.oid, writable=False)
        staging.release(a.oid)
        second = staging.export_object(b.oid, writable=False)
        assert second.path.stat().st_nlink == 1
        assert staging.accounting()["export_links"] == 0

    def test_forgotten_file_is_never_a_link_source(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"shared bytes")
        b = db.create("Thing", {"name": "b"}, payload=b"shared bytes")
        forgotten = staging.export_object(a.oid, writable=False)
        staging.forget(a.oid)
        assert forgotten.path.exists()  # forget leaves disk alone
        second = staging.export_object(b.oid, writable=False)
        # linking to an untracked orphan would let reclaim_orphans rip
        # bytes out from under a live staged copy
        assert second.path.stat().st_nlink == 1
        assert staging.accounting()["export_links"] == 0

    def test_stale_digest_index_entry_is_dropped(self, db, staging):
        a = db.create("Thing", {"name": "a"}, payload=b"shared bytes")
        b = db.create("Thing", {"name": "b"}, payload=b"shared bytes")
        staged = staging.export_object(a.oid, writable=False)
        staged.path.write_bytes(b"mutated behind our back")
        second = staging.export_object(b.oid, writable=False)
        assert second.path.stat().st_nlink == 1
        assert second.path.read_bytes() == b"shared bytes"


class TestConcurrentRecordMutation:
    """Regression: every record mutator holds the staging lock.

    ``forget()`` used to pop its two dicts without the lock; interleaved
    with ``_record`` from a concurrently staging worker, the path claim
    could outlive the record it belonged to — a permanent phantom
    collision.  Hammer export/release/forget from several threads and
    then prove every path still stages cleanly.
    """

    def test_export_release_forget_race(self, db, staging):
        import threading

        oids = [
            db.create("Thing", {"name": f"r{i}"}, payload=b"racing").oid
            for i in range(4)
        ]
        errors = []

        def hammer(worker):
            try:
                for round_no in range(50):
                    oid = oids[(worker + round_no) % len(oids)]
                    try:
                        staging.export_object(oid, writable=False)
                    except OMSError:
                        pass  # lost a claim race to a sibling: fine
                    if worker % 2:
                        staging.forget(oid)
                    else:
                        staging.release(oid)
            except Exception as exc:  # noqa: BLE001 - collecting for assert
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert errors == []
        # no phantom claims: every oid stages again without collision
        for oid in oids:
            staging.forget(oid)
        staging.reclaim_orphans()
        for oid in oids:
            assert staging.export_object(oid).path.exists()
