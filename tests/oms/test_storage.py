"""Unit tests for the OMS file-system staging area (Section 2.1 copies)."""

import pytest

from repro.errors import OMSError
from repro.oms.storage import StagingArea


@pytest.fixture
def staging(db, tmp_path):
    return StagingArea(db, tmp_path / "staging")


class TestExport:
    def test_export_writes_real_file(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"design data")
        staged = staging.export_object(obj.oid)
        assert staged.path.read_bytes() == b"design data"
        assert staged.size == len(b"design data")

    def test_export_charges_copy_cost(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"d" * 1000)
        before = db.clock.elapsed_by_category().get("copy", 0.0)
        staging.export_object(obj.oid)
        after = db.clock.elapsed_by_category()["copy"]
        assert after > before

    def test_export_empty_payload_ok(self, db, staging):
        obj = db.create("Thing", {"name": "x"})
        staged = staging.export_object(obj.oid)
        assert staged.size == 0

    def test_export_custom_filename(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"d")
        staged = staging.export_object(obj.oid, filename="work.dat")
        assert staged.path.name == "work.dat"


class TestImport:
    def test_import_reads_back_edited_file(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"v1")
        staged = staging.export_object(obj.oid)
        staged.path.write_bytes(b"v2 edited by the tool")
        size = staging.import_object(obj.oid)
        assert size == len(b"v2 edited by the tool")
        assert db.get(obj.oid).payload == b"v2 edited by the tool"

    def test_import_without_export_needs_path(self, db, staging):
        obj = db.create("Thing", {"name": "x"})
        with pytest.raises(OMSError):
            staging.import_object(obj.oid)

    def test_import_explicit_path(self, db, staging, tmp_path):
        obj = db.create("Thing", {"name": "x"})
        external = tmp_path / "ext.dat"
        external.write_bytes(b"external")
        staging.import_object(obj.oid, external)
        assert db.get(obj.oid).payload == b"external"

    def test_import_missing_file_raises(self, db, staging, tmp_path):
        obj = db.create("Thing", {"name": "x"})
        with pytest.raises(OMSError):
            staging.import_object(obj.oid, tmp_path / "ghost.dat")


class TestBookkeeping:
    def test_accounting_accumulates(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"12345")
        staging.export_object(obj.oid)
        staging.import_object(obj.oid)
        acc = staging.accounting()
        assert acc["bytes_exported"] == 5
        assert acc["bytes_imported"] == 5
        assert acc["files_exported"] == 1
        assert acc["files_imported"] == 1

    def test_read_only_access_still_pays(self, db, staging):
        """Section 3.6: even read-only access copies the data out."""
        obj = db.create("Thing", {"name": "x"}, payload=b"z" * 10_000)
        staging.export_object(obj.oid)  # "just reading"
        assert staging.accounting()["bytes_exported"] == 10_000
        assert db.clock.elapsed_by_category()["copy"] > 0

    def test_release_removes_file(self, db, staging):
        obj = db.create("Thing", {"name": "x"}, payload=b"d")
        staged = staging.export_object(obj.oid)
        staging.release(obj.oid)
        assert not staged.path.exists()
        assert not staging.is_staged(obj.oid)

    def test_clear_removes_everything(self, db, staging):
        for i in range(3):
            obj = db.create("Thing", {"name": str(i)}, payload=b"d")
            staging.export_object(obj.oid)
        staging.clear()
        assert staging.staged() == []

    def test_staged_listing_ordered(self, db, staging):
        oids = []
        for i in range(3):
            obj = db.create("Thing", {"name": str(i)}, payload=b"d")
            staging.export_object(obj.oid)
            oids.append(obj.oid)
        assert [s.oid for s in staging.staged()] == sorted(oids)
