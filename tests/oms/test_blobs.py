"""Unit tests for the content-addressed payload store."""

import pytest

from repro.errors import OMSError
from repro.oms.blobs import BlobStore, digest_bytes


@pytest.fixture
def store():
    return BlobStore()


class TestInterning:
    def test_intern_returns_content_digest(self, store):
        digest = store.intern(b"hello")
        assert digest == digest_bytes(b"hello")
        assert store.materialize(digest) == b"hello"

    def test_identical_payloads_stored_once(self, store):
        d1 = store.intern(b"same bytes")
        d2 = store.intern(b"same bytes")
        assert d1 == d2
        stats = store.stats()
        assert stats["blobs"] == 1
        assert stats["dedup_hits"] == 1
        assert store.describe(d1)["refcount"] == 2

    def test_stat_is_exact_without_materializing(self, store):
        digest = store.intern(b"x" * 12345)
        stat = store.stat(digest)
        assert stat.size == 12345
        assert stat.digest == digest

    def test_unknown_digest_raises(self, store):
        with pytest.raises(OMSError):
            store.stat("deadbeef")
        with pytest.raises(OMSError):
            store.materialize("deadbeef")


class TestRefcounting:
    def test_decref_frees_at_zero(self, store):
        digest = store.intern(b"transient")
        store.decref(digest)
        assert not store.contains(digest)

    def test_release_returns_bytes_only_when_freed(self, store):
        digest = store.intern(b"payload")
        store.incref(digest)
        assert store.release(digest) is None  # one reference remains
        assert store.release(digest) == b"payload"
        assert not store.contains(digest)

    def test_decref_below_zero_raises(self, store):
        digest = store.intern(b"x")
        store.decref(digest)
        with pytest.raises(OMSError):
            store.decref(digest)


class TestDeltaChains:
    def test_small_edit_stored_as_delta(self, store):
        base = b"A" * 10_000
        edited = b"A" * 5_000 + b"PATCH" + b"A" * 5_000
        base_digest = store.intern(base)
        edited_digest = store.intern(edited, base_digest=base_digest)
        shape = store.describe(edited_digest)
        assert shape["is_delta"] == 1
        assert shape["stored_bytes"] < 1_000
        assert store.materialize(edited_digest) == edited

    def test_unrelated_payload_stored_full(self, store):
        base_digest = store.intern(b"A" * 100)
        other_digest = store.intern(b"B" * 100, base_digest=base_digest)
        assert store.describe(other_digest)["is_delta"] == 0

    def test_tiny_payload_never_delta(self, store):
        # middle + overhead >= full payload: delta not worthwhile
        base_digest = store.intern(b"ab")
        digest = store.intern(b"ac", base_digest=base_digest)
        assert store.describe(digest)["is_delta"] == 0

    def test_chain_depth_bounded(self, store):
        data = bytearray(b"x" * 2_000)
        digest = store.intern(bytes(data))
        for i in range(BlobStore.MAX_CHAIN_DEPTH + 10):
            data[i % 2_000] = (data[i % 2_000] + 1) % 256
            digest = store.intern(bytes(data), base_digest=digest)
        assert store.stats()["max_chain_depth"] <= BlobStore.MAX_CHAIN_DEPTH
        assert store.materialize(digest) == bytes(data)

    def test_base_kept_alive_by_delta(self, store):
        base = b"B" * 1_000
        edited = base[:-10] + b"0123456789"
        base_digest = store.intern(base)
        edited_digest = store.intern(edited, base_digest=base_digest)
        assert store.describe(edited_digest)["is_delta"] == 1
        store.decref(base_digest)  # the delta's reference keeps it stored
        assert store.materialize(edited_digest) == edited
        store.decref(edited_digest)  # cascades: frees delta, then base
        assert not store.contains(base_digest)
        assert not store.contains(edited_digest)

    def test_delta_against_missing_base_stores_full(self, store):
        digest = store.intern(b"y" * 500, base_digest="no-such-digest")
        assert store.describe(digest)["is_delta"] == 0

    def test_prefix_and_suffix_both_used(self, store):
        base = b"HEAD" + b"m" * 1_000 + b"TAIL"
        edited = b"HEAD" + b"n" * 1_000 + b"TAIL"
        base_digest = store.intern(base)
        edited_digest = store.intern(edited, base_digest=base_digest)
        assert store.materialize(edited_digest) == edited

    def test_version_chain_costs_one_full_payload_plus_deltas(self, store):
        """The E36 storage claim at the store level."""
        payload = bytearray(b"d" * 50_000)
        digest = store.intern(bytes(payload))
        for i in range(49):
            payload[i * 10] = ord("e")
            digest = store.intern(bytes(payload), base_digest=digest)
        stats = store.stats()
        assert stats["full_blobs"] == 1
        assert stats["delta_blobs"] == 49
        assert stats["stored_bytes"] < 50_000 + 49 * 1_000
        assert stats["logical_bytes"] == 50 * 50_000

    def test_check_passes_on_live_store(self, store):
        base = store.intern(b"q" * 300)
        store.intern(b"q" * 200 + b"r" * 100, base_digest=base)
        store.check()
