"""Property tests: copy-on-write staging is indistinguishable from the
naive always-copy path.

Two staging areas — one CoW, one naive — are driven through identical
random interleavings of export / tool-mutate / import / release / direct
payload writes.  After every step the payload bytes in both databases and
the staged file bytes on both sides must match byte-for-byte, blob
refcounts must satisfy every store invariant (never negative, delta
chains reconstructing exactly), and at the end the dedup side must never
have copied *more* than the naive side.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oms.database import OMSDatabase
from repro.oms.schema import AttributeDef, Schema
from repro.oms.storage import StagingArea

N_OBJECTS = 3

# ops: (kind, object index, payload seed)
_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["export", "mutate", "import", "release", "set_payload"]
        ),
        st.integers(min_value=0, max_value=N_OBJECTS - 1),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=30,
)


def _fresh_db() -> OMSDatabase:
    schema = Schema("staging-prop")
    schema.define_entity(
        "Thing", [AttributeDef("name", "str", required=True)]
    )
    return OMSDatabase(schema)


def _payload(seed: int) -> bytes:
    # a few distinct payloads, some sharing content, one empty
    if seed == 0:
        return b""
    return bytes([seed % 3]) * (100 * seed)


class _Arm:
    """One database + staging area driven by the op sequence."""

    def __init__(self, tmp_path, name: str, copy_on_write: bool) -> None:
        self.db = _fresh_db()
        self.staging = StagingArea(
            self.db, tmp_path / name, copy_on_write=copy_on_write
        )
        self.oids = [
            self.db.create("Thing", {"name": str(i)}, payload=b"init").oid
            for i in range(N_OBJECTS)
        ]

    def apply(self, kind: str, index: int, seed: int) -> None:
        oid = self.oids[index]
        if kind == "export":
            self.staging.export_object(oid)
        elif kind == "mutate":
            staged = self.staging._staged.get(oid)
            if staged is not None and staged.path.exists():
                staged.path.write_bytes(_payload(seed))
        elif kind == "import":
            if self.staging.is_staged(oid):
                self.staging.import_object(oid)
        elif kind == "release":
            self.staging.release(oid)
        elif kind == "set_payload":
            self.db.set_payload(oid, _payload(seed))

    def observable(self):
        """Everything a tool or reader could see."""
        state = []
        for oid in self.oids:
            payload = self.db.get(oid).payload
            staged = self.staging._staged.get(oid)
            on_disk = (
                staged.path.read_bytes()
                if staged is not None and staged.path.exists()
                else None
            )
            state.append((payload, on_disk))
        return state


class TestCowEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops)
    def test_cow_matches_naive_byte_for_byte(self, tmp_path_factory, ops):
        tmp_path = tmp_path_factory.mktemp("staging-prop")
        cow = _Arm(tmp_path, "cow", copy_on_write=True)
        naive = _Arm(tmp_path, "naive", copy_on_write=False)
        for step, (kind, index, seed) in enumerate(ops):
            cow.apply(kind, index, seed)
            naive.apply(kind, index, seed)
            assert cow.observable() == naive.observable(), (
                f"divergence after step {step}: {kind} #{index} seed={seed}"
            )
            # refcounts never negative, delta chains reconstruct exactly
            cow.db.check_blobs()
            naive.db.check_blobs()
        # the whole point: dedup never copies more than the naive path
        cow_acc = cow.staging.accounting()
        naive_acc = naive.staging.accounting()
        assert cow_acc["bytes_exported"] <= naive_acc["bytes_exported"]
        assert cow_acc["bytes_imported"] <= naive_acc["bytes_imported"]


class TestRollbackKeepsBlobsConsistent:
    @settings(max_examples=40, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=8
        )
    )
    def test_aborted_payload_writes_restore_store(self, seeds):
        db = _fresh_db()
        oid = db.create("Thing", {"name": "x"}, payload=b"committed").oid

        class _Rollback(Exception):
            pass

        with pytest.raises(_Rollback):
            with db.transaction():
                for seed in seeds:
                    db.set_payload(oid, _payload(seed))
                raise _Rollback()
        assert db.get(oid).payload == b"committed"
        db.check_blobs()
        # nothing from the aborted writes may linger in the store
        assert db.blob_stats()["blobs"] == 1
