"""Unit tests for the shared durability helpers (fsync-then-rename)."""

import threading

import pytest

from repro.oms import durable


class TestModes:
    def test_default_mode_is_validated(self):
        with pytest.raises(ValueError):
            durable.set_default_durability("bogus")

    def test_context_manager_is_thread_local(self):
        # the suite-wide conftest fixture sets the default to relaxed;
        # an override in one thread must not leak into another
        assert durable.get_default_durability() == durable.DURABILITY_RELAXED
        seen = {}

        def probe():
            seen["other"] = durable.get_default_durability()

        with durable.durability(durable.DURABILITY_FULL):
            assert (
                durable.get_default_durability() == durable.DURABILITY_FULL
            )
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["other"] == durable.DURABILITY_RELAXED
        assert durable.get_default_durability() == durable.DURABILITY_RELAXED

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with durable.durability(durable.DURABILITY_FULL):
                raise RuntimeError("boom")
        assert durable.get_default_durability() == durable.DURABILITY_RELAXED

    def test_invalid_mode_rejected_everywhere(self, tmp_path):
        with pytest.raises(ValueError):
            durable.write_bytes(tmp_path / "f", b"x", mode="sorta")
        with pytest.raises(ValueError):
            durable.durability("sorta").__enter__()


class TestWrites:
    def test_write_bytes(self, tmp_path):
        target = tmp_path / "data.bin"
        durable.write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"

    def test_atomic_replace_publishes_and_cleans_temp(self, tmp_path):
        target = tmp_path / "state.json"
        target.write_bytes(b"old")
        durable.atomic_replace(target, b"new")
        assert target.read_bytes() == b"new"
        assert not target.with_name("state.json.tmp").exists()

    def test_replace_moves_the_file(self, tmp_path):
        src = tmp_path / "a"
        dst = tmp_path / "b"
        src.write_bytes(b"bytes")
        durable.replace(src, dst)
        assert not src.exists()
        assert dst.read_bytes() == b"bytes"

    def test_full_mode_writes_identical_bytes(self, tmp_path):
        # "relaxed" only skips fsyncs; the visible file contents must be
        # byte-identical between the two modes
        relaxed = tmp_path / "relaxed.bin"
        full = tmp_path / "full.bin"
        durable.atomic_replace(relaxed, b"same", mode="relaxed")
        with durable.durability(durable.DURABILITY_FULL):
            durable.atomic_replace(full, b"same")
        assert relaxed.read_bytes() == full.read_bytes()

    def test_fsync_helpers_tolerate_full_mode(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"x")
        durable.fsync_file(target, mode="full")
        durable.fsync_dir(tmp_path, mode="full")
        with open(target, "rb") as handle:
            durable.fsync_file_handle(handle, mode="full")

    def test_fsync_dir_tolerates_missing_directory(self, tmp_path):
        durable.fsync_dir(tmp_path / "nope", mode="full")
