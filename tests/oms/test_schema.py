"""Unit tests for OMS schema definitions."""

import pytest

from repro.errors import AttributeTypeError, SchemaError
from repro.oms.schema import AttributeDef, EntityType, RelationshipDef, Schema


class TestAttributeDef:
    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("x", "complex128")

    def test_default_must_match_type(self):
        with pytest.raises(AttributeTypeError):
            AttributeDef("x", "int", default="nope")

    def test_validate_accepts_matching_value(self):
        AttributeDef("x", "str").validate("hello")

    def test_validate_rejects_mismatched_value(self):
        with pytest.raises(AttributeTypeError):
            AttributeDef("x", "int").validate("hello")

    def test_bool_is_not_an_int(self):
        with pytest.raises(AttributeTypeError):
            AttributeDef("x", "int").validate(True)

    def test_int_accepted_for_float(self):
        AttributeDef("x", "float").validate(3)

    def test_none_ok_when_optional(self):
        AttributeDef("x", "str").validate(None)

    def test_none_rejected_when_required(self):
        with pytest.raises(AttributeTypeError):
            AttributeDef("x", "str", required=True).validate(None)


class TestEntityType:
    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            EntityType(
                "E", (AttributeDef("a", "str"), AttributeDef("a", "int"))
            )

    def test_attribute_lookup(self):
        entity = EntityType("E", (AttributeDef("a", "str"),))
        assert entity.attribute("a").type_name == "str"

    def test_unknown_attribute_lookup_raises(self):
        with pytest.raises(SchemaError):
            EntityType("E").attribute("missing")

    def test_validate_values_fills_defaults(self):
        entity = EntityType(
            "E",
            (
                AttributeDef("a", "str", required=True),
                AttributeDef("n", "int", default=7),
            ),
        )
        values = entity.validate_values({"a": "x"})
        assert values == {"a": "x", "n": 7}

    def test_validate_values_rejects_unknown_names(self):
        entity = EntityType("E", (AttributeDef("a", "str"),))
        with pytest.raises(SchemaError):
            entity.validate_values({"zzz": 1})

    def test_validate_values_requires_required(self):
        entity = EntityType("E", (AttributeDef("a", "str", required=True),))
        with pytest.raises(AttributeTypeError):
            entity.validate_values({})


class TestRelationshipDef:
    def test_bad_cardinality_rejected(self):
        with pytest.raises(SchemaError):
            RelationshipDef("r", "A", "B", "many-to-few")

    @pytest.mark.parametrize("cardinality", ["1:1", "1:N", "N:1", "M:N"])
    def test_all_cardinalities_accepted(self, cardinality):
        RelationshipDef("r", "A", "B", cardinality)


class TestSchema:
    def test_duplicate_entity_rejected(self):
        schema = Schema("s")
        schema.define_entity("E")
        with pytest.raises(SchemaError):
            schema.define_entity("E")

    def test_relationship_requires_known_endpoints(self):
        schema = Schema("s")
        schema.define_entity("A")
        with pytest.raises(SchemaError):
            schema.define_relationship("r", "A", "Ghost")

    def test_duplicate_relationship_rejected(self):
        schema = Schema("s")
        schema.define_entity("A")
        schema.define_relationship("r", "A", "A")
        with pytest.raises(SchemaError):
            schema.define_relationship("r", "A", "A")

    def test_entity_names_sorted(self):
        schema = Schema("s")
        schema.define_entity("Zeta")
        schema.define_entity("Alpha")
        assert schema.entity_names() == ["Alpha", "Zeta"]

    def test_relationships_of_touches_both_endpoints(self):
        schema = Schema("s")
        schema.define_entity("A")
        schema.define_entity("B")
        schema.define_relationship("ab", "A", "B")
        schema.define_relationship("bb", "B", "B")
        names = [r.name for r in schema.relationships_of("B")]
        assert names == ["ab", "bb"]

    def test_describe_is_json_friendly(self):
        import json

        schema = Schema("s")
        schema.define_entity("A", [AttributeDef("x", "int")])
        schema.define_entity("B")
        schema.define_relationship("ab", "A", "B", "1:N", doc="edge")
        doc = schema.describe()
        json.dumps(doc)  # must not raise
        assert doc["entities"]["A"]["attributes"] == {"x": "int"}
        assert doc["relationships"]["ab"]["cardinality"] == "1:N"


class TestDotRendering:
    def make_schema(self):
        schema = Schema("s")
        schema.define_entity("A", [AttributeDef("x", "int")])
        schema.define_entity("B")
        schema.define_relationship("ab", "A", "B", "1:N")
        return schema

    def test_dot_contains_nodes_and_edges(self):
        dot = self.make_schema().to_dot()
        assert dot.startswith("digraph schema {")
        assert '"A" [label="{A|x: int\\l}"];' in dot
        assert '"B" [label="B"];' in dot
        assert '"A" -> "B" [label="ab\\n(1:N)"' in dot
        assert dot.rstrip().endswith("}")

    def test_dot_title_optional(self):
        with_title = self.make_schema().to_dot("My Figure")
        without = self.make_schema().to_dot()
        assert 'label="My Figure"' in with_title
        assert "labelloc" not in without

    def test_dot_deterministic(self):
        schema = self.make_schema()
        assert schema.to_dot() == schema.to_dot()
