"""Unit tests for static timing analysis."""

import pytest

from repro.errors import SimulationError
from repro.tools.simulator.engine import LogicSimulator, Netlist
from repro.tools.simulator.gates import DEFAULT_DELAYS, Gate
from repro.tools.simulator.signals import Logic
from repro.tools.simulator.timing import analyze_timing, settle_bound


def chain_netlist(stages: int, delay: int = 2) -> Netlist:
    netlist = Netlist("chain")
    netlist.add_input("a")
    netlist.add_output("y")
    previous = "a"
    for i in range(stages):
        out = "y" if i == stages - 1 else f"n{i}"
        netlist.add_gate(Gate(f"g{i}", "BUF", (previous,), out,
                              delay=delay))
        previous = out
    return netlist


class TestArrivalTimes:
    def test_inputs_arrive_at_zero(self):
        report = analyze_timing(chain_netlist(3))
        assert report.arrival_of("a") == 0

    def test_chain_accumulates_delay(self):
        report = analyze_timing(chain_netlist(4, delay=3))
        assert report.critical_delay == 12
        assert report.arrival_of("y") == 12

    def test_worst_input_wins(self):
        netlist = Netlist("converge")
        netlist.add_input("fast")
        netlist.add_input("slow")
        netlist.add_output("y")
        netlist.add_gate(Gate("d1", "BUF", ("slow",), "s1", delay=10))
        netlist.add_gate(Gate("m", "AND", ("fast", "s1"), "y", delay=1))
        report = analyze_timing(netlist)
        assert report.arrival_of("y") == 11
        assert report.critical_path == ("slow", "s1", "y")

    def test_default_delays_used(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_gate(Gate("g", "XOR", ("a", "b"), "y"))
        report = analyze_timing(netlist)
        assert report.critical_delay == DEFAULT_DELAYS["XOR"]

    def test_unknown_net_raises(self):
        report = analyze_timing(chain_netlist(1))
        with pytest.raises(SimulationError):
            report.arrival_of("ghost")


class TestSequentialCuts:
    def test_dff_output_launches_new_path(self):
        netlist = Netlist("pipe")
        netlist.add_input("d")
        netlist.add_input("clk")
        netlist.add_output("y")
        netlist.add_gate(Gate("pre", "BUF", ("d",), "dd", delay=50))
        netlist.add_gate(Gate("ff", "DFF", ("dd", "clk"), "q"))
        netlist.add_gate(Gate("post", "BUF", ("q",), "y", delay=1))
        report = analyze_timing(netlist)
        # the 50-unit pre-register path does not reach y: the register
        # cuts it, so y arrives at clk-to-Q + 1
        assert report.arrival_of("y") == DEFAULT_DELAYS["DFF"] + 1
        # the launching path is still the overall critical one
        assert report.critical_delay == 50

    def test_invalid_netlist_rejected(self):
        netlist = Netlist("bad")
        netlist.add_output("y")
        netlist.add_gate(Gate("g", "BUF", ("floating",), "y"))
        with pytest.raises(SimulationError):
            analyze_timing(netlist)


class TestSettleBound:
    def test_simulation_settles_within_bound(self):
        """Dynamic simulation of a step settles by the static bound."""
        netlist = chain_netlist(5, delay=4)
        bound = settle_bound(netlist)
        assert bound == 20
        result = LogicSimulator(netlist).run([(0, "a", Logic.ONE)])
        assert result.value_at("y", bound) is Logic.ONE
        assert result.value_at("y", bound - 1) is not Logic.ONE

    def test_gateless_netlist_has_zero_delay(self):
        netlist = Netlist("wire_only")
        netlist.add_input("a")
        netlist.add_output("a")  # a feed-through
        report = analyze_timing(netlist)
        assert report.critical_delay == 0
