"""Unit tests for gate models and X-propagation."""

import pytest

from repro.errors import SimulationError
from repro.tools.simulator.gates import (
    DEFAULT_DELAYS,
    Gate,
    evaluate_gate,
)
from repro.tools.simulator.signals import Logic

Z = Logic.ZERO
O = Logic.ONE
X = Logic.X


def run(gate_type, values, ninputs=2):
    gate = Gate("g", gate_type, tuple(f"i{k}" for k in range(ninputs)), "o")
    return evaluate_gate(gate, values)


class TestTruthTables:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(Z, Z, Z), (Z, O, Z), (O, Z, Z), (O, O, O)],
    )
    def test_and(self, a, b, expected):
        assert run("AND", [a, b]) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(Z, Z, Z), (Z, O, O), (O, Z, O), (O, O, O)],
    )
    def test_or(self, a, b, expected):
        assert run("OR", [a, b]) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(Z, Z, O), (O, O, Z), (Z, O, O)],
    )
    def test_nand(self, a, b, expected):
        assert run("NAND", [a, b]) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(Z, Z, O), (O, O, Z), (Z, O, Z)],
    )
    def test_nor(self, a, b, expected):
        assert run("NOR", [a, b]) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(Z, Z, Z), (Z, O, O), (O, Z, O), (O, O, Z)],
    )
    def test_xor(self, a, b, expected):
        assert run("XOR", [a, b]) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(Z, Z, O), (O, O, O), (Z, O, Z)],
    )
    def test_xnor(self, a, b, expected):
        assert run("XNOR", [a, b]) is expected

    def test_not(self):
        assert run("NOT", [Z], ninputs=1) is O
        assert run("NOT", [O], ninputs=1) is Z

    def test_buf(self):
        assert run("BUF", [O], ninputs=1) is O

    def test_wide_and(self):
        assert run("AND", [O, O, O, Z], ninputs=4) is Z


class TestXPropagation:
    def test_and_controlling_zero_beats_x(self):
        assert run("AND", [Z, X]) is Z

    def test_and_x_without_controlling_value(self):
        assert run("AND", [O, X]) is X

    def test_or_controlling_one_beats_x(self):
        assert run("OR", [O, X]) is O

    def test_or_x_without_controlling_value(self):
        assert run("OR", [Z, X]) is X

    def test_xor_always_poisoned_by_x(self):
        assert run("XOR", [O, X]) is X

    def test_not_of_x(self):
        assert run("NOT", [X], ninputs=1) is X

    def test_z_treated_as_unknown(self):
        assert run("AND", [O, Logic.Z]) is X
        assert run("BUF", [Logic.Z], ninputs=1) is X


class TestGateStructure:
    def test_unknown_type_rejected(self):
        with pytest.raises(SimulationError):
            Gate("g", "MAJORITY", ("a", "b"), "o")

    def test_arity_bounds_enforced(self):
        with pytest.raises(SimulationError):
            Gate("g", "NOT", ("a", "b"), "o")
        with pytest.raises(SimulationError):
            Gate("g", "AND", ("a",), "o")

    def test_missing_output_rejected(self):
        with pytest.raises(SimulationError):
            Gate("g", "AND", ("a", "b"), "")

    def test_default_delay_by_type(self):
        gate = Gate("g", "XOR", ("a", "b"), "o")
        assert gate.effective_delay == DEFAULT_DELAYS["XOR"]

    def test_explicit_delay_wins(self):
        gate = Gate("g", "XOR", ("a", "b"), "o", delay=9)
        assert gate.effective_delay == 9

    def test_dff_is_sequential(self):
        gate = Gate("ff", "DFF", ("d", "clk"), "q")
        assert gate.is_sequential
        with pytest.raises(SimulationError):
            evaluate_gate(gate, [O, O])
