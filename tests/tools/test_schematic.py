"""Unit tests for the schematic model, editor, symbols and netlister."""

import pytest

from repro.errors import SchematicError
from repro.tools.schematic.editor import SchematicEditor
from repro.tools.schematic.model import Component, Schematic
from repro.tools.schematic.netlist import netlist_schematic
from repro.tools.schematic.symbols import Symbol, symbol_for


def inverter_schematic():
    schematic = Schematic("inv")
    schematic.add_port("a", "in")
    schematic.add_port("y", "out")
    schematic.add_component(Component("g", "NOT", ninputs=1))
    schematic.connect("a", "g", "in0")
    schematic.connect("y", "g", "out")
    return schematic


class TestModel:
    def test_port_direction_validated(self):
        with pytest.raises(SchematicError):
            Schematic("c").add_port("p", "sideways")

    def test_duplicate_port_rejected(self):
        schematic = Schematic("c")
        schematic.add_port("a", "in")
        with pytest.raises(SchematicError):
            schematic.add_port("a", "out")

    def test_unknown_component_type_rejected(self):
        with pytest.raises(SchematicError):
            Component("c", "FLUXCAP")

    def test_cell_instance_requires_cellref(self):
        with pytest.raises(SchematicError):
            Component("c", "CELL")

    def test_primitive_pin_names(self):
        assert Component("c", "AND", ninputs=3).pin_names() == [
            "in0", "in1", "in2", "out",
        ]
        assert Component("f", "DFF").pin_names() == ["d", "clk", "q"]

    def test_connect_unknown_pin_rejected(self):
        schematic = Schematic("c")
        schematic.add_component(Component("g", "NOT", ninputs=1))
        with pytest.raises(SchematicError):
            schematic.connect("n", "g", "in7")

    def test_disconnect_removes_empty_net(self):
        schematic = Schematic("c")
        schematic.add_component(Component("g", "NOT", ninputs=1))
        schematic.connect("n", "g", "in0")
        schematic.disconnect("n", "g", "in0")
        with pytest.raises(SchematicError):
            schematic.net("n")

    def test_remove_component_cleans_nets(self):
        schematic = inverter_schematic()
        schematic.remove_component("g")
        # port nets survive (port terminal), but have a single terminal
        assert schematic.components() == []
        assert ("g", "in0") not in schematic.net("a").terminals

    def test_validate_clean(self):
        assert inverter_schematic().validate() == []

    def test_validate_dangling_pin(self):
        schematic = Schematic("c")
        schematic.add_component(Component("g", "NOT", ninputs=1))
        problems = schematic.validate()
        assert any("dangling" in p for p in problems)

    def test_validate_single_terminal_net(self):
        schematic = Schematic("c")
        schematic.add_port("a", "in")  # port net with no other terminal
        problems = schematic.validate()
        assert any("single terminal" in p for p in problems)

    def test_subcell_refs(self):
        schematic = Schematic("top")
        schematic.add_component(Component("u1", "CELL", cellref="alu"))
        schematic.add_component(Component("u2", "CELL", cellref="alu"))
        schematic.add_component(Component("u3", "CELL", cellref="fpu"))
        assert schematic.subcell_refs() == ["alu", "fpu"]

    def test_serialisation_round_trip(self):
        original = inverter_schematic()
        restored = Schematic.from_bytes(original.to_bytes())
        assert restored.cell_name == "inv"
        assert [p.name for p in restored.ports()] == ["a", "y"]
        assert restored.validate() == []
        assert restored.to_bytes() == original.to_bytes()

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(SchematicError):
            Schematic.from_bytes(b"garbage")


class TestEditor:
    def test_editing_sets_dirty_and_logs(self):
        editor = SchematicEditor()
        editor.new_design("cell")
        editor.add_port("a", "in")
        assert editor.dirty
        assert any("port a" in op for op in editor.op_log)

    def test_save_clears_dirty(self):
        editor = SchematicEditor()
        editor.new_design("cell")
        editor.save_bytes()
        assert not editor.dirty

    def test_open_bytes_round_trip(self):
        editor = SchematicEditor()
        editor.new_design("inv")
        editor.add_port("a", "in")
        editor.add_port("y", "out")
        editor.place_gate("g", "NOT", 1)
        editor.wire("a", "g", "in0")
        editor.wire("y", "g", "out")
        data = editor.save_bytes()
        reopened = SchematicEditor.open_bytes(data)
        assert not reopened.dirty
        assert reopened.schematic.cell_name == "inv"

    def test_require_clean_raises_on_problems(self):
        editor = SchematicEditor()
        editor.new_design("bad")
        editor.place_gate("g", "AND")
        with pytest.raises(SchematicError):
            editor.require_clean()

    def test_check_returns_problem_list(self):
        editor = SchematicEditor()
        editor.new_design("bad")
        editor.place_gate("g", "AND")
        assert editor.check()

    def test_place_cell_and_delete(self):
        editor = SchematicEditor()
        editor.new_design("top")
        editor.place_cell("u1", "alu")
        assert editor.schematic.subcell_refs() == ["alu"]
        editor.delete("u1")
        assert editor.schematic.subcell_refs() == []


class TestSymbols:
    def test_symbol_from_ports(self):
        symbol = symbol_for(inverter_schematic())
        assert symbol.cell_name == "inv"
        assert symbol.pins == (("a", "in"), ("y", "out"))

    def test_symbol_requires_ports(self):
        with pytest.raises(SchematicError):
            symbol_for(Schematic("portless"))

    def test_symbol_round_trip(self):
        symbol = symbol_for(inverter_schematic())
        restored = Symbol.from_bytes(symbol.to_bytes())
        assert restored == symbol

    def test_symbol_from_garbage_raises(self):
        with pytest.raises(SchematicError):
            Symbol.from_bytes(b"junk")


class TestNetlister:
    def test_flat_netlist(self):
        netlist = netlist_schematic(inverter_schematic())
        assert [g.gate_type for g in netlist.gates()] == ["NOT"]
        assert netlist.inputs == ["a"] and netlist.outputs == ["y"]

    def test_hierarchical_flattening_prefixes_names(self):
        child = inverter_schematic()
        parent = Schematic("top")
        parent.add_port("x", "in")
        parent.add_port("z", "out")
        parent.add_component(Component("u1", "CELL", cellref="inv"))
        parent.connect("x", "u1", "a")
        parent.connect("z", "u1", "y")
        netlist = netlist_schematic(parent, lambda ref: child)
        assert [g.name for g in netlist.gates()] == ["u1/g"]
        gate = netlist.gates()[0]
        assert gate.inputs == ("x",) and gate.output == "z"

    def test_two_levels_of_hierarchy(self):
        leaf = inverter_schematic()
        middle = Schematic("mid")
        middle.add_port("a", "in")
        middle.add_port("y", "out")
        middle.add_component(Component("w", "CELL", cellref="inv"))
        middle.connect("a", "w", "a")
        middle.connect("y", "w", "y")
        top = Schematic("top")
        top.add_port("p", "in")
        top.add_port("q", "out")
        top.add_component(Component("m", "CELL", cellref="mid"))
        top.connect("p", "m", "a")
        top.connect("q", "m", "y")
        resolver = {"inv": leaf, "mid": middle}.__getitem__
        netlist = netlist_schematic(top, resolver)
        assert [g.name for g in netlist.gates()] == ["m/w/g"]

    def test_missing_resolver_raises(self):
        parent = Schematic("top")
        parent.add_component(Component("u1", "CELL", cellref="inv"))
        with pytest.raises(SchematicError):
            netlist_schematic(parent)

    def test_recursion_depth_capped(self):
        recursive = Schematic("loop")
        recursive.add_port("a", "in")
        recursive.add_port("y", "out")
        recursive.add_component(Component("u", "CELL", cellref="loop"))
        recursive.connect("a", "u", "a")
        recursive.connect("y", "u", "y")
        with pytest.raises(SchematicError, match="deeper"):
            netlist_schematic(recursive, lambda ref: recursive)

    def test_dangling_primitive_pin_raises(self):
        bad = Schematic("bad")
        bad.add_port("y", "out")
        bad.add_component(Component("g", "NOT", ninputs=1))
        bad.connect("y", "g", "out")
        with pytest.raises(SchematicError, match="unconnected"):
            netlist_schematic(bad)

    def test_unconnected_subcell_port_gets_private_net(self):
        child = inverter_schematic()
        parent = Schematic("top")
        parent.add_port("x", "in")
        parent.add_component(Component("u1", "CELL", cellref="inv"))
        parent.connect("x", "u1", "a")  # child's y left unconnected
        netlist = netlist_schematic(parent, lambda ref: child)
        assert netlist.gates()[0].output == "u1/y"

    def test_inout_ports_rejected(self):
        schematic = Schematic("c")
        schematic.add_port("p", "inout")
        with pytest.raises(SchematicError):
            netlist_schematic(schematic)

    def test_netlisted_hierarchy_simulates(self):
        child = inverter_schematic()
        parent = Schematic("buf2")
        parent.add_port("x", "in")
        parent.add_port("z", "out")
        for i, inst in enumerate(("u1", "u2")):
            parent.add_component(Component(inst, "CELL", cellref="inv"))
        parent.connect("x", "u1", "a")
        parent.connect("mid", "u1", "y")
        parent.connect("mid", "u2", "a")
        parent.connect("z", "u2", "y")
        netlist = netlist_schematic(parent, lambda ref: child)
        from repro.tools.simulator.testbench import Testbench

        bench = Testbench(netlist)
        bench.drive(0, "x", "1").expect(20, "z", "1")
        bench.drive(40, "x", "0").expect(60, "z", "0")
        assert bench.run().passed
