"""Unit tests for simulation initialization-coverage analysis."""

from repro.tools.simulator.engine import LogicSimulator, Netlist
from repro.tools.simulator.gates import Gate
from repro.tools.simulator.signals import Logic


def two_path_netlist():
    """Two independent inverters; we can initialise one and not the other."""
    netlist = Netlist("twopaths")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("x")
    netlist.add_output("y")
    netlist.add_gate(Gate("g1", "NOT", ("a",), "x"))
    netlist.add_gate(Gate("g2", "NOT", ("b",), "y"))
    return netlist


class TestUninitializedNets:
    def test_fully_driven_design_has_full_coverage(self):
        result = LogicSimulator(two_path_netlist()).run(
            [(0, "a", Logic.ZERO), (0, "b", Logic.ONE)]
        )
        assert result.uninitialized_nets() == []
        assert result.initialization_coverage() == 1.0

    def test_undriven_path_reported(self):
        result = LogicSimulator(two_path_netlist()).run(
            [(0, "a", Logic.ZERO)]  # b never driven
        )
        assert result.uninitialized_nets() == ["b", "y"]
        assert result.initialization_coverage() == 0.5

    def test_no_stimulus_means_zero_coverage(self):
        result = LogicSimulator(two_path_netlist()).run([])
        assert result.initialization_coverage() == 0.0
        assert len(result.uninitialized_nets()) == 4

    def test_dff_without_clock_stays_uninitialized(self):
        netlist = Netlist("reg")
        netlist.add_input("d")
        netlist.add_input("clk")
        netlist.add_output("q")
        netlist.add_gate(Gate("ff", "DFF", ("d", "clk"), "q"))
        result = LogicSimulator(netlist).run(
            [(0, "d", Logic.ONE)]  # no clock edge ever
        )
        assert "q" in result.uninitialized_nets()
