"""Unit tests for the schematic electrical rule checker."""

from repro.tools.schematic.erc import fanout_report, run_erc
from repro.tools.schematic.model import Component, Schematic


def clean_inverter():
    schematic = Schematic("inv")
    schematic.add_port("a", "in")
    schematic.add_port("y", "out")
    schematic.add_component(Component("g", "NOT", ninputs=1))
    schematic.connect("a", "g", "in0")
    schematic.connect("y", "g", "out")
    return schematic


class TestCleanDesigns:
    def test_inverter_clean(self):
        assert run_erc(clean_inverter()) == []

    def test_input_port_counts_as_driver(self):
        schematic = clean_inverter()
        violations = run_erc(schematic)
        assert not any(v.net == "a" for v in violations)


class TestMultipleDrivers:
    def test_two_gate_outputs_on_one_net(self):
        schematic = Schematic("bad")
        schematic.add_port("a", "in")
        schematic.add_port("y", "out")
        for name in ("g1", "g2"):
            schematic.add_component(Component(name, "NOT", ninputs=1))
            schematic.connect("a", name, "in0")
            schematic.connect("y", name, "out")  # both drive y!
        violations = run_erc(schematic)
        assert any(
            v.rule == "multiple_drivers" and v.net == "y"
            for v in violations
        )

    def test_input_port_shorted_to_gate_output(self):
        schematic = Schematic("bad")
        schematic.add_port("a", "in")
        schematic.add_port("b", "in")
        schematic.add_component(Component("g", "NOT", ninputs=1))
        schematic.connect("a", "g", "in0")
        schematic.connect("b", "g", "out")  # output drives input port net
        violations = run_erc(schematic)
        assert any(v.rule == "multiple_drivers" for v in violations)


class TestNoDriver:
    def test_floating_gate_input(self):
        schematic = Schematic("bad")
        schematic.add_port("y", "out")
        schematic.add_component(Component("g", "NOT", ninputs=1))
        schematic.connect("float", "g", "in0")
        schematic.connect("y", "g", "out")
        violations = run_erc(schematic)
        assert any(
            v.rule == "no_driver" and v.net == "float" for v in violations
        )

    def test_output_port_without_driver(self):
        schematic = Schematic("bad")
        schematic.add_port("y", "out")
        violations = run_erc(schematic)
        assert any(v.rule == "no_driver" and v.net == "y"
                   for v in violations)


class TestFanout:
    def make_fanout_design(self, readers):
        schematic = Schematic("fan")
        schematic.add_port("a", "in")
        for i in range(readers):
            schematic.add_component(Component(f"g{i}", "NOT", ninputs=1))
            schematic.connect("a", f"g{i}", "in0")
            schematic.connect(f"n{i}", f"g{i}", "out")
            # terminate each inverter output
            schematic.add_component(Component(f"t{i}", "NOT", ninputs=1))
            schematic.connect(f"n{i}", f"t{i}", "in0")
            schematic.connect(f"o{i}", f"t{i}", "out")
        return schematic

    def test_within_limit_clean(self):
        violations = run_erc(self.make_fanout_design(4), max_fanout=8)
        assert not any(v.rule == "fanout" for v in violations)

    def test_exceeding_limit_flagged(self):
        violations = run_erc(self.make_fanout_design(5), max_fanout=4)
        assert any(
            v.rule == "fanout" and v.net == "a" for v in violations
        )

    def test_fanout_report_counts_readers(self):
        report = fanout_report(self.make_fanout_design(3))
        assert report["a"] == 3


class TestCellInstances:
    def test_cell_pins_count_as_readers(self):
        schematic = Schematic("top")
        schematic.add_port("a", "in")
        schematic.add_component(Component("u1", "CELL", cellref="sub"))
        schematic.connect("a", "u1", "p")
        assert run_erc(schematic) == []

    def test_cell_only_net_is_undriven(self):
        schematic = Schematic("top")
        schematic.add_component(Component("u1", "CELL", cellref="sub"))
        schematic.add_component(Component("u2", "CELL", cellref="sub"))
        schematic.connect("n", "u1", "p")
        schematic.connect("n", "u2", "q")
        violations = run_erc(schematic)
        assert any(v.rule == "no_driver" and v.net == "n"
                   for v in violations)
