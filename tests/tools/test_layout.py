"""Unit tests for layout geometry, editor, DRC and extraction."""

import pytest

from repro.errors import LayoutError
from repro.tools.layout.drc import DesignRules, run_drc
from repro.tools.layout.editor import Instance, Label, Layout, LayoutEditor
from repro.tools.layout.extract import extract_connectivity, lvs_compare
from repro.tools.layout.geometry import Rect
from repro.tools.schematic.model import Component, Schematic


class TestRect:
    def test_unknown_layer_rejected(self):
        with pytest.raises(LayoutError):
            Rect("unobtainium", 0, 0, 1, 1)

    def test_degenerate_rejected(self):
        with pytest.raises(LayoutError):
            Rect("metal1", 5, 0, 5, 10)
        with pytest.raises(LayoutError):
            Rect("metal1", 10, 0, 5, 5)

    def test_width_is_smaller_dimension(self):
        assert Rect("metal1", 0, 0, 10, 3).width == 3
        assert Rect("metal1", 0, 0, 3, 10).width == 3

    def test_area(self):
        assert Rect("metal1", 0, 0, 4, 5).area == 20

    def test_overlap_vs_touch(self):
        a = Rect("metal1", 0, 0, 10, 10)
        abutting = Rect("metal1", 10, 0, 20, 10)
        overlapping = Rect("metal1", 5, 5, 15, 15)
        apart = Rect("metal1", 50, 0, 60, 10)
        assert not a.overlaps(abutting) and a.touches(abutting)
        assert a.overlaps(overlapping)
        assert not a.touches(apart)

    def test_connected_requires_same_layer(self):
        a = Rect("metal1", 0, 0, 10, 10)
        b = Rect("metal2", 5, 5, 15, 15)
        assert not a.connected_to(b)

    def test_distance(self):
        a = Rect("metal1", 0, 0, 10, 10)
        assert a.distance_to(Rect("metal1", 12, 0, 20, 10)) == 2
        assert a.distance_to(Rect("metal1", 0, 15, 10, 20)) == 5
        assert a.distance_to(Rect("metal1", 5, 5, 8, 8)) == 0

    def test_translated(self):
        moved = Rect("metal1", 0, 0, 4, 4).translated(10, 20)
        assert moved.bbox == (10, 20, 14, 24)

    def test_contains_point(self):
        rect = Rect("metal1", 0, 0, 10, 10)
        assert rect.contains_point(0, 0)
        assert rect.contains_point(10, 10)
        assert not rect.contains_point(11, 5)


class TestLayoutModel:
    def test_place_and_unplace(self):
        layout = Layout("top")
        layout.place(Instance("u1", "alu", 0, 0))
        assert layout.subcell_refs() == ["alu"]
        layout.unplace("u1")
        assert layout.instances() == []

    def test_duplicate_instance_rejected(self):
        layout = Layout("top")
        layout.place(Instance("u1", "alu", 0, 0))
        with pytest.raises(LayoutError):
            layout.place(Instance("u1", "fpu", 0, 0))

    def test_self_placement_rejected(self):
        with pytest.raises(LayoutError):
            Layout("top").place(Instance("u1", "top", 0, 0))

    def test_flatten_translates(self):
        child = Layout("leaf")
        child.add_rect(Rect("metal1", 0, 0, 4, 4))
        parent = Layout("top")
        parent.place(Instance("u1", "leaf", 100, 200))
        flat = parent.flatten(lambda ref: child)
        assert flat[0].bbox == (100, 200, 104, 204)

    def test_flatten_without_resolver_raises(self):
        parent = Layout("top")
        parent.place(Instance("u1", "leaf", 0, 0))
        with pytest.raises(LayoutError):
            parent.flatten()

    def test_flatten_depth_capped(self):
        layout = Layout("a")
        layout.place(Instance("u", "b", 0, 0))
        other = Layout("b")
        other.place(Instance("u", "a", 0, 0))
        resolver = {"a": layout, "b": other}.__getitem__
        with pytest.raises(LayoutError, match="deeper"):
            layout.flatten(resolver)

    def test_serialisation_round_trip(self):
        layout = Layout("cell")
        layout.add_rect(Rect("poly", 0, 0, 5, 5))
        layout.add_label(Label("net1", "poly", 1, 1))
        layout.place(Instance("u1", "sub", 10, 10))
        restored = Layout.from_bytes(layout.to_bytes())
        assert restored.cell_name == "cell"
        assert restored.rects[0].layer == "poly"
        assert restored.labels[0].text == "net1"
        assert restored.instance("u1").dx == 10
        assert restored.to_bytes() == layout.to_bytes()

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(LayoutError):
            Layout.from_bytes(b"junk")


class TestLayoutEditor:
    def test_operations_log_and_dirty(self):
        editor = LayoutEditor()
        editor.new_design("cell")
        editor.draw_rect("metal1", 0, 0, 10, 10)
        editor.add_label("n", "metal1", 1, 1)
        editor.place_cell("u1", "sub", 5, 5)
        assert editor.dirty
        assert len(editor.op_log) == 4
        editor.save_bytes()
        assert not editor.dirty

    def test_open_bytes(self):
        editor = LayoutEditor()
        editor.new_design("cell")
        editor.draw_rect("metal1", 0, 0, 10, 10)
        reopened = LayoutEditor.open_bytes(editor.save_bytes())
        assert len(reopened.layout.rects) == 1


class TestDRC:
    def test_clean_layout(self):
        layout = Layout("ok")
        layout.add_rect(Rect("metal1", 0, 0, 10, 10))
        layout.add_rect(Rect("metal1", 20, 0, 30, 10))
        assert run_drc(layout) == []

    def test_width_violation(self):
        layout = Layout("thin")
        layout.add_rect(Rect("metal1", 0, 0, 10, 2))  # min width 3
        violations = run_drc(layout)
        assert len(violations) == 1
        assert violations[0].rule == "width"

    def test_spacing_violation(self):
        layout = Layout("close")
        layout.add_rect(Rect("metal1", 0, 0, 10, 10))
        layout.add_rect(Rect("metal1", 11, 0, 21, 10))  # gap 1 < 3
        violations = run_drc(layout)
        assert any(v.rule == "spacing" for v in violations)

    def test_touching_rects_are_not_a_spacing_issue(self):
        layout = Layout("joined")
        layout.add_rect(Rect("metal1", 0, 0, 10, 10))
        layout.add_rect(Rect("metal1", 10, 0, 20, 10))
        assert run_drc(layout) == []

    def test_different_layers_do_not_interact(self):
        layout = Layout("stack")
        layout.add_rect(Rect("metal1", 0, 0, 10, 10))
        layout.add_rect(Rect("metal2", 11, 0, 21, 10))
        assert run_drc(layout) == []

    def test_custom_rules(self):
        rules = DesignRules(min_width={"metal1": 20}, min_spacing={})
        layout = Layout("c")
        layout.add_rect(Rect("metal1", 0, 0, 10, 10))
        assert len(run_drc(layout, rules)) == 1

    def test_hierarchical_drc_catches_cross_cell_violation(self):
        child = Layout("leaf")
        child.add_rect(Rect("metal1", 0, 0, 10, 10))
        parent = Layout("top")
        parent.add_rect(Rect("metal1", 0, 0, 10, 10))
        # placing the child 1 unit away creates a spacing violation that
        # neither cell has on its own
        parent.place(Instance("u1", "leaf", 11, 0))
        violations = run_drc(parent, resolver=lambda ref: child)
        assert any(v.rule == "spacing" for v in violations)


class TestExtraction:
    def test_touching_same_layer_is_one_net(self):
        layout = Layout("c")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        layout.add_rect(Rect("metal1", 10, 0, 20, 4))
        layout.add_label(Label("a", "metal1", 1, 1))
        nets = extract_connectivity(layout)
        assert len(nets) == 1
        assert nets[0].name == "a"
        assert len(nets[0].rects) == 2

    def test_separate_geometry_is_separate_nets(self):
        layout = Layout("c")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        layout.add_rect(Rect("metal1", 50, 0, 60, 4))
        assert len(extract_connectivity(layout)) == 2

    def test_via_joins_layers(self):
        layout = Layout("c")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        layout.add_rect(Rect("via1", 4, 0, 7, 4))
        layout.add_rect(Rect("metal2", 0, 0, 10, 4))
        nets = extract_connectivity(layout)
        assert len(nets) == 1

    def test_conflicting_labels_leave_net_unnamed(self):
        layout = Layout("c")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        layout.add_label(Label("a", "metal1", 1, 1))
        layout.add_label(Label("b", "metal1", 5, 1))
        nets = extract_connectivity(layout)
        assert nets[0].name is None
        assert nets[0].names == {"a", "b"}

    def test_label_on_other_layer_ignored(self):
        layout = Layout("c")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        layout.add_label(Label("a", "metal2", 1, 1))
        assert extract_connectivity(layout)[0].name is None


class TestLVS:
    def make_schematic(self):
        schematic = Schematic("inv")
        schematic.add_port("a", "in")
        schematic.add_port("y", "out")
        schematic.add_component(Component("g", "NOT", ninputs=1))
        schematic.connect("a", "g", "in0")
        schematic.connect("y", "g", "out")
        return schematic

    def test_clean_compare(self):
        layout = Layout("inv")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        layout.add_label(Label("a", "metal1", 1, 1))
        layout.add_rect(Rect("metal1", 0, 10, 10, 14))
        layout.add_label(Label("y", "metal1", 1, 11))
        report = lvs_compare(layout, self.make_schematic())
        assert report.clean
        assert report.matched == ["a", "y"]

    def test_missing_net_reported(self):
        layout = Layout("inv")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        layout.add_label(Label("a", "metal1", 1, 1))
        report = lvs_compare(layout, self.make_schematic())
        assert not report.clean
        assert report.missing_in_layout == ["y"]

    def test_unknown_net_reported(self):
        layout = Layout("inv")
        for i, name in enumerate(("a", "y", "mystery")):
            y = i * 10
            layout.add_rect(Rect("metal1", 0, y, 10, y + 4))
            layout.add_label(Label(name, "metal1", 1, y + 1))
        report = lvs_compare(layout, self.make_schematic())
        assert report.unknown_in_layout == ["mystery"]
