"""Unit tests for four-valued logic."""

import pytest

from repro.tools.simulator.signals import Logic, resolve_bus


class TestLogic:
    def test_from_str(self):
        assert Logic.from_str("0") is Logic.ZERO
        assert Logic.from_str("1") is Logic.ONE
        assert Logic.from_str("x") is Logic.X
        assert Logic.from_str("z") is Logic.Z

    def test_from_str_invalid(self):
        with pytest.raises(ValueError):
            Logic.from_str("2")

    def test_from_bool(self):
        assert Logic.from_bool(True) is Logic.ONE
        assert Logic.from_bool(False) is Logic.ZERO

    def test_is_known(self):
        assert Logic.ZERO.is_known and Logic.ONE.is_known
        assert not Logic.X.is_known and not Logic.Z.is_known

    def test_to_bool_strict(self):
        assert Logic.ONE.to_bool() is True
        assert Logic.ZERO.to_bool() is False
        with pytest.raises(ValueError):
            Logic.X.to_bool()

    def test_str(self):
        assert str(Logic.X) == "X"


class TestBusResolution:
    def test_empty_is_z(self):
        assert resolve_bus([]) is Logic.Z

    def test_z_yields_to_driven(self):
        assert resolve_bus([Logic.Z, Logic.ONE]) is Logic.ONE
        assert resolve_bus([Logic.ZERO, Logic.Z]) is Logic.ZERO

    def test_conflict_is_x(self):
        assert resolve_bus([Logic.ONE, Logic.ZERO]) is Logic.X

    def test_x_poisons(self):
        assert resolve_bus([Logic.ONE, Logic.X]) is Logic.X

    def test_agreeing_drivers_ok(self):
        assert resolve_bus([Logic.ONE, Logic.ONE]) is Logic.ONE

    def test_all_z(self):
        assert resolve_bus([Logic.Z, Logic.Z]) is Logic.Z
