"""Unit tests for stimulus helpers and testbenches."""

import pytest

from repro.errors import SimulationError
from repro.tools.simulator.engine import Netlist
from repro.tools.simulator.gates import Gate
from repro.tools.simulator.signals import Logic
from repro.tools.simulator.stimulus import (
    Stimulus,
    clock_stimulus,
    vector_stimulus,
)
from repro.tools.simulator.testbench import (
    Testbench as Bench,
    TestbenchReport as BenchReport,
)


def and_netlist():
    netlist = Netlist("and2")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_gate(Gate("g", "AND", ("a", "b"), "y"))
    return netlist


class TestStimulus:
    def test_drive_chainable(self):
        stim = Stimulus().drive(0, "a", Logic.ONE).drive(5, "b", Logic.ZERO)
        assert len(stim.events) == 2
        assert stim.horizon == 5

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            Stimulus().drive(-1, "a", Logic.ONE)

    def test_drive_bits(self):
        stim = Stimulus().drive_bits(10, {"a": "1", "b": "0"})
        nets = {net for _, net, _ in stim.events}
        assert nets == {"a", "b"}

    def test_extend(self):
        a = Stimulus().drive(0, "a", Logic.ONE)
        b = Stimulus().drive(5, "b", Logic.ZERO)
        a.extend(b)
        assert len(a.events) == 2

    def test_clock_stimulus_edges(self):
        stim = clock_stimulus("clk", period=10, cycles=2)
        times = sorted(t for t, _, _ in stim.events)
        assert times == [0, 5, 10, 15, 20]

    def test_clock_period_bound(self):
        with pytest.raises(SimulationError):
            clock_stimulus("clk", period=1, cycles=1)

    def test_vector_stimulus(self):
        stim = vector_stimulus(["a", "b"], ["00", "01", "11"], interval=10)
        assert len(stim.events) == 6
        assert stim.horizon == 20

    def test_vector_length_mismatch(self):
        with pytest.raises(SimulationError):
            vector_stimulus(["a", "b"], ["011"], interval=10)


class TestTestbench:
    def test_passing_bench(self):
        bench = Bench(and_netlist())
        bench.drive(0, "a", "1").drive(0, "b", "1").expect(20, "y", "1")
        bench.drive(50, "b", "0").expect(70, "y", "0")
        report = bench.run()
        assert report.passed
        assert report.checks_run == 2
        assert report.failures == []

    def test_failing_bench_reports_details(self):
        bench = Bench(and_netlist())
        bench.drive(0, "a", "1").drive(0, "b", "0")
        bench.expect(20, "y", "1")  # wrong: AND(1,0)=0
        report = bench.run()
        assert not report.passed
        assert "expected 1" in report.failures[0]

    def test_expect_unknown_net_rejected(self):
        bench = Bench(and_netlist())
        with pytest.raises(SimulationError):
            bench.expect(0, "ghost", "1")

    def test_report_serialisation_round_trip(self):
        bench = Bench(and_netlist())
        bench.drive(0, "a", "1").drive(0, "b", "1").expect(20, "y", "1")
        report = bench.run()
        restored = BenchReport.from_bytes(report.to_bytes())
        assert restored.passed == report.passed
        assert restored.netlist_name == "and2"
        assert restored.checks_run == 1

    def test_report_from_garbage_raises(self):
        with pytest.raises(SimulationError):
            BenchReport.from_bytes(b"nope")

    def test_exhaustive_adder(self):
        """Full adder built from gates: all 8 input rows verified."""
        netlist = Netlist("fa")
        for net in ("a", "b", "cin"):
            netlist.add_input(net)
        netlist.add_output("sum")
        netlist.add_output("cout")
        netlist.add_gate(Gate("x1", "XOR", ("a", "b"), "ab"))
        netlist.add_gate(Gate("x2", "XOR", ("ab", "cin"), "sum"))
        netlist.add_gate(Gate("a1", "AND", ("a", "b"), "t1"))
        netlist.add_gate(Gate("a2", "AND", ("ab", "cin"), "t2"))
        netlist.add_gate(Gate("o1", "OR", ("t1", "t2"), "cout"))
        bench = Bench(netlist)
        for i in range(8):
            a, b, c = (i >> 2) & 1, (i >> 1) & 1, i & 1
            t = i * 50
            bench.drive(t, "a", str(a))
            bench.drive(t, "b", str(b))
            bench.drive(t, "cin", str(c))
            total = a + b + c
            bench.expect(t + 40, "sum", str(total % 2))
            bench.expect(t + 40, "cout", str(total // 2))
        report = bench.run()
        assert report.passed, report.failures
