"""Unit tests for the event-driven simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.tools.simulator.engine import LogicSimulator, Netlist
from repro.tools.simulator.events import EventQueue
from repro.tools.simulator.gates import Gate
from repro.tools.simulator.signals import Logic


def inverter_netlist():
    netlist = Netlist("inv")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_gate(Gate("g", "NOT", ("a",), "y"))
    return netlist


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        queue.schedule(10, "a", Logic.ONE)
        queue.schedule(5, "b", Logic.ZERO)
        assert queue.pop_next().net == "b"
        assert queue.pop_next().net == "a"

    def test_ties_broken_by_schedule_order(self):
        queue = EventQueue()
        queue.schedule(5, "first", Logic.ONE)
        queue.schedule(5, "second", Logic.ONE)
        time, batch = queue.pop_simultaneous()
        assert time == 5
        assert [e.net for e in batch] == ["first", "second"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, "a", Logic.ONE)

    def test_pop_empty(self):
        assert EventQueue().pop_next() is None
        with pytest.raises(IndexError):
            EventQueue().pop_simultaneous()


class TestNetlistStructure:
    def test_duplicate_gate_rejected(self):
        netlist = inverter_netlist()
        with pytest.raises(SimulationError):
            netlist.add_gate(Gate("g", "NOT", ("a",), "z"))

    def test_multiple_drivers_rejected(self):
        netlist = inverter_netlist()
        with pytest.raises(SimulationError):
            netlist.add_gate(Gate("g2", "NOT", ("a",), "y"))

    def test_gate_driving_primary_input_rejected(self):
        netlist = inverter_netlist()
        with pytest.raises(SimulationError):
            netlist.add_gate(Gate("g2", "NOT", ("y",), "a"))

    def test_validate_flags_undriven_nets(self):
        netlist = Netlist("bad")
        netlist.add_output("y")
        netlist.add_gate(Gate("g", "NOT", ("floating",), "y"))
        problems = netlist.validate()
        assert any("undriven" in p for p in problems)

    def test_simulator_rejects_invalid_netlist(self):
        netlist = Netlist("bad")
        netlist.add_output("y")
        with pytest.raises(SimulationError):
            LogicSimulator(netlist)

    def test_serialisation_round_trip(self):
        netlist = inverter_netlist()
        restored = Netlist.from_bytes(netlist.to_bytes())
        assert restored.name == "inv"
        assert [g.name for g in restored.gates()] == ["g"]
        assert restored.inputs == ["a"] and restored.outputs == ["y"]

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(SimulationError):
            Netlist.from_bytes(b"not json at all")

    def test_from_bytes_rejects_wrong_format(self):
        with pytest.raises(SimulationError):
            Netlist.from_bytes(b'{"format": "something-else"}')


class TestFanoutIndex:
    def test_readers_ordered_by_gate_name(self):
        netlist = Netlist("fan")
        netlist.add_input("a")
        # insert out of name order; readers_of must still sort by name
        netlist.add_gate(Gate("z_gate", "NOT", ("a",), "y2"))
        netlist.add_gate(Gate("a_gate", "NOT", ("a",), "y1"))
        assert [g.name for g in netlist.readers_of("a")] == [
            "a_gate", "z_gate"
        ]

    def test_unread_net_has_no_readers(self):
        netlist = inverter_netlist()
        assert netlist.readers_of("y") == []
        assert netlist.readers_of("nonexistent") == []

    def test_gate_with_repeated_input_listed_once(self):
        netlist = Netlist("dup")
        netlist.add_input("a")
        netlist.add_gate(Gate("g", "AND", ("a", "a"), "y"))
        assert [g.name for g in netlist.readers_of("a")] == ["g"]

    def test_nets_cache_invalidated_by_mutation(self):
        netlist = inverter_netlist()
        assert netlist.nets() == ["a", "y"]
        netlist.add_gate(Gate("g2", "NOT", ("y",), "z"))
        assert netlist.nets() == ["a", "y", "z"]
        netlist.add_output("z")
        assert netlist.nets() == ["a", "y", "z"]

    def test_nets_result_is_a_copy(self):
        netlist = inverter_netlist()
        netlist.nets().append("tampered")
        assert "tampered" not in netlist.nets()


class TestSimulation:
    def test_inverter_inverts(self):
        result = LogicSimulator(inverter_netlist()).run(
            [(0, "a", Logic.ZERO), (50, "a", Logic.ONE)]
        )
        assert result.value_at("y", 40) is Logic.ONE
        assert result.value_at("y", 90) is Logic.ZERO

    def test_everything_starts_x(self):
        result = LogicSimulator(inverter_netlist()).run([])
        assert result.value_at("y", 0) is Logic.X
        assert result.final_value("y") is Logic.X

    def test_delay_is_respected(self):
        netlist = Netlist("slow")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate(Gate("g", "BUF", ("a",), "y", delay=7))
        result = LogicSimulator(netlist).run([(0, "a", Logic.ONE)])
        assert result.value_at("y", 6) is Logic.X
        assert result.value_at("y", 7) is Logic.ONE

    def test_stimulating_internal_net_rejected(self):
        with pytest.raises(SimulationError):
            LogicSimulator(inverter_netlist()).run([(0, "y", Logic.ONE)])

    def test_glitch_propagation_through_chain(self):
        netlist = Netlist("chain")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate(Gate("g1", "NOT", ("a",), "n1", delay=1))
        netlist.add_gate(Gate("g2", "NOT", ("n1",), "y", delay=1))
        result = LogicSimulator(netlist).run(
            [(0, "a", Logic.ZERO), (10, "a", Logic.ONE)]
        )
        assert result.value_at("y", 5) is Logic.ZERO
        assert result.value_at("y", 15) is Logic.ONE
        assert result.toggle_count("y") >= 2

    def test_duration_cuts_off(self):
        result = LogicSimulator(inverter_netlist()).run(
            [(0, "a", Logic.ZERO), (100, "a", Logic.ONE)], duration=50
        )
        assert result.final_value("y") is Logic.ONE  # only first stimulus ran

    def test_event_limit_safety_valve(self):
        """Runaway activity is stopped instead of hanging the framework."""
        simulator = LogicSimulator(inverter_netlist())
        simulator.MAX_EVENTS = 3
        stimuli = [(t, "a", Logic.ONE if t % 20 else Logic.ZERO)
                   for t in range(0, 200, 10)]
        with pytest.raises(SimulationError, match="event limit"):
            simulator.run(stimuli)


class TestDFF:
    def make_register(self):
        netlist = Netlist("reg")
        netlist.add_input("d")
        netlist.add_input("clk")
        netlist.add_output("q")
        netlist.add_gate(Gate("ff", "DFF", ("d", "clk"), "q"))
        return netlist

    def test_latches_on_rising_edge(self):
        result = LogicSimulator(self.make_register()).run(
            [
                (0, "clk", Logic.ZERO),
                (0, "d", Logic.ONE),
                (10, "clk", Logic.ONE),
            ]
        )
        assert result.value_at("q", 20) is Logic.ONE

    def test_d_changes_alone_do_nothing(self):
        result = LogicSimulator(self.make_register()).run(
            [
                (0, "clk", Logic.ZERO),
                (5, "d", Logic.ONE),
                (15, "d", Logic.ZERO),
            ]
        )
        assert result.final_value("q") is Logic.X

    def test_falling_edge_does_not_latch(self):
        result = LogicSimulator(self.make_register()).run(
            [
                (0, "clk", Logic.ZERO),
                (0, "d", Logic.ONE),
                (10, "clk", Logic.ONE),   # latch 1
                (20, "clk", Logic.ZERO),  # falling: no effect
                (25, "d", Logic.ZERO),
            ]
        )
        assert result.final_value("q") is Logic.ONE

    def test_two_stage_shift_register(self):
        netlist = Netlist("shift2")
        netlist.add_input("d")
        netlist.add_input("clk")
        netlist.add_output("q2")
        netlist.add_gate(Gate("ff1", "DFF", ("d", "clk"), "q1"))
        netlist.add_gate(Gate("ff2", "DFF", ("q1", "clk"), "q2"))
        stimuli = [(0, "d", Logic.ONE), (0, "clk", Logic.ZERO)]
        # two rising edges move the 1 through both stages
        for edge, time in enumerate((10, 30)):
            stimuli.append((time, "clk", Logic.ONE))
            stimuli.append((time + 10, "clk", Logic.ZERO))
        result = LogicSimulator(netlist).run(stimuli)
        assert result.value_at("q2", 25) is Logic.X  # after first edge
        assert result.value_at("q2", 45) is Logic.ONE  # after second
