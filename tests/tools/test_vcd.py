"""Unit tests for VCD waveform export."""

import pytest

from repro.errors import SimulationError
from repro.tools.simulator.engine import LogicSimulator, Netlist
from repro.tools.simulator.gates import Gate
from repro.tools.simulator.signals import Logic
from repro.tools.simulator.vcd import (
    _identifier,
    dump_vcd,
    parse_vcd_changes,
)


@pytest.fixture
def result():
    netlist = Netlist("inv")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_gate(Gate("g", "NOT", ("a",), "y"))
    return LogicSimulator(netlist).run(
        [(0, "a", Logic.ZERO), (50, "a", Logic.ONE)]
    )


class TestIdentifiers:
    def test_first_identifiers_single_char(self):
        assert _identifier(0) == "!"
        assert _identifier(1) == '"'

    def test_identifiers_unique(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            _identifier(-1)


class TestDump:
    def test_header_fields(self, result):
        text = dump_vcd(result)
        assert "$timescale 1ns $end" in text
        assert "$scope module inv $end" in text
        assert "$enddefinitions $end" in text

    def test_every_net_declared(self, result):
        text = dump_vcd(result)
        for net in ("a", "y"):
            assert f" {net} $end" in text

    def test_subset_of_nets(self, result):
        text = dump_vcd(result, nets=["y"])
        assert " y $end" in text
        assert " a $end" not in text

    def test_unknown_net_rejected(self, result):
        with pytest.raises(SimulationError):
            dump_vcd(result, nets=["ghost"])

    def test_deterministic(self, result):
        assert dump_vcd(result) == dump_vcd(result)

    def test_initial_values_in_dumpvars(self, result):
        text = dump_vcd(result)
        dumpvars = text.split("$dumpvars")[1].split("$end")[0]
        # both nets start as x
        assert dumpvars.count("x") == 2


class TestRoundTrip:
    def test_changes_survive_round_trip(self, result):
        changes = parse_vcd_changes(dump_vcd(result))
        assert set(changes) == {"a", "y"}
        # a: x@0 -> 0@0 -> 1@50
        values_a = [(t, v) for t, v in changes["a"]]
        assert values_a[0] == (0, "x")
        assert (0, "0") in values_a
        assert (50, "1") in values_a

    def test_output_transitions_present(self, result):
        changes = parse_vcd_changes(dump_vcd(result))
        values_y = {v for _, v in changes["y"]}
        assert {"x", "0", "1"} == values_y

    def test_malformed_var_line_rejected(self):
        with pytest.raises(SimulationError):
            parse_vcd_changes("$var wire $end\n$enddefinitions $end\n")
