"""Unit tests for stuck-at fault simulation."""

import pytest

from repro.errors import SimulationError
from repro.tools.simulator.engine import LogicSimulator, Netlist
from repro.tools.simulator.faults import (
    StuckFault,
    coverage_of_testbench,
    enumerate_faults,
    run_fault_simulation,
)
from repro.tools.simulator.gates import Gate
from repro.tools.simulator.signals import Logic
from repro.tools.simulator.testbench import Testbench


def inverter():
    netlist = Netlist("inv")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_gate(Gate("g", "NOT", ("a",), "y"))
    return netlist


def and2():
    netlist = Netlist("and2")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_gate(Gate("g", "AND", ("a", "b"), "y"))
    return netlist


def both_phases(net="a"):
    """Drive 0 then 1 — the exhaustive pattern set for an inverter."""
    return [(0, net, Logic.ZERO), (100, net, Logic.ONE)]


class TestForcedNets:
    def test_forced_net_ignores_stimulus(self):
        result = LogicSimulator(inverter()).run(
            both_phases(), forced={"a": Logic.ONE}
        )
        assert result.final_value("a") is Logic.ONE
        assert result.final_value("y") is Logic.ZERO

    def test_forced_internal_net_overrides_driver(self):
        result = LogicSimulator(inverter()).run(
            both_phases(), forced={"y": Logic.ZERO}
        )
        # whatever a does, y is stuck
        assert result.final_value("y") is Logic.ZERO
        assert result.toggle_count("y") == 1  # only the initial forcing

    def test_unknown_forced_net_rejected(self):
        with pytest.raises(SimulationError):
            LogicSimulator(inverter()).run([], forced={"ghost": Logic.ONE})


class TestEnumeration:
    def test_two_faults_per_net(self):
        faults = enumerate_faults(inverter())
        assert len(faults) == 4  # nets a, y x SA0/SA1
        assert StuckFault("a", Logic.ZERO) in faults
        assert StuckFault("y", Logic.ONE) in faults


class TestCoverage:
    def test_exhaustive_inverter_patterns_catch_everything(self):
        report = run_fault_simulation(inverter(), both_phases())
        assert report.coverage == 1.0
        assert report.undetected == []

    def test_single_pattern_misses_faults(self):
        report = run_fault_simulation(
            inverter(), [(0, "a", Logic.ZERO)]
        )
        # a=0 -> y=1 detects a/SA1 and y/SA0 but not a/SA0, y/SA1
        assert 0 < report.coverage < 1.0
        undetected = {str(f) for f in report.undetected}
        assert "a/SA0" in undetected
        assert "y/SA1" in undetected

    def test_and_gate_needs_all_three_patterns(self):
        # 11 detects SA0s; 01 and 10 distinguish each input's SA1
        full = [
            (0, "a", Logic.ONE), (0, "b", Logic.ONE),
            (100, "a", Logic.ZERO), (100, "b", Logic.ONE),
            (200, "a", Logic.ONE), (200, "b", Logic.ZERO),
        ]
        report = run_fault_simulation(and2(), full)
        assert report.coverage == 1.0

    def test_weak_pattern_set_scores_lower(self):
        weak = [(0, "a", Logic.ONE), (0, "b", Logic.ONE)]
        strong = [
            (0, "a", Logic.ONE), (0, "b", Logic.ONE),
            (100, "a", Logic.ZERO), (100, "b", Logic.ONE),
            (200, "a", Logic.ONE), (200, "b", Logic.ZERO),
        ]
        weak_report = run_fault_simulation(and2(), weak)
        strong_report = run_fault_simulation(and2(), strong)
        assert weak_report.coverage < strong_report.coverage

    def test_explicit_fault_subset(self):
        report = run_fault_simulation(
            inverter(),
            both_phases(),
            faults=[StuckFault("y", Logic.ONE)],
        )
        assert report.total_faults == 1
        assert report.coverage == 1.0

    def test_no_outputs_rejected(self):
        netlist = Netlist("blind")
        netlist.add_input("a")
        with pytest.raises(SimulationError):
            run_fault_simulation(netlist, [(0, "a", Logic.ONE)])

    def test_no_stimulus_rejected(self):
        with pytest.raises(SimulationError):
            run_fault_simulation(inverter(), [])

    def test_x_outputs_never_count_as_detection(self):
        # only drive a at t=0 with X-leaving pattern: force b unknown
        report = run_fault_simulation(
            and2(), [(0, "a", Logic.ONE)]  # b stays X
        )
        # b-related faults cannot be *proven* detected through X
        undetected = {str(f) for f in report.undetected}
        assert "b/SA0" in undetected or "b/SA1" in undetected


class TestTestbenchGrading:
    def test_coverage_of_testbench(self):
        bench = Testbench(inverter())
        bench.drive(0, "a", "0").expect(30, "y", "1")
        bench.drive(100, "a", "1").expect(130, "y", "0")
        report = coverage_of_testbench(bench)
        assert report.coverage == 1.0

    def test_lazy_testbench_scores_zero(self):
        bench = Testbench(inverter())
        bench.drive(0, "a", "0")  # single phase, no toggling
        report = coverage_of_testbench(bench)
        assert report.coverage < 1.0
