"""Unit tests for layout metrics."""

from repro.tools.layout.editor import Instance, Label, Layout
from repro.tools.layout.geometry import Rect
from repro.tools.layout.metrics import compute_metrics


def simple_layout():
    layout = Layout("cell")
    layout.add_rect(Rect("metal1", 0, 0, 10, 4))     # area 40
    layout.add_rect(Rect("metal1", 20, 0, 30, 4))    # area 40
    layout.add_rect(Rect("poly", 0, 10, 4, 20))      # area 40
    layout.add_label(Label("a", "metal1", 1, 1))
    layout.add_label(Label("b", "metal1", 21, 1))
    return layout


class TestBasicMetrics:
    def test_bounding_box_and_area(self):
        metrics = compute_metrics(simple_layout())
        assert metrics.bounding_box == (0, 0, 30, 20)
        assert metrics.total_area == 600

    def test_drawn_area_by_layer(self):
        metrics = compute_metrics(simple_layout())
        assert metrics.drawn_area_by_layer == {"metal1": 80, "poly": 40}

    def test_utilisation(self):
        metrics = compute_metrics(simple_layout())
        assert abs(metrics.utilisation_by_layer["metal1"] - 80 / 600) < 1e-9

    def test_counts(self):
        metrics = compute_metrics(simple_layout())
        assert metrics.rect_count == 3
        assert metrics.net_count == 3  # two labelled metal nets + poly

    def test_empty_layout(self):
        metrics = compute_metrics(Layout("empty"))
        assert metrics.total_area == 0
        assert metrics.rect_count == 0
        assert metrics.utilisation_by_layer == {}


class TestHPWL:
    def test_single_rect_net_hpwl(self):
        metrics = compute_metrics(simple_layout())
        # net 'a': one 10x4 rect -> 10 + 4
        assert metrics.hpwl_by_net["a"] == 14

    def test_spanning_net_hpwl(self):
        layout = Layout("span")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        layout.add_rect(Rect("metal1", 10, 0, 100, 4))  # touching: same net
        layout.add_label(Label("bus", "metal1", 1, 1))
        metrics = compute_metrics(layout)
        assert metrics.hpwl_by_net["bus"] == 100 + 4

    def test_unnamed_nets_excluded_from_hpwl(self):
        layout = Layout("anon")
        layout.add_rect(Rect("metal1", 0, 0, 10, 4))
        metrics = compute_metrics(layout)
        assert metrics.hpwl_by_net == {}
        assert metrics.net_count == 1

    def test_total_hpwl_sums(self):
        metrics = compute_metrics(simple_layout())
        assert metrics.total_hpwl == sum(metrics.hpwl_by_net.values())


class TestHierarchical:
    def test_flattened_metrics(self):
        child = Layout("leaf")
        child.add_rect(Rect("metal1", 0, 0, 10, 10))
        parent = Layout("top")
        parent.place(Instance("u1", "leaf", 0, 0))
        parent.place(Instance("u2", "leaf", 100, 0))
        metrics = compute_metrics(parent, resolver=lambda ref: child)
        assert metrics.rect_count == 2
        assert metrics.bounding_box == (0, 0, 110, 10)
        assert metrics.drawn_area_by_layer["metal1"] == 200
