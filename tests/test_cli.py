"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_info_exits_zero(self):
        code, text = run_cli(["info"])
        assert code == 0

    def test_info_lists_systems_and_table1(self):
        _, text = run_cli(["info"])
        assert "repro.jcf" in text
        assert "repro.fmcad" in text
        assert "DesignObjectVersion" in text
        assert "Cellview Version" in text


class TestDemo:
    def test_demo_runs_full_flow(self, tmp_path):
        code, text = run_cli(["demo", "--workspace", str(tmp_path / "d")])
        assert code == 0
        for activity in ("schematic_entry", "digital_simulation",
                         "layout_entry"):
            assert activity in text
        assert "FAILED" not in text
        assert "derivation record" in text

    def test_demo_uses_given_workspace(self, tmp_path):
        workspace = tmp_path / "demo_ws"
        code, text = run_cli(["demo", "--workspace", str(workspace)])
        assert code == 0
        assert workspace.exists()
        assert str(workspace) in text


class TestSelfcheck:
    def test_selfcheck_passes(self):
        code, text = run_cli(["selfcheck"])
        assert code == 0
        assert "selfcheck passed" in text


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            run_cli([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            run_cli(["frobnicate"])


class TestConsult:
    def test_consult_prints_report(self):
        code, text = run_cli(["consult"])
        assert code == 0
        assert "design consultant report:" in text
        # flow hint: simulation is the next runnable activity
        assert "digital_simulation" in text


class TestAuditRecover:
    def test_audit_without_workspace_inspects_demo(self):
        code, text = run_cli(["audit"])
        assert code == 0
        assert "audit: clean" in text

    def test_recover_without_workspace_finds_nothing(self):
        code, text = run_cli(["recover"])
        assert code == 0
        assert "nothing to repair" in text
        assert "audit: clean" in text

    def test_audit_refuses_unsaved_workspace(self, tmp_path):
        code, text = run_cli(["audit", "--workspace", str(tmp_path)])
        assert code == 2
        assert "error:" in text and "not a saved hybrid workspace" in text

    def test_recover_refuses_unsaved_workspace(self, tmp_path):
        code, text = run_cli(["recover", "--workspace", str(tmp_path)])
        assert code == 2
        assert "error:" in text

    def test_demo_saves_reopenable_workspace(self, tmp_path):
        workspace = tmp_path / "ws"
        code, text = run_cli(["demo", "--workspace", str(workspace)])
        assert code == 0
        assert "saved:" in text
        code, text = run_cli(["audit", "--workspace", str(workspace)])
        assert code == 0
        assert "audit: clean" in text

    def test_crashed_workspace_audits_dirty_then_recovers(self, tmp_path):
        from repro.core import HybridFramework
        from repro.faults import CrashFault, FaultPlan, inject
        from tests.conftest import build_inverter_editor_fn

        root = tmp_path / "ws"
        hybrid = HybridFramework(root)
        resources = hybrid.jcf.resources
        resources.define_user("admin", "alice")
        resources.define_team("admin", "team1")
        resources.add_member("admin", "alice", "team1")
        hybrid.setup_standard_flow()
        library = hybrid.fmcad.create_library("chiplib")
        library.create_cell("inv2")
        project = hybrid.adopt_library("alice", library, "chipA")
        resources.assign_team_to_project("admin", "team1", project.oid)
        hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
        with inject(FaultPlan.crash("harvest.after_checkin")):
            with pytest.raises(CrashFault):
                hybrid.run_schematic_entry(
                    "alice", project, library, "inv2",
                    build_inverter_editor_fn(),
                )
        hybrid.save_state()

        code, text = run_cli(["audit", "--workspace", str(root)])
        assert code == 1
        assert "finding(s)" in text
        code, text = run_cli(["recover", "--workspace", str(root)])
        assert code == 0
        assert "audit: clean" in text
        code, text = run_cli(["audit", "--workspace", str(root)])
        assert code == 0


class TestServe:
    def test_serve_boots_answers_and_drains_on_sigint(self, tmp_path):
        """`repro serve` over a subprocess: boot, ping over the socket,
        SIGINT, clean drain."""
        import json
        import os
        import signal
        import socket
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--shards", "2", "--window-ms", "10"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        try:
            port = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if "listening on" in line:
                    port = int(line.split()[2].rsplit(":", 1)[1])
                    break
            assert port, "server never reported its address"
            with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
                s.sendall(b'{"op": "ping", "id": 1}\n')
                answer = json.loads(s.makefile().readline())
                assert answer["ok"] and answer["pong"]
            process.send_signal(signal.SIGINT)
            remainder = process.communicate(timeout=60)[0]
            assert process.returncode == 0, remainder
            assert "stopped cleanly" in remainder
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
