"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_info_exits_zero(self):
        code, text = run_cli(["info"])
        assert code == 0

    def test_info_lists_systems_and_table1(self):
        _, text = run_cli(["info"])
        assert "repro.jcf" in text
        assert "repro.fmcad" in text
        assert "DesignObjectVersion" in text
        assert "Cellview Version" in text


class TestDemo:
    def test_demo_runs_full_flow(self, tmp_path):
        code, text = run_cli(["demo", "--workspace", str(tmp_path / "d")])
        assert code == 0
        for activity in ("schematic_entry", "digital_simulation",
                         "layout_entry"):
            assert activity in text
        assert "FAILED" not in text
        assert "derivation record" in text

    def test_demo_uses_given_workspace(self, tmp_path):
        workspace = tmp_path / "demo_ws"
        code, text = run_cli(["demo", "--workspace", str(workspace)])
        assert code == 0
        assert workspace.exists()
        assert str(workspace) in text


class TestSelfcheck:
    def test_selfcheck_passes(self):
        code, text = run_cli(["selfcheck"])
        assert code == 0
        assert "selfcheck passed" in text


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            run_cli([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            run_cli(["frobnicate"])


class TestConsult:
    def test_consult_prints_report(self):
        code, text = run_cli(["consult"])
        assert code == 0
        assert "design consultant report:" in text
        # flow hint: simulation is the next runnable activity
        assert "digital_simulation" in text
