"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.clock import SimClock
from repro.faults import (
    DEFAULT_RETRY_ATTEMPTS,
    FAULT_POINTS,
    CrashFault,
    FaultPlan,
    FaultRule,
    TransientFault,
    active_plan,
    fault_point,
    inject,
    with_retries,
)


class TestFaultRule:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultRule("no.such.point", "crash")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("staging.write", "meteor")

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("staging.write", "crash", on_hit=0)
        with pytest.raises(ValueError):
            FaultRule("staging.write", "transient", times=0)

    def test_crash_fires_exactly_once(self):
        rule = FaultRule("staging.write", "crash", on_hit=2)
        assert [h for h in range(1, 6) if rule.should_fire(h)] == [2]

    def test_transient_fires_a_window(self):
        rule = FaultRule("staging.write", "transient", on_hit=2, times=3)
        assert [h for h in range(1, 8) if rule.should_fire(h)] == [2, 3, 4]


class TestFaultPlan:
    def test_disabled_fault_point_is_noop(self):
        assert active_plan() is None
        fault_point("staging.write")  # must not raise, not count anywhere

    def test_crash_on_nth_hit(self):
        with inject(FaultPlan.crash("blobs.intern", on_hit=3)) as plan:
            fault_point("blobs.intern")
            fault_point("blobs.intern")
            with pytest.raises(CrashFault):
                fault_point("blobs.intern")
        assert plan.hits["blobs.intern"] == 3
        assert plan.fired == [("blobs.intern", "crash", 3)]
        assert plan.crash_fired

    def test_transient_fires_then_clears(self):
        plan = FaultPlan.transient("staging.import", on_hit=1, times=2)
        with inject(plan):
            with pytest.raises(TransientFault):
                fault_point("staging.import")
            with pytest.raises(TransientFault):
                fault_point("staging.import")
            fault_point("staging.import")  # window over
        assert not plan.crash_fired
        assert len(plan.fired) == 2

    def test_inject_always_deactivates(self):
        with pytest.raises(RuntimeError):
            with inject(FaultPlan.crash("staging.write")):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_untargeted_points_still_counted(self):
        with inject(FaultPlan.crash("staging.write", on_hit=99)) as plan:
            fault_point("blobs.intern")
            fault_point("staging.write")
        assert plan.hits["blobs.intern"] == 1
        assert plan.hits["staging.write"] == 1
        assert plan.fired == []

    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random_plan(seed=1234, transient_probability=0.5)
        b = FaultPlan.random_plan(seed=1234, transient_probability=0.5)
        assert a.points == b.points
        assert a.points[0] in FAULT_POINTS


class TestWithRetries:
    def test_transient_retried_to_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientFault("blip")
            return "ok"

        clock = SimClock()
        assert with_retries(flaky, clock=clock) == "ok"
        assert calls["n"] == 3
        # two backoffs charged, exponentially
        backoff = clock.elapsed_by_category().get("retry_backoff", 0)
        base = clock.cost_model.retry_backoff_ms
        assert backoff == base * (2 ** 0) + base * (2 ** 1)

    def test_exhausted_retries_reraise(self):
        def always_flaky():
            raise TransientFault("blip")

        with pytest.raises(TransientFault):
            with_retries(always_flaky, attempts=DEFAULT_RETRY_ATTEMPTS)

    def test_crash_is_never_retried(self):
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise CrashFault("dead")

        with pytest.raises(CrashFault):
            with_retries(dead)
        assert calls["n"] == 1

    def test_ordinary_errors_pass_through(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("not a fault")

        with pytest.raises(ValueError):
            with_retries(broken)
        assert calls["n"] == 1

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            with_retries(lambda: None, attempts=0)
