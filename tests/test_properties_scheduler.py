"""Property-based tests for the parallel coupled-run scheduler.

Two promises, probed with random batches and schedule seeds:

1. **Determinism** — for any batch of valid coupled runs and any seed,
   executing with several workers commits an OMS snapshot byte-identical
   to executing the same batch with one worker.
2. **Recovery convergence** — after a crash fault fires mid-wave,
   ``recover()`` restores a clean audit and a second ``recover()`` is a
   fixpoint (repairs nothing).
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coupling import HybridFramework
from repro.core.scheduler import RunRequest
from repro.faults import FaultPlan, inject
from tests.conftest import (
    build_inverter_editor_fn,
    inverter_testbench_fn,
    simple_layout_fn,
)

#: per-cell flow chain; a batch assigns each cell a prefix of it
CHAIN = ("schematic_entry", "digital_simulation", "layout_entry")

KWARGS = {
    "schematic_entry": lambda: {"edit_fn": build_inverter_editor_fn(2)},
    "digital_simulation": lambda: {
        "testbench_fn": inverter_testbench_fn(2)
    },
    "layout_entry": lambda: {"edit_fn": simple_layout_fn()},
}


@st.composite
def batches(draw):
    """A valid batch: per-cell runs follow the flow chain in order,
    cells interleave arbitrarily."""
    n_cells = draw(st.integers(min_value=1, max_value=3))
    # sequence of cell picks; each pick emits that cell's next activity
    picks = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_cells - 1),
            min_size=1,
            max_size=6,
        )
    )
    progress = [0] * n_cells
    plan = []
    for cell_index in picks:
        step = progress[cell_index]
        if step >= len(CHAIN):
            continue
        progress[cell_index] = step + 1
        plan.append((cell_index, CHAIN[step]))
    return n_cells, plan


def build_environment(root: pathlib.Path, n_cells: int):
    if root.exists():
        shutil.rmtree(root)
    hybrid = HybridFramework(root)
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("chiplib")
    cells = [f"cell{i}" for i in range(n_cells)]
    for cell in cells:
        library.create_cell(cell)
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    for cell in cells:
        hybrid.prepare_cell("alice", project, cell, team_name="team1")
    return hybrid, project, library, cells


def requests_for(plan, project, library, cells):
    return [
        RunRequest(
            "alice", project, library, cells[cell_index], activity,
            kwargs=KWARGS[activity](),
        )
        for cell_index, activity in plan
    ]


class TestSchedulerDeterminism:
    @given(batch=batches(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_parallel_snapshot_equals_sequential(self, batch, seed):
        n_cells, plan = batch
        base = pathlib.Path(tempfile.mkdtemp(prefix="prop_sched_"))
        try:
            # both arms at the same path: snapshots embed absolute paths
            root = base / "env"
            snapshots = []
            statuses = []
            for workers in (1, 3):
                hybrid, project, library, cells = build_environment(
                    root, n_cells
                )
                result = hybrid.run_many(
                    requests_for(plan, project, library, cells),
                    workers=workers,
                    seed=seed,
                )
                statuses.append([o.status for o in result.outcomes])
                assert hybrid.audit().clean
                snapshots.append(hybrid.jcf.save_snapshot())
            assert statuses[0] == statuses[1]
            assert snapshots[0] == snapshots[1]
        finally:
            shutil.rmtree(base, ignore_errors=True)


class TestCrashRecoveryConvergence:
    @given(
        batch=batches(),
        seed=st.integers(min_value=0, max_value=2**16),
        crash_hit=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=8, deadline=None)
    def test_double_recover_is_fixpoint(self, batch, seed, crash_hit):
        n_cells, plan = batch
        base = pathlib.Path(tempfile.mkdtemp(prefix="prop_crash_"))
        try:
            hybrid, project, library, cells = build_environment(
                base / "env", n_cells
            )
            plan_obj = FaultPlan.crash("run.before_finish", on_hit=crash_hit)
            with inject(plan_obj):
                hybrid.run_many(
                    requests_for(plan, project, library, cells),
                    workers=3,
                    seed=seed,
                )
            hybrid.recover()
            assert hybrid.audit().clean
            second = hybrid.recover()
            assert second.empty(), (
                f"second recover() repaired something: {second.summary()}"
            )
            assert hybrid.audit().clean
        finally:
            shutil.rmtree(base, ignore_errors=True)
