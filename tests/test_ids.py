"""Unit tests for deterministic identifier allocation and ordering."""

from repro.ids import IdAllocator, sort_key


class TestIdAllocator:
    def test_first_id_is_one(self):
        assert IdAllocator().allocate("cell") == "cell:000001"

    def test_ids_are_monotone_per_kind(self):
        ids = IdAllocator()
        first = ids.allocate("cell")
        second = ids.allocate("cell")
        assert first < second

    def test_kinds_count_independently(self):
        ids = IdAllocator()
        ids.allocate("cell")
        ids.allocate("cell")
        assert ids.allocate("flow") == "flow:000001"

    def test_reset_restarts_counters(self):
        ids = IdAllocator()
        ids.allocate("cell")
        ids.reset()
        assert ids.allocate("cell") == "cell:000001"

    def test_two_allocators_are_independent(self):
        a, b = IdAllocator(), IdAllocator()
        a.allocate("x")
        assert b.allocate("x") == "x:000001"

    def test_id_embeds_kind_prefix(self):
        assert IdAllocator().allocate("DesignObject").startswith(
            "DesignObject:"
        )


class TestObserve:
    def test_observe_fast_forwards(self):
        ids = IdAllocator()
        ids.observe("cell:000042")
        assert ids.allocate("cell") == "cell:000043"

    def test_observe_never_rewinds(self):
        ids = IdAllocator()
        for _ in range(10):
            ids.allocate("cell")
        ids.observe("cell:000003")
        assert ids.allocate("cell") == "cell:000011"

    def test_observe_malformed_rejected(self):
        import pytest

        ids = IdAllocator()
        with pytest.raises(ValueError):
            ids.observe("no-number")
        with pytest.raises(ValueError):
            ids.observe("cell:xyz")

    def test_observe_accepts_seven_digit_ids(self):
        ids = IdAllocator()
        ids.observe("cell:1000000")
        assert ids.allocate("cell") == "cell:1000001"

    def test_observe_never_rewinds_past_the_million(self):
        ids = IdAllocator()
        ids.observe("cell:1000005")
        ids.observe("cell:000003")
        assert ids.allocate("cell") == "cell:1000006"


class TestSortKey:
    def test_equal_padding_matches_lexicographic(self):
        ids = [f"cell:{n:06d}" for n in (3, 17, 999999, 1)]
        assert sorted(ids, key=sort_key) == sorted(ids)

    def test_million_sorts_after_allocator_max(self):
        """The allocator pads to six digits, so the millionth id breaks
        lexicographic order ('cell:1000000' < 'cell:999999')."""
        ids = IdAllocator()
        for _ in range(999_999):
            last_padded = ids.allocate("cell")
        millionth = ids.allocate("cell")
        assert millionth == "cell:1000000"
        assert millionth < last_padded  # the lexicographic trap
        assert sort_key(millionth) > sort_key(last_padded)

    def test_kinds_group_before_numbers(self):
        ordered = sorted(
            ["flow:000002", "cell:1000000", "cell:000001", "flow:000001"],
            key=sort_key,
        )
        assert ordered == [
            "cell:000001",
            "cell:1000000",
            "flow:000001",
            "flow:000002",
        ]

    def test_non_numeric_identifiers_still_totally_ordered(self):
        ids = ["plain", "cell:xyz", "cell:000001", "a:b:000002"]
        ordered = sorted(ids, key=sort_key)
        assert sorted(ordered, key=sort_key) == ordered
        assert len(set(map(sort_key, ids))) == len(ids)

    def test_allocator_exports_sort_key(self):
        assert IdAllocator.sort_key("x:000001") == sort_key("x:000001")
