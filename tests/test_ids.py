"""Unit tests for deterministic identifier allocation."""

from repro.ids import IdAllocator


class TestIdAllocator:
    def test_first_id_is_one(self):
        assert IdAllocator().allocate("cell") == "cell:000001"

    def test_ids_are_monotone_per_kind(self):
        ids = IdAllocator()
        first = ids.allocate("cell")
        second = ids.allocate("cell")
        assert first < second

    def test_kinds_count_independently(self):
        ids = IdAllocator()
        ids.allocate("cell")
        ids.allocate("cell")
        assert ids.allocate("flow") == "flow:000001"

    def test_reset_restarts_counters(self):
        ids = IdAllocator()
        ids.allocate("cell")
        ids.reset()
        assert ids.allocate("cell") == "cell:000001"

    def test_two_allocators_are_independent(self):
        a, b = IdAllocator(), IdAllocator()
        a.allocate("x")
        assert b.allocate("x") == "x:000001"

    def test_id_embeds_kind_prefix(self):
        assert IdAllocator().allocate("DesignObject").startswith(
            "DesignObject:"
        )


class TestObserve:
    def test_observe_fast_forwards(self):
        ids = IdAllocator()
        ids.observe("cell:000042")
        assert ids.allocate("cell") == "cell:000043"

    def test_observe_never_rewinds(self):
        ids = IdAllocator()
        for _ in range(10):
            ids.allocate("cell")
        ids.observe("cell:000003")
        assert ids.allocate("cell") == "cell:000011"

    def test_observe_malformed_rejected(self):
        import pytest

        ids = IdAllocator()
        with pytest.raises(ValueError):
            ids.observe("no-number")
        with pytest.raises(ValueError):
            ids.observe("cell:xyz")
